//! `cargo xtask` — dependency-free workspace automation.
//!
//! ```text
//! cargo xtask lint    static panic-freedom + manifest audit
//! ```
//!
//! The `lint` pass enforces two policies that `rustc`/`clippy` cannot
//! express on stable without external crates:
//!
//! 1. **Panic-free service path.** Non-test code in the storage crates
//!    (`pagestore`, `btree`, `encoding`, `timestore`, `lineagestore`)
//!    plus the request-serving crates (`obs`, `query`, `server` —
//!    including the chaos proxy and resilient client, which must not
//!    abort mid-storm) must not contain `.unwrap()`, `.expect(`,
//!    `panic!(`, `unreachable!(`, `todo!(` or `unimplemented!(`.
//!    Corruption must surface as typed errors that `aion-fsck` can
//!    report, never as a process abort. Test modules (`#[cfg(test)]`)
//!    and doc comments are exempt.
//! 2. **Lint-table coverage.** Every workspace crate manifest must opt
//!    into the shared `[workspace.lints]` table via
//!    `[lints] workspace = true`, so `warnings = "deny"` and the curated
//!    clippy set apply uniformly.
//!
//! Exit status: 0 = clean, 1 = violations, 2 = usage/IO error.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must be panic-free.
const PANIC_FREE_CRATES: &[&str] = &[
    "crates/vfs",
    "crates/pagestore",
    "crates/btree",
    "crates/encoding",
    "crates/timestore",
    "crates/lineagestore",
    "crates/obs",
    "crates/query",
    "crates/server",
];

/// Forbidden tokens in non-test storage code. Matched after comment
/// stripping; `unwrap_or`/`unwrap_or_else`/`unwrap_or_default` do not
/// match because the token requires the closing paren immediately.
const FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".unwrap_err()",
    ".expect(",
    ".expect_err(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

struct Violation {
    file: PathBuf,
    line: usize,
    token: &'static str,
    text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: forbidden `{}` in non-test code: {}",
            self.file.display(),
            self.line,
            self.token,
            self.text.trim()
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask always lives one level below the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut errors = Vec::new();

    for krate in PANIC_FREE_CRATES {
        let src = root.join(krate).join("src");
        if let Err(e) = scan_dir(&src, &mut violations) {
            errors.push(format!("{}: {e}", src.display()));
        }
    }

    let mut missing_lints = Vec::new();
    match collect_manifests(&root) {
        Ok(manifests) => {
            for m in manifests {
                match std::fs::read_to_string(&m) {
                    Ok(body) => {
                        if !manifest_opts_into_workspace_lints(&body) {
                            missing_lints.push(m);
                        }
                    }
                    Err(e) => errors.push(format!("{}: {e}", m.display())),
                }
            }
        }
        Err(e) => errors.push(format!("manifest walk: {e}")),
    }

    if !errors.is_empty() {
        for e in &errors {
            eprintln!("xtask lint: {e}");
        }
        return ExitCode::from(2);
    }

    for v in &violations {
        println!("{v}");
    }
    for m in &missing_lints {
        println!(
            "{}: missing `[lints] workspace = true` (required for the workspace lint gate)",
            m.display()
        );
    }
    if violations.is_empty() && missing_lints.is_empty() {
        println!(
            "xtask lint: clean ({} crate(s) panic-free, all manifests opted into workspace lints)",
            PANIC_FREE_CRATES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s)",
            violations.len() + missing_lints.len()
        );
        ExitCode::from(1)
    }
}

/// Every `Cargo.toml` directly under `crates/`, plus `xtask` and the root
/// package manifest. Shims are vendored stand-ins and are exempt.
fn collect_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    for entry in std::fs::read_dir(root.join("crates"))? {
        let manifest = entry?.path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    out.sort();
    Ok(out)
}

fn manifest_opts_into_workspace_lints(body: &str) -> bool {
    let mut in_lints = false;
    for line in body.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

fn scan_dir(dir: &Path, violations: &mut Vec<Violation>) -> std::io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&d)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let body = std::fs::read_to_string(&path)?;
                scan_file(&path, &body, violations);
            }
        }
    }
    Ok(())
}

/// Line-oriented scan. Tracks `#[cfg(test)]` items by brace depth: once a
/// `#[cfg(test)]` attribute is seen, everything until the braces of the
/// following item balance is test code and exempt. Comments (`//`, `/* */`)
/// and string literals are stripped before token matching so prose
/// mentioning `panic!(` does not trip the gate.
fn scan_file(path: &Path, body: &str, violations: &mut Vec<Violation>) {
    let mut in_block_comment = false;
    // None = production code; Some(depth) = inside a #[cfg(test)] item
    // whose brace depth must return to `depth` to end.
    let mut test_region: Option<i64> = None;
    let mut pending_test_attr = false;
    let mut depth: i64 = 0;

    for (idx, raw) in body.lines().enumerate() {
        let code = strip_noise(raw, &mut in_block_comment);
        let trimmed = code.trim();

        if test_region.is_none() && trimmed.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }

        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if pending_test_attr && opens > 0 {
            // The attribute's item starts here; exempt until depth drops
            // back to the level before its first `{`.
            test_region = Some(depth);
            pending_test_attr = false;
        }

        let exempt = test_region.is_some() || pending_test_attr;
        if !exempt {
            for token in FORBIDDEN {
                if code.contains(token) {
                    violations.push(Violation {
                        file: path.to_path_buf(),
                        line: idx + 1,
                        token,
                        text: raw.to_string(),
                    });
                }
            }
        }

        depth += opens - closes;
        if let Some(base) = test_region {
            if closes > 0 && depth <= base {
                test_region = None;
            }
        }
    }
}

/// Removes line comments, block comments, and string-literal contents so
/// only real code tokens remain. Keeps the quotes themselves so column
/// structure stays roughly intact. Not a full lexer — raw strings with
/// embedded quotes and similar corner cases are out of scope for a lint
/// heuristic — but char-level escape tracking covers the codebase today.
fn strip_noise(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if *in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block_comment = false;
            }
            continue;
        }
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
                out.push('"');
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block_comment = true;
            }
            '"' => {
                in_str = true;
                out.push('"');
            }
            // Lifetime vs char literal: a quote right after an ident
            // char or `&`/`<` is a lifetime; treat quote followed by
            // escape or by `x'` as a char literal.
            '\'' => {
                let next = chars.peek().copied();
                let looks_like_char = matches!(next, Some(n) if n == '\\')
                    || matches!(
                        (next, {
                            let mut ahead = chars.clone();
                            ahead.next();
                            ahead.next()
                        }),
                        (Some(_), Some('\''))
                    );
                if looks_like_char {
                    in_char = true;
                } else {
                    out.push('\'');
                }
            }
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(body: &str) -> Vec<String> {
        let mut v = Vec::new();
        scan_file(Path::new("t.rs"), body, &mut v);
        v.into_iter().map(|x| x.token.to_string()).collect()
    }

    #[test]
    fn flags_unwrap_in_production_code() {
        assert_eq!(scan_str("fn f() { x.unwrap(); }"), vec![".unwrap()"]);
    }

    #[test]
    fn ignores_test_modules_and_comments() {
        let body = "\
// x.unwrap() in a comment\n\
/* panic!(\"no\") */\n\
fn ok() { let _ = x.unwrap_or_default(); }\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { x.unwrap(); panic!(\"fine here\"); }\n\
}\n";
        assert!(scan_str(body).is_empty());
    }

    #[test]
    fn resumes_after_test_module_ends() {
        let body = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { x.unwrap(); }\n\
}\n\
fn bad() { y.expect(\"boom\"); }\n";
        assert_eq!(scan_str(body), vec![".expect("]);
    }

    #[test]
    fn string_literals_do_not_trip_the_gate() {
        assert!(scan_str("fn f() { let s = \"call panic!( never\"; }").is_empty());
    }

    #[test]
    fn manifest_lints_detection() {
        assert!(manifest_opts_into_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n"
        ));
        assert!(!manifest_opts_into_workspace_lints(
            "[package]\nname = \"x\"\n"
        ));
        assert!(!manifest_opts_into_workspace_lints(
            "[lints.rust]\nworkspace = true\n"
        ));
    }
}
