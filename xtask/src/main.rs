//! `cargo xtask analyze` — the workspace invariant gate.
//!
//! Thin CLI over the [`analyze`] crate (crates/analyze), which lexes and
//! structurally parses every workspace source and runs the rule registry
//! (vfs-bypass, lock-order, budget-loops, panic-freedom,
//! unsafe-inventory, manifest-lints). See DESIGN.md §12.
//!
//! `cargo xtask lint` is kept as an alias for the old entry point.
//!
//! Exit codes: 0 clean, 1 findings, 2 analyzer error (I/O, malformed
//! allow file).

mod bench_gate;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    match cmd.as_str() {
        // `lint` is the historical name for the gate.
        "analyze" | "lint" => analyze_cmd(args.collect()),
        "bench-gate" => bench_gate::run(args.collect(), workspace_root()),
        "" | "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown command `{other}`\n");
            print!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze   run the workspace invariant analyzer (alias: lint)
            --json           machine-readable output
            --list           print the rule catalogue and exit
            --rule <id>      run only this rule (repeatable)
            --root <dir>     analyze a different tree (testing)
  bench-gate  diff fresh Fig. 9 ingest + write-throughput runs against BENCH_ingest.json
            --update         rewrite the baseline from this run
            --baseline <p>   compare against a different file
            --tolerance <f>  relative band (default 0.5)
            --runs <n>       median over n harness runs (default 3)
            --edges <n>, --seed <n>  harness scale (must match baseline)
  help      show this message
";

fn analyze_cmd(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut only: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--rule" => match it.next() {
                Some(r) => only.push(r),
                None => return flag_err("--rule needs a rule id"),
            },
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return flag_err("--root needs a directory"),
            },
            other => return flag_err(&format!("unknown flag `{other}`")),
        }
    }

    if list {
        for (id, desc) in analyze::catalogue() {
            println!("{id:<18} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(workspace_root);
    let cfg = analyze::Config { root, only };
    match analyze::run(&cfg) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            ExitCode::from(2)
        }
    }
}

fn flag_err(msg: &str) -> ExitCode {
    eprintln!("xtask analyze: {msg}\n");
    print!("{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}
