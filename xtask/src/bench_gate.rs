//! `cargo xtask bench-gate` — the perf-regression gate over the write
//! path.
//!
//! Two in-process experiments, diffed against the checked-in
//! `BENCH_ingest.json`:
//!
//! * `aion_bench::fig09_ingest` — normalized ingestion-overhead ratios
//!   (TS+LS, LS-only, TS-only relative to the non-temporal baseline, so
//!   machine speed largely cancels out);
//! * `aion_bench::write_throughput` — group-commit coalescing
//!   (`commits_per_fsync`) and the grouped run's throughput relative to
//!   the single-writer per-commit-fsync run (`rel_throughput`);
//! * `aion_bench::scan_paged` — rows-materialized proxies for the paged
//!   streaming executor (`sp_peak_rows`, `sp_streamed_ratio`): the paged
//!   run must hold at most one page at a time while streaming every row
//!   exactly once.
//!
//! A ratio outside the relative tolerance band fails the gate;
//! `--update` rewrites the baseline instead.
//!
//! The baseline is tiny, hand-readable JSON written and parsed here —
//! the workspace has no serde, and the format is a handful of one-line
//! rows.

use std::path::PathBuf;
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.5;

pub fn run(args: Vec<String>, root: PathBuf) -> ExitCode {
    let mut update = false;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut runs: usize = 3;
    // The gate runs larger than the figure default: sub-second samples
    // flap well past any usable tolerance band on shared CI machines.
    let mut cfg = aion_bench::BenchConfig {
        target_edges: 60_000,
        ..aion_bench::BenchConfig::default()
    };

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update" => update = true,
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => runs = n,
                _ => return flag_err("--runs needs a positive number"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return flag_err("--baseline needs a path"),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => tolerance = t,
                None => return flag_err("--tolerance needs a number"),
            },
            "--edges" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.target_edges = n,
                None => return flag_err("--edges needs a number"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return flag_err("--seed needs a number"),
            },
            other => return flag_err(&format!("unknown flag `{other}`")),
        }
    }
    let path = baseline.unwrap_or_else(|| root.join("BENCH_ingest.json"));
    let wt_cfg = aion_bench::write_throughput::WriteThroughputConfig::default();
    let sp_cfg = aion_bench::scan_paged::ScanPagedConfig::default();

    println!(
        "bench-gate: fig. 9 ingest, |E| = {}, seed = {}, median of {runs} run(s), \
         tolerance ±{:.0}%",
        cfg.target_edges,
        cfg.seed,
        tolerance * 100.0
    );
    // Sub-second measurements on a shared machine are noisy; the gate
    // compares per-metric *medians* across several harness runs.
    let samples: Vec<Vec<aion_bench::fig09_ingest::IngestRow>> = (0..runs)
        .map(|_| aion_bench::fig09_ingest::run(&cfg))
        .collect();
    let rows = median_rows(&samples);

    println!(
        "bench-gate: write throughput, {} commits, {} writers, seed = {}, \
         median of {runs} run(s)",
        wt_cfg.commits, wt_cfg.writers, wt_cfg.seed
    );
    let wt_samples: Vec<Vec<aion_bench::write_throughput::WriteRow>> = (0..runs)
        .map(|_| aion_bench::write_throughput::run(&wt_cfg))
        .collect();
    let wt_rows = median_wt_rows(&wt_samples);

    println!(
        "bench-gate: paged scan, {} nodes, page size {}, seed = {}, \
         median of {runs} run(s)",
        sp_cfg.nodes, sp_cfg.page_size, sp_cfg.seed
    );
    let sp_samples: Vec<Vec<aion_bench::scan_paged::ScanPagedRow>> = (0..runs)
        .map(|_| aion_bench::scan_paged::run(&sp_cfg))
        .collect();
    let sp_rows = median_sp_rows(&sp_samples);

    if update {
        let json = render(&cfg, &rows, &wt_cfg, &wt_rows, &sp_cfg, &sp_rows);
        return match std::fs::write(&path, json) {
            Ok(()) => {
                println!("bench-gate: baseline written to {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench-gate: cannot write {}: {e}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench-gate: cannot read baseline {}: {e}\n\
                 bench-gate: run `cargo xtask bench-gate --update` to create it",
                path.display()
            );
            return ExitCode::from(2);
        }
    };
    let base = match parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-gate: malformed baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if base.target_edges != cfg.target_edges || base.seed != cfg.seed {
        eprintln!(
            "bench-gate: baseline was recorded at |E| = {}, seed = {} — rerun with matching \
             flags or refresh it with --update",
            base.target_edges, base.seed
        );
        return ExitCode::from(2);
    }
    if base.wt_rows.is_empty() {
        eprintln!(
            "bench-gate: baseline {} has no write_throughput section — refresh it with \
             `cargo xtask bench-gate --update`",
            path.display()
        );
        return ExitCode::from(2);
    }
    if base.wt_commits != wt_cfg.commits
        || base.wt_writers != wt_cfg.writers
        || base.wt_seed != wt_cfg.seed
    {
        eprintln!(
            "bench-gate: baseline write_throughput was recorded at {} commits, {} writers, \
             seed {} — refresh it with --update",
            base.wt_commits, base.wt_writers, base.wt_seed
        );
        return ExitCode::from(2);
    }
    if base.sp_rows.is_empty() {
        eprintln!(
            "bench-gate: baseline {} has no scan_paged section — refresh it with \
             `cargo xtask bench-gate --update`",
            path.display()
        );
        return ExitCode::from(2);
    }
    if base.sp_nodes != sp_cfg.nodes
        || base.sp_page_size != sp_cfg.page_size as u64
        || base.sp_seed != sp_cfg.seed
    {
        eprintln!(
            "bench-gate: baseline scan_paged was recorded at {} nodes, page size {}, \
             seed {} — refresh it with --update",
            base.sp_nodes, base.sp_page_size, base.sp_seed
        );
        return ExitCode::from(2);
    }

    let mut failures = 0u32;
    for row in &rows {
        let Some(b) = base.rows.iter().find(|b| b.dataset == row.dataset) else {
            eprintln!("bench-gate: FAIL {}: missing from baseline", row.dataset);
            failures += 1;
            continue;
        };
        for (metric, got, want) in [
            ("ts_ls", row.ts_ls, b.ts_ls),
            ("ls_only", row.ls_only, b.ls_only),
            ("ts_only", row.ts_only, b.ts_only),
        ] {
            let drift = if want > 0.0 {
                (got - want).abs() / want
            } else {
                got.abs()
            };
            if drift > tolerance {
                eprintln!(
                    "bench-gate: FAIL {}/{metric}: {got:.3} vs baseline {want:.3} \
                     (drift {:.0}% > {:.0}%)",
                    row.dataset,
                    drift * 100.0,
                    tolerance * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "bench-gate: ok   {}/{metric}: {got:.3} vs {want:.3} (drift {:.0}%)",
                    row.dataset,
                    drift * 100.0
                );
            }
        }
    }
    for row in &wt_rows {
        let Some(b) = base.wt_rows.iter().find(|b| b.metric == row.metric) else {
            eprintln!("bench-gate: FAIL {}: missing from baseline", row.metric);
            failures += 1;
            continue;
        };
        for (metric, got, want) in [
            (
                "commits_per_fsync",
                row.commits_per_fsync,
                b.commits_per_fsync,
            ),
            ("rel_throughput", row.rel_throughput, b.rel_throughput),
        ] {
            let drift = if want > 0.0 {
                (got - want).abs() / want
            } else {
                got.abs()
            };
            if drift > tolerance {
                eprintln!(
                    "bench-gate: FAIL {}/{metric}: {got:.3} vs baseline {want:.3} \
                     (drift {:.0}% > {:.0}%)",
                    row.metric,
                    drift * 100.0,
                    tolerance * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "bench-gate: ok   {}/{metric}: {got:.3} vs {want:.3} (drift {:.0}%)",
                    row.metric,
                    drift * 100.0
                );
            }
        }
    }
    for row in &sp_rows {
        let Some(b) = base.sp_rows.iter().find(|b| b.metric == row.metric) else {
            eprintln!("bench-gate: FAIL {}: missing from baseline", row.metric);
            failures += 1;
            continue;
        };
        for (metric, got, want) in [
            ("sp_peak_rows", row.peak_rows, b.peak_rows),
            ("sp_streamed_ratio", row.streamed_ratio, b.streamed_ratio),
        ] {
            let drift = if want > 0.0 {
                (got - want).abs() / want
            } else {
                got.abs()
            };
            if drift > tolerance {
                eprintln!(
                    "bench-gate: FAIL {}/{metric}: {got:.3} vs baseline {want:.3} \
                     (drift {:.0}% > {:.0}%)",
                    row.metric,
                    drift * 100.0,
                    tolerance * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "bench-gate: ok   {}/{metric}: {got:.3} vs {want:.3} (drift {:.0}%)",
                    row.metric,
                    drift * 100.0
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("bench-gate: {failures} metric(s) outside the tolerance band");
        ExitCode::from(1)
    } else {
        println!("bench-gate: all ratios within ±{:.0}%", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

fn flag_err(msg: &str) -> ExitCode {
    eprintln!("xtask bench-gate: {msg}");
    ExitCode::from(2)
}

struct BaselineRow {
    dataset: String,
    ts_ls: f64,
    ls_only: f64,
    ts_only: f64,
}

/// Per-dataset, per-metric medians across harness runs. Datasets are
/// taken from the first run; every run produces the same fixed list.
fn median_rows(samples: &[Vec<aion_bench::fig09_ingest::IngestRow>]) -> Vec<BaselineRow> {
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    first
        .iter()
        .enumerate()
        .map(|(i, r)| BaselineRow {
            dataset: r.dataset.clone(),
            ts_ls: median(samples.iter().filter_map(|s| s.get(i)).map(|r| r.ts_ls)),
            ls_only: median(samples.iter().filter_map(|s| s.get(i)).map(|r| r.ls_only)),
            ts_only: median(samples.iter().filter_map(|s| s.get(i)).map(|r| r.ts_only)),
        })
        .collect()
}

struct WtBaselineRow {
    metric: String,
    commits_per_fsync: f64,
    rel_throughput: f64,
}

/// Per-configuration medians across write-throughput harness runs.
fn median_wt_rows(samples: &[Vec<aion_bench::write_throughput::WriteRow>]) -> Vec<WtBaselineRow> {
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    first
        .iter()
        .enumerate()
        .map(|(i, r)| WtBaselineRow {
            metric: r.metric.clone(),
            commits_per_fsync: median(
                samples
                    .iter()
                    .filter_map(|s| s.get(i))
                    .map(|r| r.commits_per_fsync),
            ),
            rel_throughput: median(
                samples
                    .iter()
                    .filter_map(|s| s.get(i))
                    .map(|r| r.rel_throughput),
            ),
        })
        .collect()
}

struct SpBaselineRow {
    metric: String,
    peak_rows: f64,
    streamed_ratio: f64,
}

/// Per-configuration medians across paged-scan harness runs.
fn median_sp_rows(samples: &[Vec<aion_bench::scan_paged::ScanPagedRow>]) -> Vec<SpBaselineRow> {
    let Some(first) = samples.first() else {
        return Vec::new();
    };
    first
        .iter()
        .enumerate()
        .map(|(i, r)| SpBaselineRow {
            metric: r.metric.clone(),
            peak_rows: median(samples.iter().filter_map(|s| s.get(i)).map(|r| r.peak_rows)),
            streamed_ratio: median(
                samples
                    .iter()
                    .filter_map(|s| s.get(i))
                    .map(|r| r.streamed_ratio),
            ),
        })
        .collect()
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if v.is_empty() {
        0.0
    } else {
        v[v.len() / 2]
    }
}

struct Baseline {
    target_edges: u64,
    seed: u64,
    rows: Vec<BaselineRow>,
    wt_commits: u64,
    wt_writers: u64,
    wt_seed: u64,
    wt_rows: Vec<WtBaselineRow>,
    sp_nodes: u64,
    sp_page_size: u64,
    sp_seed: u64,
    sp_rows: Vec<SpBaselineRow>,
}

fn render(
    cfg: &aion_bench::BenchConfig,
    rows: &[BaselineRow],
    wt_cfg: &aion_bench::write_throughput::WriteThroughputConfig,
    wt_rows: &[WtBaselineRow],
    sp_cfg: &aion_bench::scan_paged::ScanPagedConfig,
    sp_rows: &[SpBaselineRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"experiment\": \"fig09_ingest\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"target_edges\": {}, \"seed\": {}}},\n",
        cfg.target_edges, cfg.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"ts_ls\": {:.4}, \"ls_only\": {:.4}, \"ts_only\": {:.4}}}{}\n",
            r.dataset,
            r.ts_ls,
            r.ls_only,
            r.ts_only,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    // Second experiment in the same baseline file. The naive field scan
    // matches whole-text first occurrences, so every key here is
    // `wt_`-prefixed and row lines are keyed `"metric"` (never
    // `"dataset"`) to stay collision-free with the section above.
    out.push_str("  \"write_throughput\": {\n");
    out.push_str(&format!(
        "    \"config\": {{\"wt_commits\": {}, \"wt_writers\": {}, \"wt_seed\": {}}},\n",
        wt_cfg.commits, wt_cfg.writers, wt_cfg.seed
    ));
    out.push_str("    \"rows\": [\n");
    for (i, r) in wt_rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"metric\": \"{}\", \"commits_per_fsync\": {:.4}, \"rel_throughput\": {:.4}}}{}\n",
            r.metric,
            r.commits_per_fsync,
            r.rel_throughput,
            if i + 1 < wt_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  },\n");
    // Third experiment, same collision rule: every key is `sp_`-prefixed
    // and row lines are keyed `"sp_metric"` so the whole-text field scan
    // never matches a key from another section.
    out.push_str("  \"scan_paged\": {\n");
    out.push_str(&format!(
        "    \"config\": {{\"sp_nodes\": {}, \"sp_page_size\": {}, \"sp_seed\": {}}},\n",
        sp_cfg.nodes, sp_cfg.page_size, sp_cfg.seed
    ));
    out.push_str("    \"rows\": [\n");
    for (i, r) in sp_rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"sp_metric\": \"{}\", \"sp_peak_rows\": {:.4}, \"sp_streamed_ratio\": {:.4}}}{}\n",
            r.metric,
            r.peak_rows,
            r.streamed_ratio,
            if i + 1 < sp_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

/// Minimal parser for the fixed shape `render` writes: one `"key": value`
/// scan for the config, one row object per line under `"rows"`.
fn parse(text: &str) -> Result<Baseline, String> {
    let target_edges = field_u64(text, "target_edges")?;
    let seed = field_u64(text, "seed")?;
    let mut rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"dataset\"") {
            continue;
        }
        rows.push(BaselineRow {
            dataset: field_str(line, "dataset")?,
            ts_ls: field_f64(line, "ts_ls")?,
            ls_only: field_f64(line, "ls_only")?,
            ts_only: field_f64(line, "ts_only")?,
        });
    }
    if rows.is_empty() {
        return Err("no rows".into());
    }
    // The write_throughput section is optional in old baselines; the
    // caller decides whether its absence is fatal.
    let mut wt_rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"metric\"") {
            continue;
        }
        wt_rows.push(WtBaselineRow {
            metric: field_str(line, "metric")?,
            commits_per_fsync: field_f64(line, "commits_per_fsync")?,
            rel_throughput: field_f64(line, "rel_throughput")?,
        });
    }
    let (wt_commits, wt_writers, wt_seed) = if wt_rows.is_empty() {
        (0, 0, 0)
    } else {
        (
            field_u64(text, "wt_commits")?,
            field_u64(text, "wt_writers")?,
            field_u64(text, "wt_seed")?,
        )
    };
    // Same deal for the scan_paged section: `sp_`-prefixed keys only.
    let mut sp_rows = Vec::new();
    for line in text.lines() {
        if !line.contains("\"sp_metric\"") {
            continue;
        }
        sp_rows.push(SpBaselineRow {
            metric: field_str(line, "sp_metric")?,
            peak_rows: field_f64(line, "sp_peak_rows")?,
            streamed_ratio: field_f64(line, "sp_streamed_ratio")?,
        });
    }
    let (sp_nodes, sp_page_size, sp_seed) = if sp_rows.is_empty() {
        (0, 0, 0)
    } else {
        (
            field_u64(text, "sp_nodes")?,
            field_u64(text, "sp_page_size")?,
            field_u64(text, "sp_seed")?,
        )
    };
    Ok(Baseline {
        target_edges,
        seed,
        rows,
        wt_commits,
        wt_writers,
        wt_seed,
        wt_rows,
        sp_nodes,
        sp_page_size,
        sp_seed,
        sp_rows,
    })
}

fn field_raw<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat).ok_or_else(|| format!("missing {key}"))?;
    let rest = text[at + pat.len()..].trim_start();
    let end = rest
        .find([',', '}', '\n'])
        .ok_or_else(|| format!("unterminated {key}"))?;
    Ok(rest[..end].trim())
}

fn field_u64(text: &str, key: &str) -> Result<u64, String> {
    field_raw(text, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn field_f64(text: &str, key: &str) -> Result<f64, String> {
    field_raw(text, key)?
        .parse()
        .map_err(|e| format!("bad {key}: {e}"))
}

fn field_str(text: &str, key: &str) -> Result<String, String> {
    Ok(field_raw(text, key)?.trim_matches('"').to_string())
}
