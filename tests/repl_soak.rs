//! Replication chaos soak (DESIGN.md §13): a primary and two read
//! replicas, with each replica's replication link routed through a
//! fault-injecting [`aion_server::ChaosProxy`] that delays, corrupts,
//! splits, and severs the frame stream. While the storm runs, writers
//! commit through the primary's query server and a routed client
//! interleaves writes with bounded-staleness reads. The suite asserts
//! the replication contract:
//!
//! * **no acked commit lost** — every `_id` whose `CREATE` was acked is
//!   present on the primary *and on every replica* after convergence;
//! * **convergence** — after the storm, both replicas reach the
//!   primary's latest timestamp with the full consistency audit clean
//!   on all three nodes, and node counts agree (differential check);
//! * **monotone watermarks** — no replica's durable watermark (offset
//!   or timestamp) ever moves backwards, even across reconnects forced
//!   by corrupted frames;
//! * **bounded staleness** — a routed read issued right after a write
//!   always observes that write (`min_watermark` makes a lagging
//!   replica refuse rather than serve older state).
//!
//! Knobs: `AION_REPL_SOAK_SEEDS` (default 2), `AION_REPL_SOAK_OPS`
//! (writes per writer, default 30).

use aion::{Aion, AionConfig, CheckLevel};
use aion_server::{
    ChaosConfig, ChaosProxy, Client, ClientConfig, RoutedClient, Server, ServerConfig,
};
use lpg::NodeId;
use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig, Watermark};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tempfile::tempdir;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn replication_chaos_soak() {
    let seeds = env_u64("AION_REPL_SOAK_SEEDS", 2);
    let ops = env_u64("AION_REPL_SOAK_OPS", 30);
    for seed in 0..seeds {
        run_storm(seed, ops);
    }
}

struct ReplicaNode {
    db: Arc<Aion>,
    replayer: Replayer,
    proxy: ChaosProxy,
    server: Server,
    _dir: tempfile::TempDir,
}

fn start_replica(seed: u64, shipper_addr: SocketAddr) -> ReplicaNode {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    // The chaos sits on the *replication link*: replayer → proxy → primary.
    let proxy = ChaosProxy::start(shipper_addr, ChaosConfig::storm(seed)).unwrap();
    let mut cfg = ReplayerConfig::new(proxy.addr(), dir.path());
    // Small batches and fast reconnects: many watermark writes and many
    // resume handshakes per storm.
    cfg.sync_every = 4;
    cfg.reconnect_backoff = Duration::from_millis(5);
    let replayer = Replayer::start(db.clone(), cfg);
    let server = Server::start_with(
        db.clone(),
        ServerConfig {
            read_only: true,
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    ReplicaNode {
        db,
        replayer,
        proxy,
        server,
        _dir: dir,
    }
}

fn client_config(seed: u64, n: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(2),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        jitter_seed: seed.wrapping_mul(1_000_003) ^ n,
    }
}

fn run_storm(seed: u64, ops: u64) {
    let pdir = tempdir().unwrap();
    let primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let mut primary_srv = Server::start_with(
        primary.clone(),
        ServerConfig {
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();

    let mut replicas = vec![
        start_replica(seed.wrapping_mul(2) + 1, shipper.addr()),
        start_replica(seed.wrapping_mul(2) + 2, shipper.addr()),
    ];

    // Watermark monotonicity monitor: polls both replicas' durable
    // watermarks throughout the storm.
    let stop_monitor = Arc::new(AtomicBool::new(false));
    let monitor = {
        let stop = stop_monitor.clone();
        let watchers: Vec<_> = replicas
            .iter()
            .map(|r| r.replayer.watermark_probe())
            .collect();
        std::thread::spawn(move || {
            let mut last: Vec<Watermark> = watchers.iter().map(|p| p()).collect();
            while !stop.load(Ordering::Acquire) {
                for (i, probe) in watchers.iter().enumerate() {
                    let now = probe();
                    assert!(
                        now.offset >= last[i].offset && now.ts >= last[i].ts,
                        "replica {i} watermark moved backwards: {:?} -> {now:?}",
                        last[i]
                    );
                    last[i] = now;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Writers: unique-_id CREATEs through the primary's query server.
    let (tx, rx) = mpsc::channel::<Vec<u64>>();
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let tx = tx.clone();
        let addr = primary_srv.addr();
        let cfg = client_config(seed, w);
        handles.push(std::thread::spawn(move || {
            let mut acked = Vec::new();
            if let Ok(mut client) = Client::connect_with(addr, cfg) {
                for op in 0..ops {
                    let id = 1 + seed * 10_000_000 + w * 100_000 + op;
                    if client
                        .run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new())
                        .is_ok()
                    {
                        acked.push(id);
                    }
                }
            }
            let _ = tx.send(acked);
        }));
    }
    // Routed client: write-then-read pairs prove bounded staleness live
    // under the storm — a lagging replica must refuse (StaleReplica) and
    // the router must fall back, never serve older state.
    {
        let tx = tx.clone();
        let primary_addr = primary_srv.addr();
        let replica_addrs: Vec<_> = replicas.iter().map(|r| r.server.addr()).collect();
        let cfg = client_config(seed, 99);
        handles.push(std::thread::spawn(move || {
            let mut acked = Vec::new();
            let mut router = RoutedClient::new(primary_addr, replica_addrs, cfg);
            for op in 0..ops {
                let id = 1 + seed * 10_000_000 + 900_000 + op;
                if router
                    .run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new())
                    .is_ok()
                {
                    acked.push(id);
                    let rows = router
                        .run(
                            &format!("MATCH (n) WHERE id(n) = {id} RETURN n"),
                            Vec::new(),
                        )
                        .map(|r| r.rows.len());
                    assert_eq!(
                        rows.ok(),
                        Some(1),
                        "read-your-writes violated for _id {id} (seed {seed})"
                    );
                }
            }
            let _ = tx.send(acked);
        }));
    }
    drop(tx);

    let mut acked: Vec<u64> = Vec::new();
    for _ in 0..3 {
        let ids = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("a soak client hung (seed {seed})"));
        acked.extend(ids);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        !acked.is_empty(),
        "storm acked nothing — the soak proved nothing (seed {seed})"
    );

    // Heal phase: lift the chaos (point replayers straight at the
    // primary) and require convergence.
    let mut faults = 0;
    for r in &mut replicas {
        faults += r.proxy.stats().total_faults();
        r.replayer.shutdown();
        r.proxy.stop();
        let mut cfg = ReplayerConfig::new(shipper.addr(), r._dir.path());
        cfg.sync_every = 4;
        r.replayer = Replayer::start(r.db.clone(), cfg);
    }
    assert!(faults > 0, "storm injected no faults (seed {seed})");

    let latest = primary.latest_ts();
    for (i, r) in replicas.iter().enumerate() {
        assert!(
            wait_for(30, || r.db.latest_ts() == primary.latest_ts()),
            "replica {i} never converged: {} vs {} (seed {seed}, last error {:?})",
            r.db.latest_ts(),
            primary.latest_ts(),
            r.replayer.last_error()
        );
        // Watermark converges to the primary's head.
        assert!(
            wait_for(10, || r.replayer.watermark().ts == primary.latest_ts()),
            "replica {i} watermark stalled at {:?} (seed {seed})",
            r.replayer.watermark()
        );
    }
    stop_monitor.store(true, Ordering::Release);
    monitor.join().unwrap();

    // Differential check: every acked commit on all three nodes, equal
    // node counts, and a clean full audit everywhere.
    primary.lineage_barrier(latest);
    let primary_nodes = primary.latest_graph().node_count();
    for id in &acked {
        assert!(
            primary.latest_graph().node(NodeId::new(*id)).is_some(),
            "acked _id {id} lost on primary (seed {seed})"
        );
    }
    let report = primary.check_consistency(CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "primary audit (seed {seed}): {report:?}");
    for (i, r) in replicas.iter().enumerate() {
        let g = r.db.latest_graph();
        assert_eq!(
            g.node_count(),
            primary_nodes,
            "replica {i} node count diverges (seed {seed})"
        );
        for id in &acked {
            assert!(
                g.node(NodeId::new(*id)).is_some(),
                "acked _id {id} missing on replica {i} (seed {seed})"
            );
        }
        let report = r.db.check_consistency(CheckLevel::Full).unwrap();
        assert!(
            report.is_clean(),
            "replica {i} audit (seed {seed}): {report:?}"
        );
    }

    for mut r in replicas {
        r.replayer.shutdown();
        r.server.shutdown();
    }
    primary_srv.shutdown();
    shipper.shutdown();
}
