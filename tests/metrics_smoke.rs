//! Observability smoke test: after a workload runs through the full
//! stack — ingest, snapshots, reopen, historical reads, temporal Cypher —
//! `Aion::metrics()` must report non-zero activity in every layer, and
//! both exposition formats must be well-formed.

use aion::{Aion, AionConfig};
use aion_suite::*;
use lpg::{Direction, NodeId};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;

#[test]
fn metrics_cover_every_layer_after_a_workload() {
    let spec = workload::DATASETS[0].scaled(0.0005);
    let w = workload::generate(spec, 11);
    let dir = tempdir().unwrap();

    // Ingest, snapshot, close.
    {
        let mut config = AionConfig::new(dir.path());
        // A snapshot mid-stream so the reopened instance has a real base.
        config.timestore.policy = timestore::SnapshotPolicy::EveryNOps(200);
        let db = Aion::open(config).unwrap();
        for (ts, ops) in w.batches(50) {
            db.write_at(ts, |txn| {
                for op in &ops {
                    match op {
                        lpg::Update::AddNode { id, labels, props } => {
                            txn.add_node(*id, labels.clone(), props.clone())?
                        }
                        lpg::Update::AddRel {
                            id,
                            src,
                            tgt,
                            label,
                            props,
                        } => txn.add_rel(*id, *src, *tgt, *label, props.clone())?,
                        other => panic!("generator emits inserts only, got {other:?}"),
                    }
                }
                Ok(())
            })
            .unwrap();
        }
        db.lineage_barrier(db.latest_ts());
        db.sync().unwrap();
    }

    // Reopen and read history: point lookups replay deltas on a snapshot
    // base (timestore), expansion routes through the lineage store, and
    // temporal Cypher runs the query stages.
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    let latest = db.latest_ts();
    for t in [latest / 4, latest / 2, latest] {
        let g = db.get_graph_at(t).unwrap();
        assert!(g.node_count() > 0 || t == 0);
    }
    let _ = db.expand(NodeId::new(0), Direction::Both, 2, latest);
    let r = query::execute(
        &db,
        "MATCH (n) WHERE id(n) = 0 RETURN id(n)",
        &query::Params::new(),
    )
    .unwrap();
    assert_eq!(r.rows.len(), 1);

    let snap = db.metrics();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let hist_count = |name: &str| snap.histogram(name).map(|h| h.count).unwrap_or(0);

    // Pagestore: the reopened index reads pages from disk.
    assert!(
        counter("pagestore.cache.hits") + counter("pagestore.cache.misses") > 0,
        "pagestore cache traffic"
    );
    assert!(counter("btree.page.reads") > 0, "btree page reads");
    // Timestore: ingest appended to the log; the reopen + historical reads
    // replayed deltas onto snapshot bases.
    assert!(counter("timestore.log.appends") > 0, "log appends");
    assert!(
        counter("timestore.snapshot.replays") > 0,
        "snapshot replays"
    );
    assert!(hist_count("timestore.snapshot.replay.latency_ns") > 0);
    // Lineagestore: the cascade applied every commit.
    assert!(
        counter("lineagestore.updates.applied") > 0,
        "lineage ingest"
    );
    // Core + query: commits and the executed statement were timed.
    assert!(counter("core.commits") > 0, "commits");
    assert!(hist_count("core.commit.latency_ns") > 0);
    // Group commit: every commit belongs to a log-writer group, and the
    // ingest loop's explicit `sync()` above flushed an unsynced log tail.
    let groups = snap
        .histogram("core.group_commit.size")
        .expect("group size");
    assert!(groups.count > 0, "group commit groups formed");
    assert!(
        groups.sum >= counter("core.commits"),
        "histogram sum counts every grouped commit"
    );
    assert!(
        counter("core.group_commit.forced_flushes") > 0,
        "explicit sync with an unsynced log tail is a forced flush"
    );
    // A failed commit counts in `core.commits_failed`, not `core.commits`.
    let commits_before = counter("core.commits");
    let failed_before = counter("core.commits_failed");
    db.write_at(1, |txn| {
        txn.add_node(NodeId::new(u64::MAX - 1), vec![], vec![])
    })
    .expect_err("stale forced timestamp must be rejected");
    let snap = db.metrics();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(
        counter("core.commits"),
        commits_before,
        "failed commits must not count as commits"
    );
    assert_eq!(
        counter("core.commits_failed"),
        failed_before + 1,
        "failed commits count separately"
    );
    assert!(counter("query.executed") > 0, "queries");
    assert!(hist_count("query.exec.latency_ns") > 0, "query latency");

    // Exposition formats parse: every Prometheus line is a comment or a
    // `name value` pair; the JSON is non-empty and brace-balanced.
    let prom = snap.to_prometheus();
    assert!(!prom.is_empty());
    for line in prom.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().unwrap();
        assert!(name.starts_with("aion_"), "metric name prefix: {line}");
        let value = parts.next().unwrap_or_else(|| panic!("no value: {line}"));
        assert!(value.parse::<f64>().is_ok(), "unparsable value: {line}");
        assert!(parts.next().is_none(), "trailing tokens: {line}");
    }
    let json = snap.to_json();
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced JSON"
    );
    assert!(json.contains("\"counters\""));
}

/// The replication layer's metrics (`server.repl.*`, `repl.replay.*`,
/// `client.route.*`) must read back non-zero after a replicated
/// workload that exercises shipping, replay, a stale rejection, a
/// read-only rejection, and routed reads.
#[test]
fn repl_metrics_read_back_after_replication() {
    use aion_server::{Client, ClientConfig, RoutedClient, Server, ServerConfig};
    use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig};

    let pdir = tempdir().unwrap();
    let rdir = tempdir().unwrap();
    let primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let replica = Arc::new(Aion::open(AionConfig::new(rdir.path())).unwrap());

    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();
    let mut rcfg = ReplayerConfig::new(shipper.addr(), rdir.path());
    rcfg.sync_every = 1;
    let mut replayer = Replayer::start(replica.clone(), rcfg);

    let mut primary_srv = Server::start(primary.clone()).unwrap();
    let mut replica_srv = Server::start_with(
        replica.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A read-only rejection and a stale rejection, straight at the replica.
    let mut direct = Client::connect(replica_srv.addr()).unwrap();
    assert!(direct.run("CREATE (n {_id: 999})", vec![]).is_err());
    assert!(direct
        .run_with_watermark("MATCH (n) RETURN count(n)", vec![], u64::MAX)
        .is_err());

    // Replicated writes plus routed reads.
    let mut router = RoutedClient::new(
        primary_srv.addr(),
        vec![replica_srv.addr()],
        ClientConfig::default(),
    );
    for i in 1..=8 {
        router
            .run(&format!("CREATE (n:R {{_id: {i}}})"), vec![])
            .unwrap();
        router
            .run(&format!("MATCH (n) WHERE id(n) = {i} RETURN n"), vec![])
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.latest_ts() != primary.latest_ts() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(replica.latest_ts(), primary.latest_ts());

    let snap = obs::snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    // Primary side: frames went out and came back acked.
    assert!(counter("server.repl.frames_shipped") > 0, "frames shipped");
    assert!(counter("server.repl.frames_acked") > 0, "frames acked");
    assert!(counter("server.repl.stale_rejects") > 0, "stale rejects");
    assert!(
        counter("server.repl.read_only_rejects") > 0,
        "read-only rejects"
    );
    // Replica side: frames applied, durable watermark tracked.
    assert!(counter("repl.replay.frames_applied") > 0, "frames applied");
    assert_eq!(
        snap.gauge("repl.replay.watermark_ts"),
        Some(i64::try_from(replayer.watermark().ts).unwrap()),
        "watermark gauge tracks the durable watermark"
    );
    // Router: writes hit the primary, and every logical call was counted.
    assert!(counter("client.route.primary_writes") >= 8, "routed writes");
    assert!(
        counter("client.route.replica_reads") + counter("client.route.primary_reads") >= 8,
        "routed reads"
    );
    // The new metrics flow through exposition like every other layer.
    let prom = snap.to_prometheus();
    assert!(prom.contains("aion_server_repl_frames_shipped"));
    assert!(prom.contains("aion_repl_replay_watermark_ts"));

    primary_srv.shutdown();
    replica_srv.shutdown();
    replayer.shutdown();
    shipper.shutdown();
}

/// The failover layer's metrics (`repl.epoch`, `server.writes_fenced`,
/// `repl.divergent_frames_archived`, `client.route.failovers`) must
/// read back after a fenced write, a rejoin quarantine, and a routed
/// failover — and appear in both exposition formats.
#[test]
fn failover_metrics_read_back() {
    use aion_server::{ClientConfig, RoutedClient, Server};
    use repl::{prepare_rejoin, ReplNode, ReplNodeConfig};
    use vfs::VfsRef;

    // A fenced write: the node learns of a newer epoch, so the server
    // refuses the commit with the typed error and counts it.
    let fdir = tempdir().unwrap();
    let fenced_db = Arc::new(Aion::open(AionConfig::new(fdir.path())).unwrap());
    let mut fenced_srv = Server::start(fenced_db.clone()).unwrap();
    fenced_db.observe_epoch(5);
    let mut client = aion_server::Client::connect(fenced_srv.addr()).unwrap();
    let err = client
        .run("CREATE (n {_id: 1})", vec![])
        .expect_err("fenced node must refuse the write");
    assert_eq!(err.kind(), std::io::ErrorKind::NotConnected);

    // A rejoin quarantine: a node with three epoch-0 commits meets a
    // primary already at epoch 1 (fork at ts 0) — all three frames are
    // archived and counted.
    let ddir = tempdir().unwrap();
    {
        let deposed = Aion::open(AionConfig::new(ddir.path())).unwrap();
        for i in 1..=3 {
            deposed
                .write(|tx| tx.add_node(NodeId::new(i), vec![], vec![]))
                .unwrap();
        }
        deposed.sync().unwrap();
    }
    let pdir = tempdir().unwrap();
    let new_primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let node = ReplNode::new_primary(
        new_primary.clone(),
        VfsRef::std(),
        pdir.path(),
        ReplNodeConfig::default(),
    )
    .unwrap();
    node.epochs().bump(0).unwrap();
    let report = prepare_rejoin(
        &VfsRef::std(),
        ddir.path(),
        node.shipper_addr().unwrap(),
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(report.archived_frames, 3);

    // A routed failover: the configured primary is unreachable, the
    // probe finds a writable node, and the route moves.
    let tdir = tempdir().unwrap();
    let target_db = Arc::new(Aion::open(AionConfig::new(tdir.path())).unwrap());
    let mut target_srv = Server::start(target_db.clone()).unwrap();
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut router = RoutedClient::new(
        dead,
        vec![target_srv.addr()],
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 0,
            ..ClientConfig::default()
        },
    );
    router.run("CREATE (n {_id: 10})", vec![]).unwrap();

    let snap = obs::snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert!(counter("server.writes_fenced") >= 1, "fenced writes");
    assert!(
        counter("repl.divergent_frames_archived") >= 3,
        "archived frames"
    );
    assert!(counter("client.route.failovers") >= 1, "route failovers");
    assert!(snap.gauge("repl.epoch").is_some(), "epoch gauge");

    // All four flow through both exposition formats.
    let prom = snap.to_prometheus();
    let json = snap.to_json();
    for (prom_name, json_name) in [
        ("aion_server_writes_fenced", "\"server.writes_fenced\""),
        (
            "aion_repl_divergent_frames_archived",
            "\"repl.divergent_frames_archived\"",
        ),
        ("aion_client_route_failovers", "\"client.route.failovers\""),
        ("aion_repl_epoch", "\"repl.epoch\""),
    ] {
        assert!(
            prom.contains(prom_name),
            "{prom_name} missing in Prometheus"
        );
        assert!(json.contains(json_name), "{json_name} missing in JSON");
    }

    fenced_srv.shutdown();
    target_srv.shutdown();
    drop(node);
}
