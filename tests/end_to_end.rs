//! Cross-crate integration: a generated Table 3-shaped workload ingested
//! into Aion *and* both baseline systems, with every storage path required
//! to answer identically, and the planner/procedure layers exercised on
//! top.

use aion::{Aion, AionConfig};
use aion_suite::*;
use baselines::TemporalBackend;
use lpg::Direction;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;
use workload::datasets;

fn ingest(db: &Aion, w: &workload::GeneratedWorkload) {
    for (ts, ops) in w.batches(500) {
        let _ = ts;
        db.write(|txn| {
            for op in &ops {
                match op {
                    lpg::Update::AddNode { id, labels, props } => {
                        txn.add_node(*id, labels.clone(), props.clone())?
                    }
                    lpg::Update::AddRel {
                        id,
                        src,
                        tgt,
                        label,
                        props,
                    } => txn.add_rel(*id, *src, *tgt, *label, props.clone())?,
                    _ => unreachable!("generator emits inserts only"),
                }
            }
            Ok(())
        })
        .expect("ingest batch");
    }
    db.lineage_barrier(db.latest_ts());
}

#[test]
fn all_systems_agree_on_history() {
    let spec = datasets::by_name("WikiTalk").unwrap().scaled(0.0003);
    let w = workload::generate(spec, 77);
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    ingest(&db, &w);

    let mut gradoop = baselines::GradoopLike::new();
    let mut classic = baselines::ClassicStore::new();
    // Aion assigns its own commit timestamps (one per batch); replay the
    // same batching into the baselines so histories align.
    let mut ts = 0u64;
    for (_, ops) in w.batches(500) {
        ts += 1;
        for op in &ops {
            gradoop.apply(ts, op);
            classic.apply(ts, op);
        }
    }
    let last = db.latest_ts();
    assert_eq!(last, ts);

    // Snapshots agree at several probes (Gradoop is the oracle here since
    // it has no multigraph restriction, unlike Raphtory).
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..5 {
        let probe = w.random_ts(&mut rng).min(last);
        let a = db.get_graph_at(probe).unwrap();
        let g = gradoop.snapshot_at(probe);
        assert!(
            a.same_as(&g),
            "aion vs gradoop snapshot mismatch at ts {probe}"
        );
    }
    // The final snapshot equals the non-temporal store's latest.
    assert!(db.latest_graph().same_as(&classic.snapshot_at(u64::MAX)));

    // Point queries agree between LineageStore and the TimeStore path.
    for _ in 0..200 {
        let rel = w.random_rel(&mut rng);
        let probe = w.random_ts(&mut rng).min(last);
        let via_lineage = db.lineagestore().rel_at(rel, probe).unwrap();
        let via_snapshot = db.get_graph_at(probe).unwrap().rel(rel).cloned();
        assert_eq!(via_lineage, via_snapshot, "rel {rel} at ts {probe}");
        assert_eq!(via_lineage, gradoop.rel_at(rel, probe));
    }
}

#[test]
fn expansion_paths_agree() {
    let spec = datasets::by_name("DBLP").unwrap().scaled(0.001);
    let w = workload::generate(spec, 13);
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    ingest(&db, &w);
    let last = db.latest_ts();
    let mut rng = SmallRng::seed_from_u64(5);
    for hops in [1u32, 2, 3] {
        for _ in 0..10 {
            let start = w.random_node(&mut rng);
            let a = db
                .lineagestore()
                .expand(start, Direction::Outgoing, hops, last);
            let b = db.expand_via_snapshot(start, Direction::Outgoing, hops, last);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    let mut xs: Vec<u64> = x.iter().map(|h| h.node.id.raw()).collect();
                    let mut ys: Vec<u64> = y.iter().map(|(n, _)| n.raw()).collect();
                    xs.sort_unstable();
                    ys.sort_unstable();
                    assert_eq!(xs, ys, "expand mismatch from {start} at {hops} hops");
                }
                (Err(_), Err(_)) => {} // node not alive in both
                other => panic!("one path failed: {other:?}"),
            }
        }
    }
}

#[test]
fn temporal_cypher_over_generated_history() {
    let spec = datasets::by_name("DBLP").unwrap().scaled(0.0005);
    let w = workload::generate(spec, 21);
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    ingest(&db, &w);
    let last = db.latest_ts();
    // The generator labels every node with StrId(0); our interner assigns
    // ids on first intern, so intern placeholders to align the vocabulary.
    let label0 = db.intern("GeneratedLabel");
    assert_eq!(label0.raw(), 2, "app-time keys occupy slots 0 and 1");
    // Count all nodes through Cypher at the final timestamp.
    let r = query::execute(
        &db,
        &format!("USE GDB FOR SYSTEM_TIME AS OF {last} MATCH (n) RETURN count(n)"),
        &query::Params::new(),
    )
    .unwrap();
    assert_eq!(
        r.rows[0][0],
        query::Value::Int(db.latest_graph().node_count() as i64)
    );
    // Point lookups agree with the API.
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..20 {
        let node = w.random_node(&mut rng);
        let r = query::execute(
            &db,
            &format!("MATCH (n) WHERE id(n) = {} RETURN id(n)", node.raw()),
            &query::Params::new(),
        )
        .unwrap();
        let api = db.latest_graph().has_node(node);
        assert_eq!(r.rows.len() == 1, api, "cypher vs api for node {node}");
    }
}

#[test]
fn procedures_match_reference_algorithms() {
    let spec = datasets::by_name("Pokec").unwrap().scaled(0.0002);
    let w = workload::generate(spec, 31);
    let dir = tempdir().unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    ingest(&db, &w);
    let last = db.latest_ts();
    let half = last / 2;
    let step = ((last - half) / 5).max(1);
    use aion::procedures::ExecMode;
    // The classic and incremental series must agree point-wise; correctness
    // of each engine against the oracle is covered in the algo crate.
    let weight = lpg::StrId::new(2);
    let c = db
        .proc_avg_series(weight, half, last + 1, step, ExecMode::Classic)
        .unwrap();
    let i = db
        .proc_avg_series(weight, half, last + 1, step, ExecMode::Incremental)
        .unwrap();
    for ((t1, a), (t2, b)) in c.points.iter().zip(i.points.iter()) {
        assert_eq!(t1, t2);
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "avg mismatch at {t1}"),
            (None, None) => {}
            other => panic!("avg mismatch at {t1}: {other:?}"),
        }
    }
    let c = db
        .proc_bfs_series(lpg::NodeId::new(0), half, last + 1, step, ExecMode::Classic)
        .unwrap();
    let i = db
        .proc_bfs_series(
            lpg::NodeId::new(0),
            half,
            last + 1,
            step,
            ExecMode::Incremental,
        )
        .unwrap();
    assert_eq!(c.points, i.points);
}
