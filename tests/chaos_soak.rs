//! Chaos soak: several seeded storms of client traffic are driven
//! through a fault-injecting TCP proxy ([`aion_server::ChaosProxy`])
//! sitting between resilient clients and a server with tight limits.
//! The proxy delays, corrupts, splits, and severs the byte stream; the
//! suite then asserts the system's network contract held:
//!
//! * **no hangs** — every client thread reports within a deadline;
//! * **no worker leaks** — the server drains to zero connections;
//! * **at-most-once writes** — no client ever observes a replayed
//!   `CREATE` (each write uses a unique `_id`, so a replay surfaces as
//!   "already exists");
//! * **no acknowledged-commit loss** — every `_id` whose `CREATE` was
//!   acked over the wire is durable in the store afterwards;
//! * **storage integrity** — the full consistency audit is clean after
//!   the storm.
//!
//! Seeds and client counts are env-tunable for CI (`AION_CHAOS_SEEDS`,
//! `AION_CHAOS_CLIENTS`); the defaults keep the test under a few
//! seconds per seed.

use aion::{Aion, AionConfig};
use aion_server::{ChaosConfig, ChaosProxy, Client, ClientConfig, Server, ServerConfig};
use lpg::NodeId;
use std::net::SocketAddr;
use std::sync::{mpsc, Arc};
use std::time::Duration;
use tempfile::tempdir;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn chaos_storm_preserves_network_contract() {
    let seeds = env_u64("AION_CHAOS_SEEDS", 3);
    let clients = env_u64("AION_CHAOS_CLIENTS", 4) as usize;
    for seed in 0..seeds {
        run_storm(seed, clients);
    }
}

/// Ops each client attempts per storm.
const OPS_PER_CLIENT: u64 = 40;

fn run_storm(seed: u64, clients: usize) {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let mut server = Server::start_with(
        db.clone(),
        ServerConfig {
            max_connections: 64,
            io_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(2),
            // The storm triggers slow queries by design; keep CI logs quiet.
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut proxy = ChaosProxy::start(server.addr(), ChaosConfig::storm(seed)).unwrap();
    let proxy_addr = proxy.addr();

    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for c in 0..clients {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let outcome = client_loop(proxy_addr, seed, c as u64);
            let _ = tx.send((c, outcome));
        }));
    }
    drop(tx);

    // No-hang guard: a stuck worker or client shows up here as a timeout
    // instead of wedging the whole test binary.
    let mut acked: Vec<u64> = Vec::new();
    for _ in 0..clients {
        let (c, outcome) = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("a chaos client hung (seed {seed})"));
        assert_eq!(
            outcome.double_applies, 0,
            "client {c} observed a replayed write (seed {seed})"
        );
        acked.extend(outcome.acked_ids);
    }
    for h in handles {
        h.join().unwrap();
    }

    proxy.stop();
    let faults = proxy.stats().total_faults();
    assert!(faults > 0, "storm injected no faults (seed {seed})");

    server.shutdown();
    assert_eq!(
        server.active_connections(),
        0,
        "worker leak after storm (seed {seed})"
    );

    // Every acknowledged commit must be durable; the reverse (applied
    // but unacked, because the *response* was corrupted) is legal
    // at-most-once behaviour and is not asserted against.
    let latest = db.latest_ts();
    db.lineage_barrier(latest);
    for id in &acked {
        let history = db.get_node(NodeId::new(*id), 0, latest + 1).unwrap();
        assert!(
            !history.is_empty(),
            "acked commit for _id {id} lost (seed {seed})"
        );
    }
    let report = db.check_consistency(aion::CheckLevel::Full).unwrap();
    assert!(
        report.is_clean(),
        "post-storm audit (seed {seed}): {report:?}"
    );
}

struct ClientOutcome {
    /// `_id`s whose CREATE got a successful response over the wire.
    acked_ids: Vec<u64>,
    /// "already exists" errors — evidence of a replayed write.
    double_applies: u64,
}

fn client_loop(addr: SocketAddr, seed: u64, client_no: u64) -> ClientOutcome {
    let cfg = ClientConfig {
        connect_timeout: Duration::from_secs(5),
        // Tight: a corrupted length header can leave a read waiting for
        // bytes that never arrive, and that wait bounds the soak's runtime.
        request_timeout: Duration::from_secs(2),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        jitter_seed: seed.wrapping_mul(1_000_003) ^ client_no,
    };
    let mut out = ClientOutcome {
        acked_ids: Vec::new(),
        double_applies: 0,
    };
    // The proxy may sever the connection during the handshake itself, so
    // even construction needs retries.
    let mut client = None;
    for _ in 0..20 {
        match Client::connect_with(addr, cfg.clone()) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let Some(mut client) = client else {
        return out;
    };
    for op in 0..OPS_PER_CLIENT {
        // Unique per (seed, client, op): a replay is detectable.
        let id = 1 + seed * 10_000_000 + client_no * 100_000 + op;
        match op % 4 {
            // Reads and pings vary frame sizes and exercise idempotent
            // retries; errors are expected under the storm and ignored.
            3 => {
                let _ = client.run("MATCH (n:Soak) RETURN count(n)", Vec::new());
            }
            2 if op % 8 == 6 => {
                let _ = client.ping();
            }
            _ => match client.run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new()) {
                Ok(_) => out.acked_ids.push(id),
                Err(e) => {
                    // At-most-once violation: this unique id was already
                    // present, so some layer replayed the write.
                    if e.to_string().contains("already exists") {
                        out.double_applies += 1;
                    }
                }
            },
        }
    }
    out
}
