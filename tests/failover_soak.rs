//! Failover chaos soak (DESIGN.md §17): a primary and two replicas
//! replicate through fault-injecting [`aion_server::ChaosProxy`] links
//! while writers commit through the query layer. Mid-storm the
//! replication links are severed, the primary acks a few more commits
//! (the divergent suffix), and then it is killed. The most-caught-up
//! replica is promoted through the server's `Promote` control
//! operation; routed clients fail over to it by probing epochs; the
//! lagging replica re-points; the deposed primary rejoins via
//! [`repl::prepare_rejoin`]. The suite asserts the failover contract:
//!
//! * **no acked commit in any epoch lost** — every acked `_id` is
//!   either present on every node after convergence or decodable from
//!   the divergence archive (nothing simply vanishes);
//! * **byte-exact quarantine** — the archive body equals the deposed
//!   primary's log suffix beyond the fork offset, verbatim;
//! * **fencing** — the rejoined old primary refuses direct writes with
//!   the typed `Fenced` error;
//! * **client-transparent rerouting** — a `RoutedClient` still pointed
//!   at the dead primary finds the new one by epoch probing
//!   (`client.route.failovers` advances) and read-your-writes holds on
//!   the new timeline;
//! * **monotone epochs and watermarks** — neither a replica watermark
//!   nor the `repl.epoch` gauge ever moves backwards;
//! * **clean audits** — `CheckLevel::Full` is clean on all three nodes.
//!
//! Knobs: `AION_FAILOVER_SOAK_SEEDS` (default 2),
//! `AION_FAILOVER_SOAK_OPS` (writes per writer, default 25).

use aion::{Aion, AionConfig, CheckLevel};
use aion_server::{
    ChaosConfig, ChaosProxy, Client, ClientConfig, RoutedClient, Server, ServerConfig,
};
use lpg::NodeId;
use repl::{prepare_rejoin, read_divergence_archive, ReplNode, ReplNodeConfig, ReplayerConfig};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tempfile::tempdir;
use vfs::VfsRef;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn client_config(seed: u64, n: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(2),
        retries: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        jitter_seed: seed.wrapping_mul(1_000_003) ^ n,
    }
}

#[test]
fn failover_chaos_soak() {
    let seeds = env_u64("AION_FAILOVER_SOAK_SEEDS", 2);
    let ops = env_u64("AION_FAILOVER_SOAK_OPS", 25);
    for seed in 0..seeds {
        run_failover(seed, ops);
    }
}

struct ReplicaHarness {
    db: Arc<Aion>,
    node: Arc<Mutex<ReplNode>>,
    proxy: ChaosProxy,
    server: Server,
    dir: tempfile::TempDir,
}

fn start_replica(seed: u64, shipper_addr: SocketAddr) -> ReplicaHarness {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let proxy = ChaosProxy::start(shipper_addr, ChaosConfig::storm(seed)).unwrap();
    let server = Server::start_with(
        db.clone(),
        ServerConfig {
            read_only: true,
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut cfg = ReplayerConfig::new(proxy.addr(), dir.path());
    cfg.sync_every = 4;
    cfg.reconnect_backoff = Duration::from_millis(5);
    let node = Arc::new(Mutex::new(ReplNode::new_replica(
        db.clone(),
        cfg,
        ReplNodeConfig::default(),
        server.read_only_flag(),
    )));
    // Wire the Promote control operation straight to the role manager —
    // the same path `aion-admin promote` exercises.
    let handler_node = node.clone();
    server.set_promote_handler(move || {
        let mut node = handler_node.lock().unwrap_or_else(|p| p.into_inner());
        node.promote().map(|record| record.epoch)
    });
    ReplicaHarness {
        db,
        node,
        proxy,
        server,
        dir,
    }
}

fn run_failover(seed: u64, ops: u64) {
    let pdir = tempdir().unwrap();
    let primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let node_p = ReplNode::new_primary(
        primary.clone(),
        VfsRef::std(),
        pdir.path(),
        ReplNodeConfig::default(),
    )
    .unwrap();
    let shipper_addr = node_p.shipper_addr().unwrap();
    let mut primary_srv = Server::start_with(
        primary.clone(),
        ServerConfig {
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let primary_addr = primary_srv.addr();

    let mut replicas = vec![
        start_replica(seed.wrapping_mul(2) + 1, shipper_addr),
        start_replica(seed.wrapping_mul(2) + 2, shipper_addr),
    ];
    let replica_addrs: Vec<_> = replicas.iter().map(|r| r.server.addr()).collect();

    // Monitors: replica watermarks and every node's epoch chain are
    // monotone through the storm, the kill, and the failover.
    let stop_monitor = Arc::new(AtomicBool::new(false));
    let monitor = {
        let stop = stop_monitor.clone();
        let probes: Vec<_> = replicas
            .iter()
            .map(|r| {
                let node = r.node.lock().unwrap_or_else(|p| p.into_inner());
                let replayer = node.replayer().expect("replica must be replaying");
                replayer.watermark_probe()
            })
            .collect();
        let nodes: Vec<_> = replicas.iter().map(|r| r.node.clone()).collect();
        std::thread::spawn(move || {
            let mut last_wm: Vec<_> = probes.iter().map(|p| p()).collect();
            let mut last_epoch = vec![0u64; nodes.len()];
            while !stop.load(Ordering::Acquire) {
                for (i, probe) in probes.iter().enumerate() {
                    let now = probe();
                    assert!(
                        now.offset >= last_wm[i].offset && now.ts >= last_wm[i].ts,
                        "replica {i} watermark regressed: {:?} -> {now:?} (seed {seed})",
                        last_wm[i]
                    );
                    last_wm[i] = now;
                }
                for (i, node) in nodes.iter().enumerate() {
                    let epoch = {
                        let node = node.lock().unwrap_or_else(|p| p.into_inner());
                        node.epochs().current().epoch
                    };
                    assert!(
                        epoch >= last_epoch[i],
                        "node {i} epoch regressed: {} -> {epoch} (seed {seed})",
                        last_epoch[i]
                    );
                    last_epoch[i] = epoch;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // Phase A — storm: writers commit unique _ids through the primary's
    // query server while the replication links chew on chaos.
    let (tx, rx) = mpsc::channel::<Vec<u64>>();
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let tx = tx.clone();
        let cfg = client_config(seed, w);
        handles.push(std::thread::spawn(move || {
            let mut acked = Vec::new();
            if let Ok(mut client) = Client::connect_with(primary_addr, cfg) {
                for op in 0..ops {
                    let id = 1 + seed * 10_000_000 + w * 100_000 + op;
                    if client
                        .run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new())
                        .is_ok()
                    {
                        acked.push(id);
                    }
                }
            }
            let _ = tx.send(acked);
        }));
    }
    drop(tx);
    let mut acked_old_epoch: Vec<u64> = Vec::new();
    for _ in 0..2 {
        let ids = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|_| panic!("a soak writer hung (seed {seed})"));
        acked_old_epoch.extend(ids);
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        !acked_old_epoch.is_empty(),
        "storm acked nothing (seed {seed})"
    );
    // Writers can finish before the storm has had a chance to bite; the
    // replication links keep flowing (frames, heartbeats), so hold the
    // storm open until faults landed and both replicas made progress.
    assert!(
        wait_for(30, || {
            replicas
                .iter()
                .map(|r| r.proxy.stats().total_faults())
                .sum::<u64>()
                > 0
                && replicas.iter().all(|r| r.db.latest_ts() > 0)
        }),
        "storm injected no faults (seed {seed})"
    );

    // Phase B — sever replication, then ack a divergent suffix: these
    // commits can never ship, so rejoin must quarantine them.
    for r in &mut replicas {
        r.proxy.stop();
    }
    let mut divergent_acked = Vec::new();
    {
        let mut client = Client::connect_with(primary_addr, client_config(seed, 7)).unwrap();
        for op in 0..5u64 {
            let id = 1 + seed * 10_000_000 + 500_000 + op;
            client
                .run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new())
                .unwrap_or_else(|e| panic!("divergent write {id} refused: {e} (seed {seed})"));
            divergent_acked.push(id);
        }
    }
    acked_old_epoch.extend(&divergent_acked);

    // Phase C — kill the primary and promote the most-caught-up replica
    // (highest replayed timestamp) through the Promote control op.
    primary_srv.shutdown();
    drop(node_p);
    let pre_kill_log = VfsRef::std()
        .read(&pdir.path().join("timestore/timestore.log"))
        .unwrap();
    drop(primary_srv);
    drop(primary);

    let target = usize::from(replicas[1].db.latest_ts() > replicas[0].db.latest_ts());
    let lagging = 1 - target;
    let mut admin = Client::connect_with(replica_addrs[target], client_config(seed, 8)).unwrap();
    let new_epoch = admin.promote().unwrap();
    assert_eq!(new_epoch, 1, "first promotion must mint epoch 1");
    let status = admin.status().unwrap();
    assert!(status.writable(), "promoted node must accept writes");
    assert_eq!(status.epoch, 1);
    let fence_ts = {
        let node = replicas[target]
            .node
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        node.epochs().current().base_ts
    };
    let new_shipper_addr = {
        let node = replicas[target]
            .node
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        node.shipper_addr().expect("promoted node must ship")
    };

    // Re-point the lagging replica at the new primary.
    {
        let mut node = replicas[lagging]
            .node
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        node.shutdown();
        let mut cfg = ReplayerConfig::new(new_shipper_addr, replicas[lagging].dir.path());
        cfg.sync_every = 4;
        cfg.reconnect_backoff = Duration::from_millis(5);
        *node = ReplNode::new_replica(
            replicas[lagging].db.clone(),
            cfg,
            ReplNodeConfig::default(),
            replicas[lagging].server.read_only_flag(),
        );
    }

    // Phase D — client-transparent rerouting: a router still configured
    // with the dead primary probes epochs and lands on the new one.
    let failovers_before = obs::counter("client.route.failovers").get();
    let mut router = RoutedClient::new(primary_addr, replica_addrs.clone(), client_config(seed, 9));
    let mut acked_new_epoch = Vec::new();
    for op in 0..ops {
        let id = 1 + seed * 10_000_000 + 700_000 + op;
        router
            .run(&format!("CREATE (n:Soak {{_id: {id}}})"), Vec::new())
            .unwrap_or_else(|e| panic!("post-failover write {id} failed: {e} (seed {seed})"));
        acked_new_epoch.push(id);
        let rows = router
            .run(
                &format!("MATCH (n) WHERE id(n) = {id} RETURN n"),
                Vec::new(),
            )
            .map(|r| r.rows.len());
        assert_eq!(
            rows.ok(),
            Some(1),
            "read-your-writes violated across failover for _id {id} (seed {seed})"
        );
    }
    assert!(
        obs::counter("client.route.failovers").get() > failovers_before,
        "router never recorded a failover (seed {seed})"
    );

    // Phase E — the deposed primary rejoins: quarantine the divergent
    // suffix, verify it byte-exact, and resync as a replica.
    let vfs = VfsRef::std();
    let report =
        prepare_rejoin(&vfs, pdir.path(), new_shipper_addr, Duration::from_secs(5)).unwrap();
    assert_eq!(report.primary_epoch, 1);
    assert_eq!(report.fence_ts, fence_ts);
    let archived_ids: BTreeSet<u64> = match &report.archive_path {
        Some(path) => {
            let archive = read_divergence_archive(&vfs, path).unwrap();
            assert_eq!(archive.epoch, 1);
            assert_eq!(
                archive.bytes,
                pre_kill_log[report.fork_offset as usize..],
                "divergence archive is not byte-exact (seed {seed})"
            );
            let frames = archive.frames();
            assert!(frames.iter().all(|f| f.ts > fence_ts));
            frames
                .iter()
                .flat_map(|f| f.records.iter().map(|(entity, _)| *entity))
                .collect()
        }
        None => BTreeSet::new(),
    };
    // The suffix acked after the links were severed can never have
    // shipped; it must be in the archive.
    for id in &divergent_acked {
        assert!(
            archived_ids.contains(id),
            "divergent acked _id {id} missing from the archive (seed {seed})"
        );
    }

    let rejoined = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let rejoined_srv = Server::start_with(
        rejoined.clone(),
        ServerConfig {
            read_only: true,
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut cfg = ReplayerConfig::new(new_shipper_addr, pdir.path());
    cfg.sync_every = 4;
    cfg.reconnect_backoff = Duration::from_millis(5);
    let node_rejoined = ReplNode::new_replica(
        rejoined.clone(),
        cfg,
        ReplNodeConfig::default(),
        rejoined_srv.read_only_flag(),
    );
    // The rejoined node adopted epoch 1 during rejoin prep but holds no
    // epoch itself: once its replication role loads the chain, direct
    // writes are refused with the typed fence error.
    let fence_err = rejoined
        .write(|tx| tx.add_node(NodeId::new(999_999_999), vec![], vec![]))
        .expect_err("deposed primary must be fenced");
    assert!(
        matches!(fence_err, lpg::GraphError::Fenced { .. }),
        "want Fenced, got {fence_err:?} (seed {seed})"
    );

    // Phase F — convergence and the cross-epoch audit.
    let new_primary = &replicas[target].db;
    let others = [&replicas[lagging].db, &rejoined];
    for (i, db) in others.iter().enumerate() {
        assert!(
            wait_for(30, || db.latest_ts() == new_primary.latest_ts()),
            "node {i} never converged on the new timeline: {} vs {} (seed {seed})",
            db.latest_ts(),
            new_primary.latest_ts()
        );
    }
    stop_monitor.store(true, Ordering::Release);
    monitor.join().unwrap();

    new_primary.lineage_barrier(new_primary.latest_ts());
    let final_graph = new_primary.latest_graph();
    let mut lost = Vec::new();
    for id in acked_old_epoch.iter().chain(&acked_new_epoch) {
        let surviving = final_graph.node(NodeId::new(*id)).is_some();
        if !surviving && !archived_ids.contains(id) {
            lost.push(*id);
        }
    }
    assert!(
        lost.is_empty(),
        "acked commits neither survived nor archived: {lost:?} (seed {seed})"
    );
    // Epoch-1 acks are on the authoritative timeline, never quarantined.
    for id in &acked_new_epoch {
        assert!(
            final_graph.node(NodeId::new(*id)).is_some(),
            "epoch-1 acked _id {id} lost (seed {seed})"
        );
    }
    let final_nodes = final_graph.node_count();
    for (i, db) in others.iter().enumerate() {
        let g = db.latest_graph();
        assert_eq!(
            g.node_count(),
            final_nodes,
            "node {i} count diverges after failover (seed {seed})"
        );
    }
    for (name, db) in [
        ("new primary", new_primary),
        ("lagging replica", others[0]),
        ("rejoined primary", others[1]),
    ] {
        let audit = db.check_consistency(CheckLevel::Full).unwrap();
        assert!(
            audit.is_clean(),
            "{name} audit dirty (seed {seed}): {audit:?}"
        );
    }

    drop(node_rejoined);
    let mut rejoined_srv = rejoined_srv;
    rejoined_srv.shutdown();
    for r in &mut replicas {
        r.node.lock().unwrap_or_else(|p| p.into_inner()).shutdown();
        r.server.shutdown();
    }
}

/// Satellite regression: a paged read does not lose its cursor when the
/// transport under it fails. The client classifies paged reads as
/// idempotent (retried internally) and [`aion_server::client`]'s page
/// iterator keeps its resume token on transport errors, so pagination
/// survives reconnects — the exact shape of a failover re-route.
#[test]
fn pagination_survives_transport_faults() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let total = 60u64;
    db.write(|tx| {
        for id in 1..=total {
            tx.add_node(NodeId::new(id), vec![], vec![])?;
        }
        Ok(())
    })
    .unwrap();
    let mut server = Server::start_with(
        db.clone(),
        ServerConfig {
            slow_log_per_sec: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The client talks through a fault-injecting proxy: pages fail
    // mid-iteration, the client reconnects, and the cursor must resume
    // exactly where it left off — every id once, none twice.
    let mut proxy = ChaosProxy::start(server.addr(), ChaosConfig::storm(11)).unwrap();
    let mut client = Client::connect_with(proxy.addr(), client_config(11, 0)).unwrap();
    let mut seen = Vec::new();
    let mut transport_errors = 0u64;
    let mut pages = client.pages("MATCH (n) RETURN n", Vec::new(), 7);
    loop {
        match pages.next() {
            Some(Ok(page)) => {
                seen.extend(page.rows.iter().filter_map(|row| match row.first() {
                    Some(query::Value::Node { id, .. }) => Some(*id),
                    _ => None,
                }));
            }
            Some(Err(e)) => {
                assert_ne!(
                    e.kind(),
                    std::io::ErrorKind::InvalidInput,
                    "cursor must stay valid across transport faults: {e}"
                );
                transport_errors += 1;
                assert!(
                    transport_errors < 1_000,
                    "pagination never made progress through the storm"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            None => break,
        }
    }
    let unique: BTreeSet<u64> = seen.iter().copied().collect();
    assert_eq!(
        seen.len(),
        unique.len(),
        "pagination duplicated rows across reconnects"
    );
    assert_eq!(
        unique,
        (1..=total).collect::<BTreeSet<u64>>(),
        "pagination lost rows across reconnects"
    );
    proxy.stop();
    server.shutdown();
}
