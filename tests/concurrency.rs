//! Concurrency stress: writers and temporal readers racing on one Aion
//! instance. Validates the HTAP claim — reads are unaffected by the
//! temporal machinery and never observe inconsistent states, while writes
//! keep strictly increasing commit timestamps.

use aion::{Aion, AionConfig};
use lpg::{Direction, NodeId, PropertyValue, RelId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tempfile::tempdir;

#[test]
fn writers_and_readers_race_safely() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let value = db.intern("value");

    // Seed a ring.
    const N: u64 = 40;
    for i in 0..N {
        db.write(|txn| txn.add_node(NodeId::new(i), vec![], vec![]))
            .unwrap();
    }
    for i in 0..N {
        db.write(|txn| {
            txn.add_rel(
                RelId::new(i),
                NodeId::new(i),
                NodeId::new((i + 1) % N),
                None,
                vec![],
            )
        })
        .unwrap();
    }
    let seeded_ts = db.latest_ts();

    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));

    // Writer: property churn plus node/rel growth.
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        let commits = commits.clone();
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let ts = db
                    .write(|txn| {
                        txn.set_node_prop(NodeId::new(i % N), value, PropertyValue::Int(i as i64))
                    })
                    .expect("write");
                assert!(ts > last, "commit timestamps must increase");
                last = ts;
                commits.fetch_add(1, Ordering::Relaxed);
            }
            last
        })
    };

    // Readers: latest-graph scans, historical snapshots, point histories.
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut iters = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    iters += 1;
                    match r {
                        0 => {
                            // Latest graph is always structurally consistent.
                            let g = db.latest_graph();
                            assert_eq!(g.rel_count(), N as usize);
                            assert!(g.node_count() >= N as usize);
                            g.check_consistency().expect("consistent latest");
                        }
                        1 => {
                            // Historical snapshot while writes continue.
                            let g = db.get_graph_at(seeded_ts).expect("snapshot");
                            assert_eq!(g.node_count(), N as usize);
                            assert_eq!(g.rel_count(), N as usize);
                        }
                        _ => {
                            // Point history through the fallback-aware API.
                            let id = NodeId::new(iters % N);
                            let end = db.latest_ts() + 1;
                            let hist = db.get_node(id, 0, end).expect("history");
                            assert!(!hist.is_empty());
                            // Versions must be well-formed.
                            for w in hist.windows(2) {
                                assert!(w[0].valid.end <= w[1].valid.start);
                            }
                            let _ = db.get_relationships(id, Direction::Both, 0, end);
                        }
                    }
                }
                iters
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    let last_ts = writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made progress");
    }
    let total_commits = commits.load(Ordering::Relaxed);
    assert!(total_commits > 50, "writer made progress ({total_commits})");

    // Quiesce and verify end state from both stores.
    db.lineage_barrier(last_ts);
    let final_graph = db.latest_graph();
    final_graph.check_consistency().unwrap();
    let via_lineage = db.lineagestore().snapshot_at(last_ts).unwrap();
    assert!(via_lineage.same_as(&final_graph), "stores converge");
}

#[test]
fn concurrent_writers_serialize() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut stamps = Vec::new();
                for i in 0..100u64 {
                    let id = NodeId::new(t * 1_000 + i);
                    stamps.push(db.write(|txn| txn.add_node(id, vec![], vec![])).unwrap());
                }
                stamps
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    // Every commit got a unique timestamp.
    all.sort_unstable();
    let len = all.len();
    all.dedup();
    assert_eq!(all.len(), len, "no duplicate commit timestamps");
    assert_eq!(db.latest_graph().node_count(), 400);
    // History replays to the same end state after the races.
    let replayed = db.get_graph_at(db.latest_ts()).unwrap();
    assert!(replayed.same_as(&db.latest_graph()));
}
