//! Concurrency stress: writers and temporal readers racing on one Aion
//! instance. Validates the HTAP claim — reads are unaffected by the
//! temporal machinery and never observe inconsistent states, while writes
//! keep strictly increasing commit timestamps.

use aion::{Aion, AionConfig};
use lpg::{Direction, NodeId, PropertyValue, RelId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tempfile::tempdir;
use vfs::{SimVfs, VfsRef};

#[test]
fn writers_and_readers_race_safely() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let value = db.intern("value");

    // Seed a ring.
    const N: u64 = 40;
    for i in 0..N {
        db.write(|txn| txn.add_node(NodeId::new(i), vec![], vec![]))
            .unwrap();
    }
    for i in 0..N {
        db.write(|txn| {
            txn.add_rel(
                RelId::new(i),
                NodeId::new(i),
                NodeId::new((i + 1) % N),
                None,
                vec![],
            )
        })
        .unwrap();
    }
    let seeded_ts = db.latest_ts();

    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));

    // Writer: property churn plus node/rel growth.
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        let commits = commits.clone();
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let ts = db
                    .write(|txn| {
                        txn.set_node_prop(NodeId::new(i % N), value, PropertyValue::Int(i as i64))
                    })
                    .expect("write");
                assert!(ts > last, "commit timestamps must increase");
                last = ts;
                commits.fetch_add(1, Ordering::Relaxed);
            }
            last
        })
    };

    // Readers: latest-graph scans, historical snapshots, point histories.
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut iters = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    iters += 1;
                    match r {
                        0 => {
                            // Latest graph is always structurally consistent.
                            let g = db.latest_graph();
                            assert_eq!(g.rel_count(), N as usize);
                            assert!(g.node_count() >= N as usize);
                            g.check_consistency().expect("consistent latest");
                        }
                        1 => {
                            // Historical snapshot while writes continue.
                            let g = db.get_graph_at(seeded_ts).expect("snapshot");
                            assert_eq!(g.node_count(), N as usize);
                            assert_eq!(g.rel_count(), N as usize);
                        }
                        _ => {
                            // Point history through the fallback-aware API.
                            let id = NodeId::new(iters % N);
                            let end = db.latest_ts() + 1;
                            let hist = db.get_node(id, 0, end).expect("history");
                            assert!(!hist.is_empty());
                            // Versions must be well-formed.
                            for w in hist.windows(2) {
                                assert!(w[0].valid.end <= w[1].valid.start);
                            }
                            let _ = db.get_relationships(id, Direction::Both, 0, end);
                        }
                    }
                }
                iters
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    let last_ts = writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made progress");
    }
    let total_commits = commits.load(Ordering::Relaxed);
    assert!(total_commits > 50, "writer made progress ({total_commits})");

    // Quiesce and verify end state from both stores.
    db.lineage_barrier(last_ts);
    let final_graph = db.latest_graph();
    final_graph.check_consistency().unwrap();
    let via_lineage = db.lineagestore().snapshot_at(last_ts).unwrap();
    assert!(via_lineage.same_as(&final_graph), "stores converge");
}

#[test]
fn concurrent_writers_serialize() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut stamps = Vec::new();
                for i in 0..100u64 {
                    let id = NodeId::new(t * 1_000 + i);
                    stamps.push(db.write(|txn| txn.add_node(id, vec![], vec![])).unwrap());
                }
                stamps
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    // Every commit got a unique timestamp.
    all.sort_unstable();
    let len = all.len();
    all.dedup();
    assert_eq!(all.len(), len, "no duplicate commit timestamps");
    assert_eq!(db.latest_graph().node_count(), 400);
    // History replays to the same end state after the races.
    let replayed = db.get_graph_at(db.latest_ts()).unwrap();
    assert!(replayed.same_as(&db.latest_graph()));
}

/// Group commit must actually coalesce: with 8 writers committing under
/// `sync_on_commit` and a small latency budget, the log-writer thread
/// batches concurrent commits into shared fsyncs, so the
/// `core.group_commit.size` histogram records fewer groups (= fsyncs)
/// than commits while every commit still gets a distinct, per-thread
/// monotone timestamp.
#[test]
fn group_commit_coalesces_concurrent_writers() {
    let dir = tempdir().unwrap();
    let mut cfg = AionConfig::new(dir.path());
    cfg.sync_on_commit = true;
    cfg.commit_latency_budget = std::time::Duration::from_millis(2);
    let db = Arc::new(Aion::open(cfg).unwrap());

    // Metrics are process-global; measure this test as a delta.
    let before = obs::snapshot();
    let (groups0, commits0) = before
        .histogram("core.group_commit.size")
        .map(|h| (h.count, h.sum))
        .unwrap_or((0, 0));

    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 40;
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut stamps = Vec::with_capacity(PER_WRITER as usize);
                for i in 0..PER_WRITER {
                    let id = NodeId::new(t * 10_000 + i);
                    stamps.push(db.write(|txn| txn.add_node(id, vec![], vec![])).unwrap());
                }
                stamps
            })
        })
        .collect();
    let per_thread: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Each thread saw strictly increasing acknowledgements...
    for stamps in &per_thread {
        for w in stamps.windows(2) {
            assert!(w[0] < w[1], "per-thread commit order preserved");
        }
    }
    // ...and across threads every commit got a unique timestamp.
    let mut all: Vec<u64> = per_thread.iter().flatten().copied().collect();
    all.sort_unstable();
    let len = all.len();
    all.dedup();
    assert_eq!(all.len(), len, "no duplicate commit timestamps");
    assert_eq!(len as u64, WRITERS * PER_WRITER);

    let after = obs::snapshot();
    let (groups1, commits1) = after
        .histogram("core.group_commit.size")
        .map(|h| (h.count, h.sum))
        .expect("group size histogram exists");
    let groups = groups1 - groups0;
    let commits = commits1 - commits0;
    assert_eq!(
        commits,
        WRITERS * PER_WRITER,
        "histogram sum counts every commit"
    );
    assert!(
        groups < commits,
        "coalescing: {groups} fsync groups must be fewer than {commits} commits"
    );

    // The grouped commits are all durable and replayable.
    db.lineage_barrier(db.latest_ts());
    assert_eq!(
        db.latest_graph().node_count(),
        (WRITERS * PER_WRITER) as usize
    );
    let replayed = db.get_graph_at(db.latest_ts()).unwrap();
    assert!(replayed.same_as(&db.latest_graph()));
}

/// Temporal readers racing the background lineage cascade while it catches
/// up after a simulated crash and reopen. Pre-crash, commits are fsynced
/// (`sync_on_commit`) but the LineageStore never is, so the crash leaves
/// the lineage far behind the durable log; the reopen must replay the gap,
/// and readers must see consistent history throughout the post-reopen
/// churn (fallback to the TimeStore whenever the cascade lags).
#[test]
fn readers_race_cascade_catchup_after_crash_reopen() {
    let sim = SimVfs::new(7);
    let config = || {
        let mut cfg = AionConfig::new(PathBuf::from("/simdb"));
        cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
        cfg.sync_on_commit = true; // durable log, never-synced lineage
        cfg
    };

    // Phase 1: a committed prefix, then a crash before any lineage sync.
    const PRE: u64 = 60;
    {
        let db = Aion::open(config()).unwrap();
        let value = db.intern("value");
        for i in 0..PRE {
            db.write(|txn| {
                txn.add_node(
                    NodeId::new(i),
                    vec![],
                    vec![(value, PropertyValue::Int(i as i64))],
                )
            })
            .unwrap();
        }
        // Let the cascade apply everything in memory, then pull the plug:
        // the page cache never reached the file, so the durable lineage is
        // still empty while all PRE commits are in the fsynced log.
        db.lineage_barrier(db.latest_ts());
        sim.crash_now();
    }
    assert!(sim.has_crashed());
    sim.heal();

    // Phase 2: reopen replays the gap, then readers race fresh writes
    // flowing through the background cascade.
    let db = Arc::new(Aion::open(config()).unwrap());
    assert_eq!(db.latest_ts(), PRE, "fsynced commits survive the crash");
    assert_eq!(
        db.lineagestore().applied_ts(),
        PRE,
        "reopen catch-up replays the cascade gap"
    );
    let report = db.check_consistency(aion::CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "post-recovery audit: {report:?}");

    let value = db.intern("value");
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = PRE;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                db.write(|txn| {
                    txn.add_node(
                        NodeId::new(i),
                        vec![],
                        vec![(value, PropertyValue::Int(i as i64))],
                    )
                })
                .expect("post-reopen write");
            }
            i
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut iters = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    iters += 1;
                    match r {
                        0 => {
                            // The pre-crash prefix is immutable history.
                            let g = db.get_graph_at(PRE).expect("prefix snapshot");
                            assert_eq!(g.node_count(), PRE as usize);
                        }
                        1 => {
                            // Point history across the crash boundary; the
                            // cascade may still lag, forcing the fallback.
                            let id = NodeId::new(iters % PRE);
                            let end = db.latest_ts() + 1;
                            let hist = db.get_node(id, 0, end).expect("history");
                            assert!(!hist.is_empty());
                            for w in hist.windows(2) {
                                assert!(w[0].valid.end <= w[1].valid.start);
                            }
                        }
                        _ => {
                            let g = db.latest_graph();
                            assert!(g.node_count() >= PRE as usize);
                            g.check_consistency().expect("consistent latest");
                        }
                    }
                }
                iters
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    let last = writer.join().unwrap();
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made progress");
    }
    assert!(last > PRE, "writer made progress after reopen");

    // Quiesce: the cascade drains and both stores agree again.
    db.lineage_barrier(db.latest_ts());
    assert!(!db.lineage_wedged(), "no faults were armed");
    let final_graph = db.latest_graph();
    let via_lineage = db.lineagestore().snapshot_at(db.latest_ts()).unwrap();
    assert!(via_lineage.same_as(&final_graph), "stores converge");
    let report = db.check_consistency(aion::CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "final audit: {report:?}");
}
