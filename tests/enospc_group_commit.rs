//! Out-of-space during group commit (DESIGN.md §15): when every
//! mutating VFS operation fails with transient `ENOSPC`/`EIO`, the
//! group-commit log writer must degrade to **clean typed rejections** —
//! each writer gets an error naming the injected fault, nothing is
//! acked, nothing wedges — and recover to full service the moment space
//! returns, with no residue from the rejected commits.

use aion::{Aion, AionConfig, CheckLevel};
use lpg::NodeId;
use std::sync::Arc;
use std::time::Duration;
use vfs::{FaultConfig, SimVfs, VfsRef};

fn config(sim: &SimVfs) -> AionConfig {
    let mut cfg = AionConfig::new("/enospc-db");
    cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
    cfg.sync_on_commit = true;
    // A real latency budget so concurrent writers actually share group
    // fsyncs — the degradation under test is the log writer's, not the
    // per-caller fallback's.
    cfg.commit_latency_budget = Duration::from_millis(1);
    cfg
}

fn create(db: &Aion, id: u64) -> Result<u64, lpg::GraphError> {
    db.write(|tx| tx.add_node(NodeId::new(id), vec![], vec![]))
}

#[test]
fn enospc_during_group_commit_rejects_cleanly_and_recovers() {
    let sim = SimVfs::new(77);
    let db = Arc::new(Aion::open(config(&sim)).unwrap());

    // Healthy baseline.
    for id in 1..=10 {
        create(&db, id).unwrap();
    }
    let healthy_ts = db.latest_ts();

    // The disk fills: every mutating operation now fails.
    sim.arm(FaultConfig {
        io_error_rate: 1.0,
        ..FaultConfig::none()
    });

    // Concurrent writers all get typed rejections — no panic, no hang,
    // no partial ack. The error carries the injected fault through the
    // whole commit pipeline.
    let handles: Vec<_> = (0..4u64)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut errors = Vec::new();
                for op in 0..5u64 {
                    match create(&db, 1_000 + w * 100 + op) {
                        Ok(ts) => return Err(ts),
                        Err(e) => errors.push(e.to_string()),
                    }
                }
                Ok(errors)
            })
        })
        .collect();
    for h in handles {
        let errors = h
            .join()
            .expect("writer must not panic under ENOSPC")
            .unwrap_or_else(|ts| panic!("write acked at ts {ts} on a full disk"));
        assert_eq!(errors.len(), 5);
        for e in &errors {
            assert!(
                e.contains("injected"),
                "rejection must surface the storage fault, got: {e}"
            );
        }
    }
    assert_eq!(
        db.latest_ts(),
        healthy_ts,
        "a rejected commit must not advance the timeline"
    );

    // Space returns: the very next writes succeed and the rejected ids
    // left no residue.
    sim.arm(FaultConfig::none());
    for id in 11..=20 {
        create(&db, id).unwrap_or_else(|e| panic!("write {id} failed after space returned: {e}"));
    }
    let g = db.latest_graph();
    for id in 1..=20 {
        assert!(g.node(NodeId::new(id)).is_some(), "acked node {id} missing");
    }
    for w in 0..4u64 {
        for op in 0..5u64 {
            let id = 1_000 + w * 100 + op;
            assert!(
                g.node(NodeId::new(id)).is_none(),
                "rejected node {id} leaked into the graph"
            );
        }
    }
    db.lineage_barrier(db.latest_ts());
    let report = db.check_consistency(CheckLevel::Full).unwrap();
    assert!(
        report.is_clean(),
        "audit dirty after ENOSPC storm: {report:?}"
    );

    // And the on-disk state reopens cleanly: the storm left no torn or
    // half-written log behind.
    drop(g);
    drop(db);
    let db = Aion::open(config(&sim)).unwrap();
    assert_eq!(db.latest_ts(), healthy_ts + 10);
    let report = db.check_consistency(CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "audit dirty after reopen: {report:?}");
}
