//! Paged readers racing group-commit writers through the full
//! client/server stack. Every page of one drain is served at the snapshot
//! pinned by the first page, so a drain must observe an exact commit
//! prefix — no duplicated keys, no skipped keys, no torn pages — and
//! `CursorInvalid` must only ever surface on a genuine revalidation
//! failure, which an immutable history cannot produce here.

use aion::{Aion, AionConfig};
use aion_server::{Client, ClientConfig, Server, ServerConfig};
use query::{execute_paged, fingerprint, Anchor, CursorToken, ExecBudget, Params, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tempfile::tempdir;

const SEED: u64 = 32;
const WRITER_BASE: u64 = 10_000;

fn row_id(row: &[Value]) -> u64 {
    match row {
        [Value::Int(id)] => u64::try_from(*id).expect("non-negative id"),
        other => panic!("expected one id column, got {other:?}"),
    }
}

#[test]
fn paged_reads_stay_snapshot_consistent_under_writes() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start_with(db.clone(), ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Seed through the server so the write path (group commit included)
    // is the one under test.
    let mut seeder = Client::connect(addr).unwrap();
    for i in 0..SEED {
        seeder
            .run(&format!("CREATE (n:Base {{_id: {i}}})"), Vec::new())
            .unwrap();
    }
    db.lineage_barrier(db.latest_ts());

    // Writers keep committing nodes with ids from WRITER_BASE upward, in
    // order, while the readers drain paged scans.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let id = WRITER_BASE + i;
                client
                    .run(&format!("CREATE (n:Churn {{_id: {id}}})"), Vec::new())
                    .unwrap();
                i += 1;
            }
            i
        })
    };

    let reader = move || {
        let mut client = Client::connect_with(
            addr,
            ClientConfig {
                request_timeout: Duration::from_secs(30),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let mut drains = 0u32;
        let deadline = std::time::Instant::now() + Duration::from_millis(800);
        while std::time::Instant::now() < deadline {
            let mut ids: Vec<u64> = Vec::new();
            let mut cursor: Option<Vec<u8>> = None;
            let mut started = false;
            while !started || cursor.is_some() {
                started = true;
                let page = client
                    .run_page("MATCH (n) RETURN id(n)", Vec::new(), 0, 5, cursor.take())
                    .expect("paging must never fail under concurrent writers");
                assert!(page.result.rows.len() <= 5, "page overflowed");
                ids.extend(page.result.rows.iter().map(|r| row_id(r)));
                cursor = page.cursor;
            }
            // Strictly increasing: no duplicates, no reordering.
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "ids not strictly increasing: {ids:?}"
            );
            // The drain saw a full commit prefix at its pinned snapshot:
            // all seeded ids, then a gap-free run of writer ids.
            let (base, churn): (Vec<u64>, Vec<u64>) = ids.iter().partition(|&&id| id < WRITER_BASE);
            assert_eq!(
                base,
                (0..SEED).collect::<Vec<u64>>(),
                "seeded ids skipped or duplicated"
            );
            for (k, &id) in churn.iter().enumerate() {
                assert_eq!(
                    id,
                    WRITER_BASE + k as u64,
                    "writer ids must form a contiguous commit prefix, got {churn:?}"
                );
            }
            drains += 1;
        }
        drains
    };

    let readers: Vec<_> = (0..2).map(|_| std::thread::spawn(reader)).collect();
    let mut total_drains = 0;
    for r in readers {
        total_drains += r.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let written = writer.join().unwrap();
    assert!(total_drains >= 2, "readers made no progress");
    assert!(written >= 1, "writer made no progress");

    // The racing drains above never saw CursorInvalid; a *genuine*
    // revalidation failure — an anchor that does not resolve at the
    // pinned snapshot — still must produce exactly that error.
    let params = Params::new();
    let text = "MATCH (n) RETURN id(n)";
    let forged = CursorToken {
        snapshot_ts: db.latest_ts(),
        fingerprint: fingerprint(text, &params),
        rows_emitted: 1,
        anchor: Anchor::Key(9_999_999),
    }
    .encode();
    let err = execute_paged(
        &db,
        text,
        &params,
        ExecBudget::unlimited(),
        5,
        Some(&forged),
    )
    .expect_err("anchor that never existed must not resume");
    assert!(
        matches!(err, lpg::GraphError::CursorInvalid(_)),
        "got {err:?}"
    );
}

/// A cursor pinned past the serving node's replay watermark is refused
/// with the same typed staleness error as a `min_watermark` demand —
/// resuming it there could silently serve rows from a half-replayed
/// log prefix.
#[test]
fn cursor_pinned_past_watermark_is_stale() {
    let dir = tempdir().unwrap();
    let db = Arc::new(Aion::open(AionConfig::new(dir.path())).unwrap());
    let server = Server::start_with(db.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect_with(
        server.addr(),
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.run("CREATE (n:Base {_id: 0})", Vec::new()).unwrap();
    db.lineage_barrier(db.latest_ts());

    let params = Params::new();
    let text = "MATCH (n) RETURN id(n)";
    let future = CursorToken {
        snapshot_ts: db.latest_ts() + 10_000,
        fingerprint: fingerprint(text, &params),
        rows_emitted: 1,
        anchor: Anchor::Key(0),
    }
    .encode();
    let err = client
        .run_page(text, Vec::new(), 0, 5, Some(future))
        .expect_err("cursor pinned past the watermark must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock, "got: {err}");
    assert!(
        err.to_string().contains("behind cursor snapshot"),
        "got: {err}"
    );
}
