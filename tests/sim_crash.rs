//! Crash-consistency simulation harness (DESIGN.md §10).
//!
//! Runs randomized bitemporal workloads against [`vfs::SimVfs`], crashing
//! at **every** injected fault point, reopening the database from the
//! surviving (possibly torn) image, and asserting the durability contract:
//!
//! 1. every commit acknowledged after a successful sync is fully readable
//!    at its timestamp after recovery;
//! 2. no partially applied commit is ever visible — each recovered commit
//!    equals the attempted batch exactly, and every recovered graph equals
//!    the in-memory oracle;
//! 3. `Aion::check_consistency` (the aion-fsck audit) is clean after every
//!    recovery, and the database accepts new commits.
//!
//! Knobs: `AION_SIM_ITERS` (number of seeds, default 8), `AION_SIM_SEED`
//! (re-run exactly one seed — printed by every failure message), and
//! `AION_SIM_POINTS` (cap on crash points per seed; points are sampled
//! evenly when the workload has more).

use aion::{Aion, AionConfig, CheckLevel, WriteTxn};
use lpg::{Graph, NodeId, Update};
use std::path::PathBuf;
use std::sync::Arc;
use timestore::SnapshotPolicy;
use vfs::{FaultConfig, SimVfs, VfsRef};
use workload::simops::{commit_script, SimOpsConfig};

const COMMITS: usize = 24;
const OPS_PER_COMMIT: usize = 4;
/// Group-durability mode syncs every this many commits.
const SYNC_EVERY: u64 = 5;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn db_root() -> PathBuf {
    PathBuf::from("/simdb")
}

/// One deterministic scenario: everything derives from `seed`.
#[derive(Clone, Copy, Debug)]
struct Scenario {
    /// Odd seeds run per-commit durability, even seeds group durability.
    sync_on_commit: bool,
    /// Torn-write chunk size for the crash lottery.
    torn_granularity: usize,
}

impl Scenario {
    fn new(seed: u64) -> Scenario {
        Scenario {
            sync_on_commit: seed % 2 == 1,
            torn_granularity: [1usize, 16, 64, 512][(seed % 4) as usize],
        }
    }

    fn crash_faults(&self, crash_at_op: u64) -> FaultConfig {
        FaultConfig {
            crash_at_op: Some(crash_at_op),
            io_error_rate: 0.0,
            torn_granularity: self.torn_granularity,
            survive_probability: 0.5,
        }
    }
}

fn db_config(sim: &SimVfs, sync_on_commit: bool) -> AionConfig {
    let mut cfg = AionConfig::new(db_root());
    cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
    // No cascade thread: the op stream must be a pure function of the
    // seed, and the synchronous lineage path is the deterministic one.
    cfg.sync_lineage = true;
    cfg.sync_on_commit = sync_on_commit;
    // Small snapshot cadence so workloads cross snapshot boundaries.
    cfg.timestore.policy = SnapshotPolicy::EveryNOps(10);
    cfg.timestore.cache_pages = 64;
    cfg.timestore.graphstore_bytes = 4 << 20;
    cfg.lineage.cache_pages = 64;
    cfg
}

fn apply_update(txn: &mut WriteTxn<'_>, u: &Update) -> lpg::Result<()> {
    match u.clone() {
        Update::AddNode { id, labels, props } => txn.add_node(id, labels, props),
        Update::DeleteNode { id } => txn.delete_node(id),
        Update::AddRel {
            id,
            src,
            tgt,
            label,
            props,
        } => txn.add_rel(id, src, tgt, label, props),
        Update::DeleteRel { id } => txn.delete_rel(id),
        Update::SetNodeProp { id, key, value } => txn.set_node_prop(id, key, value),
        Update::RemoveNodeProp { id, key } => txn.remove_node_prop(id, key),
        Update::AddLabel { id, label } => txn.add_label(id, label),
        Update::RemoveLabel { id, label } => txn.remove_label(id, label),
        Update::SetRelProp { id, key, value } => txn.set_rel_prop(id, key, value),
        Update::RemoveRelProp { id, key } => txn.remove_rel_prop(id, key),
    }
}

/// Builds the seed's commit script. Property keys match the interner ids
/// Aion assigns on every open, so the script is stable across reopens.
fn script_for(db: &Aion, seed: u64) -> Vec<Vec<Update>> {
    let keys = db.app_time_keys();
    commit_script(
        seed,
        &SimOpsConfig {
            commits: COMMITS,
            ops_per_commit: OPS_PER_COMMIT,
            app_start: keys.start,
            app_end: keys.end,
            key: db.intern("k"),
            label: db.intern("L"),
        },
    )
}

/// The in-memory oracle: `states[t]` is the graph after commit `t`
/// (`states[0]` is empty; commit `i` runs at system timestamp `i + 1`).
fn oracle_states(script: &[Vec<Update>]) -> Vec<Graph> {
    let mut states = Vec::with_capacity(script.len() + 1);
    let mut g = Graph::new();
    states.push(g.clone());
    for batch in script {
        for u in batch {
            g.apply(u)
                .expect("simops scripts are valid by construction");
        }
        states.push(g.clone());
    }
    states
}

struct RunOutcome {
    /// Highest commit timestamp acknowledged as durable (covered by a
    /// successful sync, or by a successful commit in sync-on-commit mode).
    durable_ts: u64,
    /// Highest commit timestamp whose commit call was *started* — recovery
    /// may legitimately surface up to this point, never past it.
    started_ts: u64,
}

/// Runs the workload until completion or the first I/O failure. The op
/// sequence is identical across runs of the same seed up to the crash
/// point, so `SimVfs::op_count` from a fault-free run enumerates every
/// possible crash point.
fn run_workload(sim: &SimVfs, script: &[Vec<Update>], sync_on_commit: bool) -> RunOutcome {
    let mut out = RunOutcome {
        durable_ts: 0,
        started_ts: 0,
    };
    let Ok(db) = Aion::open(db_config(sim, sync_on_commit)) else {
        return out;
    };
    let mut acked = 0u64;
    for (i, batch) in script.iter().enumerate() {
        let ts = (i + 1) as u64;
        out.started_ts = ts;
        let res = db.write_at(ts, |txn| {
            for u in batch {
                apply_update(txn, u)?;
            }
            Ok(())
        });
        match res {
            Ok(t) => {
                acked = t;
                if sync_on_commit {
                    out.durable_ts = t;
                }
            }
            Err(_) => break,
        }
        if !sync_on_commit && ts.is_multiple_of(SYNC_EVERY) && db.sync().is_ok() {
            out.durable_ts = acked;
        }
    }
    if db.sync().is_ok() {
        out.durable_ts = acked;
    }
    out
}

/// Recovery invariants after a crash at `ctx` (a human-readable repro
/// string starting with the seed).
fn check_recovery(
    sim: &SimVfs,
    script: &[Vec<Update>],
    states: &[Graph],
    run: &RunOutcome,
    ctx: &str,
) {
    sim.heal();
    let db = Aion::open(db_config(sim, false))
        .unwrap_or_else(|e| panic!("{ctx}: recovery reopen failed: {e}"));
    let recovered = db.latest_ts();
    // Durability: everything acknowledged after a sync survived.
    assert!(
        recovered >= run.durable_ts,
        "{ctx}: lost synced commits — recovered ts {recovered} < durable ts {}",
        run.durable_ts
    );
    // No time travel into the future: at most the in-flight commit.
    assert!(
        recovered <= run.started_ts,
        "{ctx}: recovered ts {recovered} past last started commit {}",
        run.started_ts
    );
    // Atomicity + exactness: the recovered history is a byte-exact prefix
    // of the attempted commit script...
    let diff = db
        .get_diff(1, recovered + 1)
        .unwrap_or_else(|e| panic!("{ctx}: get_diff after recovery failed: {e}"));
    let want: Vec<Update> = script[..recovered as usize]
        .iter()
        .flatten()
        .cloned()
        .collect();
    let got: Vec<Update> = diff.iter().map(|u| u.op.clone()).collect();
    assert!(
        got == want,
        "{ctx}: recovered log is not an exact prefix of the commit script (recovered ts {recovered})"
    );
    // ...and every probed snapshot equals the oracle graph.
    let mut probes = vec![recovered, run.durable_ts, recovered / 2];
    probes.dedup();
    for t in probes {
        if t == 0 {
            continue;
        }
        let g = db
            .get_graph_at(t)
            .unwrap_or_else(|e| panic!("{ctx}: get_graph_at({t}) after recovery failed: {e}"));
        assert!(
            g.same_as(&states[t as usize]),
            "{ctx}: graph at ts {t} diverges from the oracle after recovery"
        );
    }
    // The full fsck audit must be clean on the recovered instance.
    let report = db
        .check_consistency(CheckLevel::Full)
        .unwrap_or_else(|e| panic!("{ctx}: check_consistency failed: {e}"));
    assert!(
        report.is_clean(),
        "{ctx}: fsck found violations after recovery: {report:?}"
    );
    // And the database must accept new work.
    db.write(|txn| txn.add_node(NodeId::new(9_000_000), vec![], vec![]))
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
}

/// Measures the seed's fault-free op count, then crashes at every op.
fn run_seed(seed: u64, max_points: u64) {
    let scenario = Scenario::new(seed);
    // Fault-free measuring run: obtain the script, the oracle, and the
    // total number of mutating I/O ops (= the set of crash points).
    let sim = SimVfs::new(seed);
    let db = Aion::open(db_config(&sim, scenario.sync_on_commit)).expect("fault-free open");
    let script = script_for(&db, seed);
    drop(db);
    let states = oracle_states(&script);
    let sim = SimVfs::new(seed);
    let clean = run_workload(&sim, &script, scenario.sync_on_commit);
    assert_eq!(
        clean.durable_ts, COMMITS as u64,
        "seed {seed}: fault-free run must commit everything"
    );
    let total_ops = sim.op_count();
    assert!(total_ops > 0);
    // Verify the fault-free image too — recovery from "no crash at all".
    check_recovery(
        &sim,
        &script,
        &states,
        &clean,
        &format!("seed {seed} (no crash)"),
    );

    // Crash phase: every mutating op is a crash point (evenly sampled only
    // past the cap).
    let step = (total_ops / max_points.max(1)).max(1);
    let mut points = 0u64;
    let mut c = 0u64;
    while c < total_ops {
        let sim = SimVfs::with_faults(seed, scenario.crash_faults(c));
        let run = run_workload(&sim, &script, scenario.sync_on_commit);
        assert!(
            sim.has_crashed(),
            "seed {seed}: crash point {c} of {total_ops} never fired"
        );
        let ctx = format!(
            "seed {seed} crash_at_op {c}/{total_ops} torn_granularity {} sync_on_commit {}",
            scenario.torn_granularity, scenario.sync_on_commit
        );
        check_recovery(&sim, &script, &states, &run, &ctx);
        points += 1;
        c += step;
    }
    println!(
        "seed {seed}: {points} crash points over {total_ops} ops, \
         sync_on_commit={} torn={}B",
        scenario.sync_on_commit, scenario.torn_granularity
    );
}

#[test]
fn crash_consistency_simulation() {
    let max_points = env_u64("AION_SIM_POINTS", 10_000);
    if let Ok(seed) = std::env::var("AION_SIM_SEED") {
        let seed: u64 = seed.parse().expect("AION_SIM_SEED must be a u64");
        run_seed(seed, max_points);
        return;
    }
    let iters = env_u64("AION_SIM_ITERS", 8);
    for seed in 0..iters {
        run_seed(seed, max_points);
    }
}

/// Crashing the group-commit writer mid-flight: concurrent committers
/// flow through the shared log-writer thread (small latency budget so
/// groups really form), the SimVfs crashes at sampled points, and after
/// heal + reopen:
///
/// 1. every commit acknowledged under `sync_on_commit` survives exactly;
/// 2. every recovered commit — acked or in-flight — equals one attempted
///    batch in full (a group is never torn into partial commits);
/// 3. the Full fsck audit is clean and the database accepts new writes.
#[test]
fn group_commit_crash_recovery_with_concurrent_writers() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20;
    const BATCH: u64 = 3;

    fn group_config(sim: &SimVfs, sync_on_commit: bool) -> AionConfig {
        let mut cfg = AionConfig::new(db_root());
        cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
        cfg.sync_on_commit = sync_on_commit;
        cfg.commit_latency_budget = std::time::Duration::from_millis(1);
        cfg.timestore.policy = SnapshotPolicy::EveryNOps(16);
        cfg.timestore.cache_pages = 64;
        cfg.lineage.cache_pages = 64;
        cfg
    }

    /// Node ids encode (writer, commit, slot) so any recovered commit can
    /// be matched back to the exact batch that produced it.
    fn node_id(writer: u64, commit: u64, slot: u64) -> u64 {
        writer * 100_000 + commit * 10 + slot
    }

    /// Runs the concurrent workload until every writer finishes or hits
    /// its first error. Returns each acknowledged commit as
    /// `(ts, writer, commit)` — with `sync_on_commit` every one of these
    /// was covered by a group fsync before the ack.
    fn run_concurrent(sim: &SimVfs) -> Vec<(u64, u64, u64)> {
        let Ok(db) = Aion::open(group_config(sim, true)) else {
            return Vec::new();
        };
        let db = Arc::new(db);
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut acked = Vec::new();
                    for c in 0..PER_WRITER {
                        let res = db.write(|txn| {
                            for s in 0..BATCH {
                                txn.add_node(NodeId::new(node_id(w, c, s)), vec![], vec![])?;
                            }
                            Ok(())
                        });
                        match res {
                            Ok(ts) => acked.push((ts, w, c)),
                            Err(_) => break,
                        }
                    }
                    acked
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread"))
            .collect()
    }

    // Measuring run: a rough op count to spread crash points over. The
    // concurrent schedule is nondeterministic, so points are coarse
    // fractions rather than exhaustive op replay — the invariants they
    // check hold at *any* crash point.
    let sim = SimVfs::new(42);
    let acked = run_concurrent(&sim);
    assert_eq!(
        acked.len() as u64,
        WRITERS * PER_WRITER,
        "fault-free run commits everything"
    );
    let total_ops = sim.op_count().max(1);

    for frac in 1..=8u64 {
        let crash_at = total_ops * frac / 9;
        let sim = SimVfs::with_faults(
            1000 + frac,
            FaultConfig {
                crash_at_op: Some(crash_at),
                io_error_rate: 0.0,
                torn_granularity: 64,
                survive_probability: 0.5,
            },
        );
        let acked = run_concurrent(&sim);
        let ctx = format!("crash_at_op {crash_at}/{total_ops}");
        sim.heal();
        let db = Aion::open(group_config(&sim, false))
            .unwrap_or_else(|e| panic!("{ctx}: recovery reopen failed: {e}"));
        let recovered = db.latest_ts();

        // Group the recovered log by commit timestamp.
        let diff = db
            .get_diff(1, recovered + 1)
            .unwrap_or_else(|e| panic!("{ctx}: get_diff failed: {e}"));
        let mut by_ts: std::collections::BTreeMap<u64, Vec<Update>> = Default::default();
        for u in diff {
            by_ts.entry(u.ts).or_default().push(u.op);
        }

        // 1. No acknowledged commit is lost, and each is recovered as the
        //    batch its writer attempted.
        for &(ts, w, c) in &acked {
            assert!(
                ts <= recovered,
                "{ctx}: acked commit ts {ts} (writer {w} commit {c}) lost — recovered only to {recovered}"
            );
            let want: Vec<Update> = (0..BATCH)
                .map(|s| Update::AddNode {
                    id: NodeId::new(node_id(w, c, s)),
                    labels: vec![],
                    props: vec![],
                })
                .collect();
            assert_eq!(
                by_ts.get(&ts),
                Some(&want),
                "{ctx}: acked commit ts {ts} recovered with the wrong batch"
            );
        }

        // 2. Every recovered commit — including in-flight ones that never
        //    got an ack — is exactly one attempted batch, never a torn
        //    slice of a group.
        for (ts, ops) in &by_ts {
            assert_eq!(
                ops.len() as u64,
                BATCH,
                "{ctx}: commit {ts} is a partial batch: {ops:?}"
            );
            let Update::AddNode { id, .. } = &ops[0] else {
                panic!("{ctx}: commit {ts} holds unexpected op {:?}", ops[0]);
            };
            let (w, c) = (id.raw() / 100_000, id.raw() % 100_000 / 10);
            for (s, op) in ops.iter().enumerate() {
                let Update::AddNode { id, .. } = op else {
                    panic!("{ctx}: commit {ts} holds unexpected op {op:?}");
                };
                assert_eq!(
                    id.raw(),
                    node_id(w, c, s as u64),
                    "{ctx}: commit {ts} mixes updates from different batches"
                );
            }
        }

        // 3. Clean audit, and the recovered instance accepts new work.
        let report = db
            .check_consistency(CheckLevel::Full)
            .unwrap_or_else(|e| panic!("{ctx}: check_consistency failed: {e}"));
        assert!(report.is_clean(), "{ctx}: fsck violations: {report:?}");
        db.write(|txn| txn.add_node(NodeId::new(9_000_000), vec![], vec![]))
            .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
    }
}

/// Transient `EIO`/`ENOSPC` injection: failed commits surface as errors,
/// every acknowledged commit stays readable, each logged commit is the
/// attempted batch exactly, and the audit stays clean once errors stop.
#[test]
fn transient_io_errors_surface_and_preserve_consistency() {
    for seed in 100..104u64 {
        let sim = SimVfs::new(seed);
        let db = Aion::open(db_config(&sim, false)).expect("open before injection");
        let script = script_for(&db, seed);
        // Arm error injection only after open so the setup is clean.
        sim.arm(FaultConfig {
            io_error_rate: 0.05,
            ..FaultConfig::none()
        });
        let mut acked = Vec::new();
        for (i, batch) in script.iter().enumerate() {
            let ts = (i + 1) as u64;
            let res = db.write_at(ts, |txn| {
                for u in batch {
                    apply_update(txn, u)?;
                }
                Ok(())
            });
            if res.is_ok() {
                acked.push(ts);
            }
        }
        sim.arm(FaultConfig::none());
        db.sync().expect("sync after disarming faults");
        drop(db);

        let db = Aion::open(db_config(&sim, false)).expect("reopen after transient errors");
        let recovered = db.latest_ts();
        let diff = db.get_diff(1, recovered + 1).expect("diff");
        // Group the recovered log by commit timestamp.
        let mut by_ts: std::collections::BTreeMap<u64, Vec<Update>> = Default::default();
        for u in diff {
            by_ts.entry(u.ts).or_default().push(u.op);
        }
        for ts in &acked {
            assert!(
                by_ts.contains_key(ts),
                "seed {seed}: acknowledged commit {ts} missing after reopen"
            );
        }
        let mut oracle = Graph::new();
        for (ts, ops) in &by_ts {
            assert_eq!(
                ops,
                &script[(ts - 1) as usize],
                "seed {seed}: commit {ts} was applied partially"
            );
            for u in ops {
                oracle.apply(u).expect("logged commits replay cleanly");
            }
        }
        assert!(
            db.latest_graph().same_as(&oracle),
            "seed {seed}: latest graph diverges from replay of the logged commits"
        );
        let report = db.check_consistency(CheckLevel::Full).expect("fsck");
        assert!(report.is_clean(), "seed {seed}: {report:?}");
    }
}
