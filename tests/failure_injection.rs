//! Failure injection: crashes between the synchronous TimeStore append and
//! the asynchronous LineageStore cascade, torn log tails, lost index
//! files and corrupt snapshot files — in every case the change log is the
//! source of truth and recovery must restore a fully consistent system.

use aion::{Aion, AionConfig};
use lpg::{Direction, NodeId, PropertyValue, RelId, StrId};
use std::fs::OpenOptions;
use tempfile::tempdir;

fn seed(db: &Aion, n: u64) -> u64 {
    let label = db.intern("N");
    for i in 0..n {
        db.write(|txn| {
            txn.add_node(
                NodeId::new(i),
                vec![label],
                vec![(db.intern("v"), PropertyValue::Int(i as i64))],
            )
        })
        .unwrap();
    }
    for i in 0..n {
        db.write(|txn| {
            txn.add_rel(RelId::new(i), NodeId::new(i), NodeId::new((i + 1) % n), None, vec![])
        })
        .unwrap();
    }
    db.latest_ts()
}

#[test]
fn lineage_store_lost_entirely() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 20);
        db.lineage_barrier(last);
        db.sync().unwrap();
    }
    std::fs::remove_file(dir.path().join("lineage.db")).unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // Catch-up replay rebuilt the whole fine-grained history.
    assert_eq!(db.lineagestore().applied_ts(), last);
    let hist = db.get_node(NodeId::new(7), 0, last + 1).unwrap();
    assert_eq!(hist.len(), 1);
    let hits = db
        .lineagestore()
        .expand(NodeId::new(0), Direction::Outgoing, 3, last)
        .unwrap();
    assert_eq!(hits.len(), 3);
}

#[test]
fn lineage_store_lags_behind() {
    // Simulate a crash mid-cascade: open with sync_lineage, write some,
    // then re-open after manually rolling the watermark back by deleting
    // the lineage store and replacing it with a stale copy.
    let dir = tempdir().unwrap();
    let mid;
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        mid = seed(&db, 10);
        db.lineage_barrier(mid);
        db.sync().unwrap();
        // Keep a stale copy of the lineage store.
        std::fs::copy(
            dir.path().join("lineage.db"),
            dir.path().join("lineage.stale"),
        )
        .unwrap();
        // More commits the stale copy will not contain.
        last = {
            let l = db.intern("Late");
            db.write(|txn| txn.add_node(NodeId::new(500), vec![l], vec![])).unwrap()
        };
        db.lineage_barrier(last);
        db.sync().unwrap();
    }
    std::fs::rename(
        dir.path().join("lineage.stale"),
        dir.path().join("lineage.db"),
    )
    .unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // Recovery replayed the missing tail into the LineageStore.
    assert_eq!(db.lineagestore().applied_ts(), last);
    assert!(db
        .lineagestore()
        .node_at(NodeId::new(500), last)
        .unwrap()
        .is_some());
}

#[test]
fn torn_log_tail_truncated_and_system_still_opens() {
    let dir = tempdir().unwrap();
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        seed(&db, 10);
        db.sync().unwrap();
    }
    // Append garbage to the log (a torn frame from a crash mid-write).
    let log_path = dir.path().join("timestore").join("timestore.log");
    {
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&log_path).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    }
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // All committed data survives; the torn tail is gone; writes continue.
    assert_eq!(db.latest_graph().node_count(), 10);
    let ts = db
        .write(|txn| txn.add_node(NodeId::new(99), vec![], vec![]))
        .unwrap();
    assert!(db.get_graph_at(ts).unwrap().has_node(NodeId::new(99)));
}

#[test]
fn corrupt_snapshot_file_falls_back_to_log_replay() {
    let dir = tempdir().unwrap();
    let last;
    {
        let mut cfg = AionConfig::new(dir.path());
        cfg.timestore.policy = timestore::SnapshotPolicy::EveryNOps(10);
        let db = Aion::open(cfg).unwrap();
        last = seed(&db, 20);
        db.sync().unwrap();
    }
    // Corrupt every snapshot file.
    let snap_dir = dir.path().join("timestore").join("snapshots");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&snap_dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"garbage").unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "the policy must have produced snapshots");
    let mut cfg = AionConfig::new(dir.path());
    cfg.timestore.policy = timestore::SnapshotPolicy::Never;
    // Tiny GraphStore so reconstruction cannot dodge the corrupt files via
    // the in-memory cache.
    cfg.timestore.graphstore_bytes = 1;
    let db = Aion::open(cfg).unwrap();
    // Historical reads still work (log replay from scratch).
    let g = db.get_graph_at(last / 2).unwrap();
    assert!(g.node_count() > 0);
    let full = db.get_graph_at(last).unwrap();
    assert_eq!(full.node_count(), 20);
    assert_eq!(full.rel_count(), 20);
}

#[test]
fn index_file_lost_rebuilt_from_log() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 15);
        db.sync().unwrap();
    }
    std::fs::remove_file(dir.path().join("timestore").join("timestore.idx")).unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    assert_eq!(db.latest_ts(), last);
    let diff = db.get_diff(1, last + 1).unwrap();
    assert_eq!(diff.len(), 30);
    // Interleaved reads across the rebuilt index.
    for probe in [1, last / 3, last / 2, last] {
        let g = db.get_graph_at(probe).unwrap();
        g.check_consistency().unwrap();
    }
}

#[test]
fn uncommitted_transaction_leaves_no_trace_after_restart() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 5);
        // A failing transaction (duplicate node).
        let err = db.write(|txn| txn.add_node(NodeId::new(0), vec![], vec![]));
        assert!(err.is_err());
        db.sync().unwrap();
    }
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    assert_eq!(db.latest_ts(), last);
    assert_eq!(db.latest_graph().node_count(), 5);
    let tg = db.get_temporal_graph(1, last + 1).unwrap();
    // Every version present exactly once: no phantom writes.
    assert_eq!(tg.nodes.len(), 5);
    let _ = StrId::new(0);
}
