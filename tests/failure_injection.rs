//! Failure injection: crashes between the synchronous TimeStore append and
//! the asynchronous LineageStore cascade, torn log tails, lost index
//! files and corrupt snapshot files — in every case the change log is the
//! source of truth and recovery must restore a fully consistent system.

use aion::{Aion, AionConfig};
use lpg::{Direction, NodeId, PropertyValue, RelId, StrId};
use std::fs::OpenOptions;
use tempfile::tempdir;

fn seed(db: &Aion, n: u64) -> u64 {
    let label = db.intern("N");
    for i in 0..n {
        db.write(|txn| {
            txn.add_node(
                NodeId::new(i),
                vec![label],
                vec![(db.intern("v"), PropertyValue::Int(i as i64))],
            )
        })
        .unwrap();
    }
    for i in 0..n {
        db.write(|txn| {
            txn.add_rel(
                RelId::new(i),
                NodeId::new(i),
                NodeId::new((i + 1) % n),
                None,
                vec![],
            )
        })
        .unwrap();
    }
    db.latest_ts()
}

#[test]
fn lineage_store_lost_entirely() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 20);
        db.lineage_barrier(last);
        db.sync().unwrap();
    }
    std::fs::remove_file(dir.path().join("lineage.db")).unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // Catch-up replay rebuilt the whole fine-grained history.
    assert_eq!(db.lineagestore().applied_ts(), last);
    let hist = db.get_node(NodeId::new(7), 0, last + 1).unwrap();
    assert_eq!(hist.len(), 1);
    let hits = db
        .lineagestore()
        .expand(NodeId::new(0), Direction::Outgoing, 3, last)
        .unwrap();
    assert_eq!(hits.len(), 3);
}

#[test]
fn lineage_store_lags_behind() {
    // Simulate a crash mid-cascade: open with sync_lineage, write some,
    // then re-open after manually rolling the watermark back by deleting
    // the lineage store and replacing it with a stale copy.
    let dir = tempdir().unwrap();
    let mid;
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        mid = seed(&db, 10);
        db.lineage_barrier(mid);
        db.sync().unwrap();
        // Keep a stale copy of the lineage store.
        std::fs::copy(
            dir.path().join("lineage.db"),
            dir.path().join("lineage.stale"),
        )
        .unwrap();
        // More commits the stale copy will not contain.
        last = {
            let l = db.intern("Late");
            db.write(|txn| txn.add_node(NodeId::new(500), vec![l], vec![]))
                .unwrap()
        };
        db.lineage_barrier(last);
        db.sync().unwrap();
    }
    std::fs::rename(
        dir.path().join("lineage.stale"),
        dir.path().join("lineage.db"),
    )
    .unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // Recovery replayed the missing tail into the LineageStore.
    assert_eq!(db.lineagestore().applied_ts(), last);
    assert!(db
        .lineagestore()
        .node_at(NodeId::new(500), last)
        .unwrap()
        .is_some());
}

#[test]
fn torn_log_tail_truncated_and_system_still_opens() {
    let dir = tempdir().unwrap();
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        seed(&db, 10);
        db.sync().unwrap();
    }
    // Append garbage to the log (a torn frame from a crash mid-write).
    let log_path = dir.path().join("timestore").join("timestore.log");
    {
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&log_path).unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    }
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    // All committed data survives; the torn tail is gone; writes continue.
    assert_eq!(db.latest_graph().node_count(), 10);
    let ts = db
        .write(|txn| txn.add_node(NodeId::new(99), vec![], vec![]))
        .unwrap();
    assert!(db.get_graph_at(ts).unwrap().has_node(NodeId::new(99)));
}

#[test]
fn mid_log_corruption_detected_not_truncated() {
    // A bad frame *below* the synced log end is damage, not a torn tail:
    // truncating there would silently drop every acknowledged commit
    // behind it, so open must refuse instead.
    let dir = tempdir().unwrap();
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        seed(&db, 10);
        db.sync().unwrap();
    }
    let log_path = dir.path().join("timestore").join("timestore.log");
    let mut bytes = std::fs::read(&log_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&log_path, &bytes).unwrap();
    let err = Aion::open(AionConfig::new(dir.path()))
        .err()
        .expect("open must fail on mid-log corruption");
    let msg = err.to_string();
    assert!(
        msg.contains("corrupt log frame") && msg.contains("durable end"),
        "unexpected error: {msg}"
    );
    // The log file was left as found for forensics — not truncated.
    assert_eq!(std::fs::read(&log_path).unwrap().len(), bytes.len());
}

#[test]
fn corrupt_snapshot_file_falls_back_to_log_replay() {
    let dir = tempdir().unwrap();
    let last;
    {
        let mut cfg = AionConfig::new(dir.path());
        cfg.timestore.policy = timestore::SnapshotPolicy::EveryNOps(10);
        let db = Aion::open(cfg).unwrap();
        last = seed(&db, 20);
        db.sync().unwrap();
    }
    // Corrupt every snapshot file.
    let snap_dir = dir.path().join("timestore").join("snapshots");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&snap_dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"garbage").unwrap();
        corrupted += 1;
    }
    assert!(corrupted > 0, "the policy must have produced snapshots");
    let mut cfg = AionConfig::new(dir.path());
    cfg.timestore.policy = timestore::SnapshotPolicy::Never;
    // Tiny GraphStore so reconstruction cannot dodge the corrupt files via
    // the in-memory cache.
    cfg.timestore.graphstore_bytes = 1;
    let db = Aion::open(cfg).unwrap();
    // Historical reads still work (log replay from scratch).
    let g = db.get_graph_at(last / 2).unwrap();
    assert!(g.node_count() > 0);
    let full = db.get_graph_at(last).unwrap();
    assert_eq!(full.node_count(), 20);
    assert_eq!(full.rel_count(), 20);
}

#[test]
fn index_file_lost_rebuilt_from_log() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 15);
        db.sync().unwrap();
    }
    std::fs::remove_file(dir.path().join("timestore").join("timestore.idx")).unwrap();
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    assert_eq!(db.latest_ts(), last);
    let diff = db.get_diff(1, last + 1).unwrap();
    assert_eq!(diff.len(), 30);
    // Interleaved reads across the rebuilt index.
    for probe in [1, last / 3, last / 2, last] {
        let g = db.get_graph_at(probe).unwrap();
        g.check_consistency().unwrap();
    }
}

// --------------------------------------------------------------------------
// Corruption injection: flip bytes in the on-disk structures and assert the
// `aion-fsck` machinery (the `check` crate the binary is built on) reports
// each corruption class as a typed finding instead of panicking.
//
// Classes covered: B+Tree key ordering, overflow-chain integrity, lineage
// interval overlap, and cross-store divergence.

mod corruption {
    use check::{check_lineagestore, check_stores, CheckLevel, Subsystem};
    use lineagestore::{LineageStore, LineageStoreConfig};
    use lpg::{NodeId, PropertyValue, RelId, StrId, Update};
    use pagestore::PAGE_SIZE;
    use tempfile::tempdir;
    use timestore::{TimeStore, TimeStoreConfig};

    // Raw slotted-page layout (crates/btree/src/layout.rs): all integers LE.
    const LEAF: u8 = 1;
    const NCELLS_OFF: usize = 2;
    const SLOTS_OFF: usize = 16;
    const FLAG_OVERFLOW: u8 = 1;

    fn read_u16(b: &[u8], off: usize) -> usize {
        u16::from_le_bytes([b[off], b[off + 1]]) as usize
    }

    fn read_u64(b: &[u8], off: usize) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&b[off..off + 8]);
        u64::from_le_bytes(a)
    }

    /// Page indexes (excluding the meta page 0) whose first byte tags a leaf.
    fn leaf_pages(file: &[u8]) -> Vec<usize> {
        (1..file.len() / PAGE_SIZE)
            .filter(|p| file[p * PAGE_SIZE] == LEAF)
            .collect()
    }

    /// Seeds a standalone LineageStore with chains long enough to span the
    /// materialization threshold, plus relationships and a tombstone.
    fn seed_lineage(ls: &LineageStore, big_value_node: Option<u64>) {
        let mut t = 0u64;
        for i in 0..20u64 {
            t += 1;
            let props = if big_value_node == Some(i) {
                // Large enough to exceed MAX_INLINE_VALUE (1 KiB) so the
                // materialized record lands in an overflow chain.
                vec![(
                    StrId::new(1),
                    PropertyValue::IntArray((0..1500).map(|x| i64::MAX - x).collect()),
                )]
            } else {
                vec![]
            };
            ls.apply_commit(
                t,
                &[Update::AddNode {
                    id: NodeId::new(i),
                    labels: vec![StrId::new(0)],
                    props,
                }],
            )
            .unwrap();
            if i > 0 {
                t += 1;
                ls.apply_commit(
                    t,
                    &[Update::AddRel {
                        id: RelId::new(i),
                        src: NodeId::new(i - 1),
                        tgt: NodeId::new(i),
                        label: None,
                        props: vec![],
                    }],
                )
                .unwrap();
            }
        }
        // Property churn: several versions per node so entity chains have
        // adjacent same-entity cells within one leaf.
        for round in 0..6u64 {
            for node in 0..6u64 {
                t += 1;
                ls.apply_commit(
                    t,
                    &[Update::SetNodeProp {
                        id: NodeId::new(node),
                        key: StrId::new(2),
                        value: PropertyValue::Int((round * 10 + node) as i64),
                    }],
                )
                .unwrap();
            }
        }
        t += 1;
        ls.apply_commit(t, &[Update::DeleteRel { id: RelId::new(3) }])
            .unwrap();
        ls.sync().unwrap();
    }

    fn build_lineage_db(dir: &std::path::Path, big_value_node: Option<u64>) -> std::path::PathBuf {
        let path = dir.join("lineage.db");
        let ls = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
        seed_lineage(&ls, big_value_node);
        path
    }

    #[test]
    fn fsck_detects_btree_key_order_corruption() {
        let dir = tempdir().unwrap();
        let path = build_lineage_db(dir.path(), None);
        let mut file = std::fs::read(&path).unwrap();
        // Swap the first two slot-directory entries of a leaf: its keys are
        // now out of order on disk.
        let page = leaf_pages(&file)
            .into_iter()
            .find(|&p| read_u16(&file, p * PAGE_SIZE + NCELLS_OFF) >= 2)
            .expect("a leaf with two cells must exist");
        let s = page * PAGE_SIZE + SLOTS_OFF;
        file.swap(s, s + 2);
        file.swap(s + 1, s + 3);
        std::fs::write(&path, &file).unwrap();

        let ls = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
        let findings = check_lineagestore(&ls, CheckLevel::Quick).unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.check.ends_with("/structure") && f.detail.contains("[key-order]")),
            "key-order corruption not reported: {findings:?}"
        );
    }

    #[test]
    fn fsck_detects_overflow_chain_corruption() {
        let dir = tempdir().unwrap();
        let path = build_lineage_db(dir.path(), Some(2));
        let mut file = std::fs::read(&path).unwrap();
        // Find a leaf cell flagged as overflow and point its chain head's
        // `next` pointer far outside the file.
        let mut corrupted = false;
        'outer: for page in leaf_pages(&file) {
            let base = page * PAGE_SIZE;
            for i in 0..read_u16(&file, base + NCELLS_OFF) {
                let off = base + read_u16(&file, base + SLOTS_OFF + i * 2);
                if file[off] & FLAG_OVERFLOW != 0 {
                    let klen = read_u16(&file, off + 1);
                    let head = read_u64(&file, off + 7 + klen) as usize;
                    let next_off = head * PAGE_SIZE;
                    file[next_off..next_off + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
                    corrupted = true;
                    break 'outer;
                }
            }
        }
        assert!(
            corrupted,
            "the big property must have produced an overflow chain"
        );
        std::fs::write(&path, &file).unwrap();

        let ls = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
        let findings = check_lineagestore(&ls, CheckLevel::Quick).unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.check.ends_with("/structure") && f.detail.contains("[overflow-chain]")),
            "overflow corruption not reported: {findings:?}"
        );
    }

    #[test]
    fn fsck_detects_lineage_interval_overlap() {
        let dir = tempdir().unwrap();
        let path = build_lineage_db(dir.path(), None);
        let mut file = std::fs::read(&path).unwrap();
        // Find two adjacent history cells for the same entity (16-byte
        // entity_ts keys share their first 8 bytes) and rewrite the second
        // version's timestamp to its predecessor's: the derived validity
        // intervals now overlap.
        let mut injected = false;
        'outer: for page in leaf_pages(&file) {
            let base = page * PAGE_SIZE;
            let ncells = read_u16(&file, base + NCELLS_OFF);
            for i in 0..ncells.saturating_sub(1) {
                let a = base + read_u16(&file, base + SLOTS_OFF + i * 2);
                let b = base + read_u16(&file, base + SLOTS_OFF + (i + 1) * 2);
                if read_u16(&file, a + 1) == 16
                    && read_u16(&file, b + 1) == 16
                    && file[a + 7..a + 15] == file[b + 7..b + 15]
                {
                    let ts = file[a + 15..a + 23].to_vec();
                    file[b + 15..b + 23].copy_from_slice(&ts);
                    injected = true;
                    break 'outer;
                }
            }
        }
        assert!(
            injected,
            "property churn must produce adjacent same-entity versions"
        );
        std::fs::write(&path, &file).unwrap();

        let ls = LineageStore::open(&path, LineageStoreConfig::default()).unwrap();
        let findings = check_lineagestore(&ls, CheckLevel::Deep).unwrap();
        assert!(
            findings.iter().any(|f| f.check == "chain/interval"),
            "interval overlap not reported: {findings:?}"
        );
    }

    #[test]
    fn fsck_detects_cross_store_divergence() {
        let dir = tempdir().unwrap();
        let ts = TimeStore::open(dir.path().join("timestore"), TimeStoreConfig::default()).unwrap();
        let ls = LineageStore::open(dir.path().join("lineage.db"), LineageStoreConfig::default())
            .unwrap();
        let mut t = 0u64;
        for i in 0..25u64 {
            t += 1;
            let ops = vec![Update::AddNode {
                id: NodeId::new(i),
                labels: vec![StrId::new(0)],
                props: vec![],
            }];
            ts.append_commit(t, &ops).unwrap();
            ls.apply_commit(t, &ops).unwrap();
        }
        // A phantom write only the LineageStore sees, below its watermark:
        // the stores now answer historical queries differently.
        ls.apply_update(
            t,
            &Update::AddNode {
                id: NodeId::new(7_777),
                labels: vec![],
                props: vec![],
            },
        )
        .unwrap();
        ts.sync().unwrap();
        ls.sync().unwrap();
        drop((ts, ls));

        let ts = TimeStore::open(dir.path().join("timestore"), TimeStoreConfig::default()).unwrap();
        let ls = LineageStore::open(dir.path().join("lineage.db"), LineageStoreConfig::default())
            .unwrap();
        let report = check_stores(&ts, &ls, CheckLevel::Full).unwrap();
        assert!(
            report
                .by_subsystem(Subsystem::CrossStore)
                .any(|f| f.check == "differential"),
            "divergence not reported:\n{report}"
        );
    }
}

#[test]
fn uncommitted_transaction_leaves_no_trace_after_restart() {
    let dir = tempdir().unwrap();
    let last;
    {
        let db = Aion::open(AionConfig::new(dir.path())).unwrap();
        last = seed(&db, 5);
        // A failing transaction (duplicate node).
        let err = db.write(|txn| txn.add_node(NodeId::new(0), vec![], vec![]));
        assert!(err.is_err());
        db.sync().unwrap();
    }
    let db = Aion::open(AionConfig::new(dir.path())).unwrap();
    assert_eq!(db.latest_ts(), last);
    assert_eq!(db.latest_graph().node_count(), 5);
    let tg = db.get_temporal_graph(1, last + 1).unwrap();
    // Every version present exactly once: no phantom writes.
    assert_eq!(tg.nodes.len(), 5);
    let _ = StrId::new(0);
}
