//! Offline stand-in for `rand` 0.8: `SmallRng` (a splitmix64 stream),
//! `SeedableRng::seed_from_u64`, and the `Rng::{gen, gen_range}` surface
//! the workload/bench crates use. Not cryptographic; deterministic per
//! seed, which is exactly what the reproducible workload generators need.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = (rng.next_u64() as u128) % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic RNG: a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: u64 = a.gen_range(0..50);
            assert_eq!(x, b.gen_range(0..50));
            assert!(x < 50);
        }
        let mut c = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let f: f64 = c.gen();
            assert!((0.0..1.0).contains(&f));
            let g = c.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&g));
            let h = c.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&h));
        }
    }
}
