//! Offline stand-in for `criterion` 0.5: runs each benchmark closure a
//! small fixed number of iterations and prints mean wall-clock time per
//! iteration. No statistics, plotting, or baseline comparison — just
//! enough to keep `cargo bench` functional without the real crate.

use std::hint::black_box;
use std::time::Instant;

pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter*` call.
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.last_ns = total_ns as f64 / self.iters as f64;
    }
}

pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` cheap: a handful of iterations per benchmark.
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Criterion { iters }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(self.iters, None, name.as_ref(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let iters = self.iters;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            iters,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(self.iters, Some(&self.name), name.as_ref(), f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(iters: u64, group: Option<&str>, name: &str, mut f: F) {
    let mut b = Bencher {
        iters,
        last_ns: 0.0,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("bench {label:<48} {:>14.1} ns/iter", b.last_ns);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
