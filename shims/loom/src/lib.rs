//! Offline shim for the `loom` model checker (see shims/README.md).
//!
//! The real loom exhaustively explores thread interleavings of a bounded
//! concurrent program. This environment cannot download crates, so this
//! shim implements the same *API* as a **bounded seeded stress model**:
//! [`model`] runs the closure many times over real OS threads, and
//! [`thread::yield_now`] (also injected at spawn boundaries) perturbs
//! the schedule differently on every iteration using a deterministic
//! per-iteration seed. This explores many — not all — interleavings;
//! tests written against it remain valid loom models and get exhaustive
//! checking the day the real crate is swapped back in (a one-line diff
//! in the root manifest).
//!
//! `LOOM_MAX_ITER` overrides the iteration count (default 64).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seed for the current [`model`] iteration; `0` = perturbation off
/// (outside a model run).
static ITER_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread schedule-perturbation RNG state.
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` repeatedly (default 64 iterations, `LOOM_MAX_ITER`
/// overrides), perturbing the thread schedule differently each time.
/// Panics from `f` propagate, failing the test on the iteration that
/// exposed the bug.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for i in 0..iters.max(1) {
        // Odd seeds only so the xorshift state is never zero.
        ITER_SEED.store(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1, Ordering::SeqCst);
        seed_thread();
        f();
    }
    ITER_SEED.store(0, Ordering::SeqCst);
}

/// (Re)seeds the calling thread's perturbation RNG from the iteration
/// seed and the thread identity.
fn seed_thread() {
    let base = ITER_SEED.load(Ordering::SeqCst);
    if base == 0 {
        RNG.with(|r| r.set(0));
        return;
    }
    let tid = {
        use std::hash::BuildHasher;
        std::hash::RandomState::new().hash_one(std::thread::current().id())
    };
    RNG.with(|r| r.set((base ^ tid) | 1));
}

/// One xorshift64 step; returns the new state (never 0 once seeded).
fn next_rand() -> u64 {
    RNG.with(|r| {
        let mut x = r.get();
        if x == 0 {
            return 0;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        r.set(x);
        x
    })
}

/// Thread primitives with schedule perturbation.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawns a real thread; the child is seeded for perturbation and
    /// starts with a randomized yield so spawn order alone does not fix
    /// the schedule.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            super::seed_thread();
            yield_now();
            f()
        })
    }

    /// Perturbation point: depending on the iteration seed, does
    /// nothing, yields, or parks briefly — shuffling which thread wins
    /// the next race.
    pub fn yield_now() {
        match super::next_rand() % 4 {
            0 => {}
            1 | 2 => std::thread::yield_now(),
            _ => std::thread::sleep(std::time::Duration::from_nanos(200)),
        }
    }
}

/// Synchronization primitives (std re-exports; perturbation happens at
/// the [`thread::yield_now`] points the model under test places).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_perturbs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RUNS: AtomicU64 = AtomicU64::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
            let h = super::thread::spawn(|| {
                super::thread::yield_now();
                7
            });
            assert_eq!(h.join().ok(), Some(7));
        });
        assert!(RUNS.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn iteration_count_from_env_shape() {
        // Not asserting on the env var itself (tests run in parallel);
        // just exercise the default path.
        static RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        super::model(|| {
            RUNS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert!(RUNS.load(std::sync::atomic::Ordering::SeqCst) >= 1);
    }
}
