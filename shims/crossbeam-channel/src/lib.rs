//! Offline stand-in for `crossbeam-channel` 0.5: the unbounded-channel
//! subset used by the cascade worker, delegated to `std::sync::mpsc`.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}
