//! The [`Strategy`] trait and the combinators the workspace uses:
//! ranges, tuples, `Just`, `prop_map`, boxing and `Union` (`prop_oneof!`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "strategy range is empty");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = (rng.next_u64() as u128) % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}
