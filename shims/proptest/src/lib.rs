//! Offline stand-in for `proptest` 1.x.
//!
//! Implements the subset this workspace uses: the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros, the [`strategy::Strategy`]
//! trait with `prop_map` and `boxed`, `any::<T>()`, `Just`, range and
//! tuple strategies, `collection::{vec, btree_map}` and `option::of`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (FNV-1a of the test path) so failures are
//! reproducible; there is no shrinking — a failing case aborts with the
//! plain `assert!` panic; integer generation is biased toward boundary
//! values (0, ±1, type extremes, varint length thresholds) because those
//! are where the encoders break.

pub mod strategy;

pub mod test_runner {
    /// Case-count configuration; `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Apply the `PROPTEST_CASES` env override, like the real crate.
    pub fn resolve_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
    }

    /// Deterministic splitmix64 stream seeded from the test path.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(path: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Values generatable over their whole domain via `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.f64_unit() * 2e12 - 1e12
        }
    }

    /// Boundary values that stress varint length transitions and
    /// sign/width edges, mixed in at ~1-in-4 probability.
    const EDGES: [u64; 16] = [
        0,
        1,
        2,
        0x7F,
        0x80,
        0x3FFF,
        0x4000,
        0x001F_FFFF,
        0x0020_0000,
        0x0FFF_FFFF,
        0x1000_0000,
        u32::MAX as u64,
        u64::MAX >> 1,
        (u64::MAX >> 1) + 1,
        u64::MAX - 1,
        u64::MAX,
    ];

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    let roll = rng.next_u64();
                    let raw = if roll & 3 == 0 {
                        EDGES[(roll >> 2) as usize % EDGES.len()]
                    } else {
                        rng.next_u64()
                    };
                    raw as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Property-test harness: each `fn name(arg in strategy, ..)` becomes a
/// `#[test]` that generates `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __cases = $crate::test_runner::resolve_cases(__config.cases);
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
