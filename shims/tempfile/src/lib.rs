//! Offline stand-in for `tempfile` 3: `tempdir()` creating a uniquely
//! named directory under the system temp dir, removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume the guard without deleting the directory.
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("aion-{pid}-{nanos}-{n}"));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::AlreadyExists,
        "could not create a unique temp dir",
    ))
}
