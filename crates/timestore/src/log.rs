//! The change log: an append-only file of checksummed commit frames.
//!
//! Frame layout: `u32 payload_len, u32 fnv1a(payload), payload` where the
//! payload is `varint ts, varint n, n × (varint entity, record body)`.
//! One frame per committed transaction keeps commit batching intact and
//! makes the frame boundary the natural recovery unit.

use encoding::varint;
use encoding::{updates_from_record, RecordBody};
use lpg::{GraphError, Result, Timestamp, TimestampedUpdate, Update};
use parking_lot::Mutex;
use std::path::Path;
use vfs::{VfsFile, VfsRef};

/// Hard upper bound on a frame's payload. A corrupt length field can
/// otherwise demand an allocation as large as the file; no legitimate
/// commit comes anywhere near this.
pub const MAX_FRAME_LEN: u64 = 64 * 1024 * 1024;

/// Buffer size for the streaming checksum pass over a frame payload.
const VERIFY_CHUNK: usize = 64 * 1024;

/// One committed transaction in the log.
#[derive(Clone, PartialEq, Debug)]
pub struct CommitFrame {
    /// Commit timestamp shared by every update in the frame.
    pub ts: Timestamp,
    /// `(entity id, record body)` pairs in commit order.
    pub records: Vec<(u64, RecordBody)>,
}

impl CommitFrame {
    /// Builds a frame from logical updates.
    pub fn from_updates(ts: Timestamp, updates: &[Update]) -> CommitFrame {
        CommitFrame {
            ts,
            records: updates
                .iter()
                .map(|u| (u.entity().raw(), RecordBody::from_update(u)))
                .collect(),
        }
    }

    /// Expands the frame back into timestamped logical updates.
    pub fn to_updates(&self) -> Vec<TimestampedUpdate> {
        self.records
            .iter()
            .flat_map(|(entity, body)| updates_from_record(*entity, body))
            .map(|op| TimestampedUpdate::new(self.ts, op))
            .collect()
    }

    /// Serializes the frame payload (the bytes the log checksums and the
    /// replication stream ships — `varint ts, varint n, n × record`).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + self.records.len() * 16);
        varint::write_u64(&mut payload, self.ts);
        varint::write_u64(&mut payload, self.records.len() as u64);
        for (entity, body) in &self.records {
            varint::write_u64(&mut payload, *entity);
            body.encode(&mut payload);
        }
        payload
    }

    /// Parses a frame payload produced by [`CommitFrame::encode`];
    /// `None` on any truncation, trailing garbage, or malformed record.
    pub fn decode(payload: &[u8]) -> Option<CommitFrame> {
        let mut pos = 0;
        let ts = varint::read_u64(payload, &mut pos)?;
        let n = varint::read_u64(payload, &mut pos)? as usize;
        let mut records = Vec::with_capacity(n.min(100_000));
        for _ in 0..n {
            let entity = varint::read_u64(payload, &mut pos)?;
            let body = RecordBody::decode(payload, &mut pos)?;
            records.push((entity, body));
        }
        (pos == payload.len()).then_some(CommitFrame { ts, records })
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    fnv1a_feed(&mut h, bytes);
    h
}

fn fnv1a_feed(h: &mut u32, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u32::from(b);
        *h = h.wrapping_mul(0x0100_0193);
    }
}

/// Append-only log file with torn-tail recovery.
pub struct ChangeLog {
    file: Box<dyn VfsFile>,
    end: Mutex<u64>,
}

impl ChangeLog {
    /// Opens (or creates) the log, scanning it to find a consistent end.
    /// A torn final frame (crash mid-append) is truncated away.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<ChangeLog> {
        ChangeLog::open_with_vfs(&VfsRef::std(), path.as_ref(), 0)
    }

    /// Opens (or creates) the log on `vfs`; see [`ChangeLog::open`].
    ///
    /// `durable_end` is the caller's proof of how far the log was once
    /// fsynced (the TimeStore records it in its index at every sync). A
    /// bad frame *below* it cannot be a crash artifact — fsynced bytes
    /// survive crashes — so it is reported as corruption instead of being
    /// silently truncated away with every valid frame behind it. Bad
    /// frames at or past `durable_end` are the torn tail of a crash and
    /// are truncated. Pass 0 when no durable marker is available
    /// (truncate-only recovery).
    pub fn open_with_vfs(vfs: &VfsRef, path: &Path, durable_end: u64) -> Result<ChangeLog> {
        let file = vfs.open(path)?;
        let len = file.len()?;
        let log = ChangeLog {
            file,
            end: Mutex::new(0),
        };
        let mut offset = 0u64;
        while offset < len {
            match log.read_frame_at(offset, len) {
                Some((_, next)) => offset = next,
                None if offset < durable_end => {
                    return Err(GraphError::CorruptRecord(format!(
                        "corrupt log frame at offset {offset}, below the durable end {durable_end}"
                    )));
                }
                None => break, // torn tail
            }
        }
        if offset < len {
            log.file.set_len(offset)?;
        }
        *log.end.lock() = offset;
        Ok(log)
    }

    /// Appends a commit frame; returns its starting offset.
    pub fn append(&self, frame: &CommitFrame) -> Result<u64> {
        let payload = frame.encode();
        if payload.len() as u64 > MAX_FRAME_LEN {
            return Err(GraphError::Storage(format!(
                "commit frame payload of {} bytes exceeds the {} byte frame cap",
                payload.len(),
                MAX_FRAME_LEN
            )));
        }
        let mut buf = Vec::with_capacity(payload.len() + 8);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let mut end = self.end.lock();
        let offset = *end;
        self.file.write_all_at(&buf, offset)?;
        *end = offset + buf.len() as u64;
        Ok(offset)
    }

    /// Current end offset (the next append position).
    pub fn end_offset(&self) -> u64 {
        *self.end.lock()
    }

    /// On-disk size of the log in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.end_offset()
    }

    fn read_frame_at(&self, offset: u64, file_len: u64) -> Option<(CommitFrame, u64)> {
        if offset + 8 > file_len {
            return None;
        }
        let mut head = [0u8; 8];
        self.file.read_exact_at(&mut head, offset).ok()?;
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&head[..4]);
        let len = u32::from_le_bytes(len4) as u64;
        let mut sum4 = [0u8; 4];
        sum4.copy_from_slice(&head[4..]);
        let checksum = u32::from_le_bytes(sum4);
        if len > MAX_FRAME_LEN || offset + 8 + len > file_len {
            return None;
        }
        // Verify the checksum with a streaming pass over a small buffer
        // *before* allocating `len` bytes, so a corrupt length field never
        // drives a large allocation of garbage.
        let mut h: u32 = 0x811c_9dc5;
        let mut chunk = [0u8; VERIFY_CHUNK];
        let mut pos = 0u64;
        while pos < len {
            let n = VERIFY_CHUNK.min((len - pos) as usize);
            self.file
                .read_exact_at(&mut chunk[..n], offset + 8 + pos)
                .ok()?;
            fnv1a_feed(&mut h, &chunk[..n]);
            pos += n as u64;
        }
        if h != checksum {
            return None;
        }
        let mut payload = vec![0u8; len as usize];
        self.file.read_exact_at(&mut payload, offset + 8).ok()?;
        let frame = CommitFrame::decode(&payload)?;
        Some((frame, offset + 8 + len))
    }

    /// Reads the frame at `offset`; errors on corruption (unlike the
    /// recovery scan, a read through a valid index must succeed).
    pub fn read_at(&self, offset: u64) -> Result<(CommitFrame, u64)> {
        let end = self.end_offset();
        self.read_frame_at(offset, end)
            .ok_or_else(|| GraphError::Storage(format!("corrupt log frame at offset {offset}")))
    }

    /// Streams every frame from `offset` to the log end as of this call,
    /// one frame in memory at a time. Recovery replays and replication
    /// tailing both use this instead of materializing the whole suffix.
    pub fn iter_from(&self, offset: u64) -> LogIter<'_> {
        LogIter {
            log: self,
            offset,
            end: self.end_offset(),
        }
    }

    /// fsyncs the log.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// One frame yielded by [`ChangeLog::iter_from`].
#[derive(Clone, PartialEq, Debug)]
pub struct LogEntry {
    /// Byte offset of the frame header in the log.
    pub offset: u64,
    /// Offset of the frame that follows (the resume position after this
    /// frame — what replication acks and watermarks record).
    pub next: u64,
    /// The decoded commit.
    pub frame: CommitFrame,
}

/// Streaming cursor over log frames; see [`ChangeLog::iter_from`]. The
/// end is fixed at creation, so frames appended concurrently are not
/// yielded — create a fresh iterator to tail further.
pub struct LogIter<'a> {
    log: &'a ChangeLog,
    offset: u64,
    end: u64,
}

impl Iterator for LogIter<'_> {
    type Item = Result<LogEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.end {
            return None;
        }
        let offset = self.offset;
        match self.log.read_frame_at(offset, self.end) {
            Some((frame, next)) => {
                self.offset = next;
                Some(Ok(LogEntry {
                    offset,
                    next,
                    frame,
                }))
            }
            None => {
                // Park the cursor so a corrupt frame errors once, not forever.
                self.offset = self.end;
                Some(Err(GraphError::Storage(format!(
                    "corrupt log frame at offset {offset}"
                ))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::NodeId;
    use tempfile::tempdir;

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: NodeId::new(i),
            labels: vec![],
            props: vec![],
        }
    }

    #[test]
    fn append_and_read_back() {
        let dir = tempdir().unwrap();
        let log = ChangeLog::open(dir.path().join("c.log")).unwrap();
        let f1 = CommitFrame::from_updates(1, &[add_node(1), add_node(2)]);
        let f2 = CommitFrame::from_updates(2, &[Update::DeleteNode { id: NodeId::new(1) }]);
        let o1 = log.append(&f1).unwrap();
        let o2 = log.append(&f2).unwrap();
        assert!(o2 > o1);
        let (got1, next1) = log.read_at(o1).unwrap();
        assert_eq!(got1, f1);
        assert_eq!(next1, o2);
        let (got2, _) = log.read_at(o2).unwrap();
        assert_eq!(got2.ts, 2);
        let all: Vec<_> = log.iter_from(0).collect::<Result<_>>().unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn to_updates_roundtrip() {
        let ops = vec![add_node(5), Update::DeleteNode { id: NodeId::new(5) }];
        let frame = CommitFrame::from_updates(9, &ops);
        let back = frame.to_updates();
        assert_eq!(back.len(), 2);
        assert!(back.iter().all(|u| u.ts == 9));
        assert_eq!(back[0].op, ops[0]);
    }

    #[test]
    fn reopen_preserves_end_offset() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("c.log");
        let end;
        {
            let log = ChangeLog::open(&path).unwrap();
            log.append(&CommitFrame::from_updates(1, &[add_node(1)]))
                .unwrap();
            end = log.end_offset();
            log.sync().unwrap();
        }
        let log = ChangeLog::open(&path).unwrap();
        assert_eq!(log.end_offset(), end);
        assert_eq!(log.iter_from(0).count(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("c.log");
        let good_end;
        {
            let log = ChangeLog::open(&path).unwrap();
            log.append(&CommitFrame::from_updates(1, &[add_node(1)]))
                .unwrap();
            good_end = log.end_offset();
            log.append(&CommitFrame::from_updates(2, &[add_node(2)]))
                .unwrap();
            log.sync().unwrap();
        }
        // Simulate a crash that tore the second frame.
        let f = VfsRef::std().open(&path).unwrap();
        f.set_len(good_end + 5).unwrap();
        drop(f);
        let log = ChangeLog::open(&path).unwrap();
        assert_eq!(log.end_offset(), good_end);
        let frames: Vec<_> = log.iter_from(0).collect::<Result<_>>().unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].frame.ts, 1);
        // The log accepts appends again after truncation.
        log.append(&CommitFrame::from_updates(2, &[add_node(2)]))
            .unwrap();
        assert_eq!(log.iter_from(0).count(), 2);
    }

    #[test]
    fn oversized_len_frame_is_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("c.log");
        let good_end;
        {
            let log = ChangeLog::open(&path).unwrap();
            log.append(&CommitFrame::from_updates(1, &[add_node(1)]))
                .unwrap();
            good_end = log.end_offset();
            log.sync().unwrap();
        }
        // A corrupt header claiming a ~4 GiB payload, "backed" by a sparse
        // file so the length bound alone does not reject it. The frame cap
        // must discard it instead of allocating gigabytes.
        let f = VfsRef::std().open(&path).unwrap();
        let mut head = Vec::new();
        head.extend_from_slice(&u32::MAX.to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        f.write_all_at(&head, good_end).unwrap();
        f.set_len(good_end + 8 + u64::from(u32::MAX)).unwrap();
        drop(f);
        let log = ChangeLog::open(&path).unwrap();
        assert_eq!(log.end_offset(), good_end);
        assert_eq!(log.iter_from(0).count(), 1);
    }

    #[test]
    fn in_bound_bogus_len_fails_streaming_verify() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("c.log");
        let good_end;
        {
            let log = ChangeLog::open(&path).unwrap();
            log.append(&CommitFrame::from_updates(1, &[add_node(1)]))
                .unwrap();
            good_end = log.end_offset();
            log.sync().unwrap();
        }
        // A 8 MiB claimed payload under the cap and within the (sparse)
        // file: the streaming checksum pass rejects it chunk by chunk.
        let bogus = 8u64 * 1024 * 1024;
        let f = VfsRef::std().open(&path).unwrap();
        let mut head = Vec::new();
        head.extend_from_slice(&(bogus as u32).to_le_bytes());
        head.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        f.write_all_at(&head, good_end).unwrap();
        f.set_len(good_end + 8 + bogus).unwrap();
        drop(f);
        let log = ChangeLog::open(&path).unwrap();
        assert_eq!(log.end_offset(), good_end);
    }

    #[test]
    fn corrupted_payload_detected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("c.log");
        {
            let log = ChangeLog::open(&path).unwrap();
            log.append(&CommitFrame::from_updates(1, &[add_node(1)]))
                .unwrap();
            log.sync().unwrap();
        }
        // Flip a payload byte.
        let vfs = VfsRef::std();
        let mut bytes = vfs.read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        vfs.write(&path, &bytes).unwrap();
        let log = ChangeLog::open(&path).unwrap();
        assert_eq!(log.end_offset(), 0, "bad checksum ⇒ frame discarded");
    }
}
