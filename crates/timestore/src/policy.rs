//! Snapshot creation policies (Sec. 4.3): "eagerly creates snapshots based
//! on a user-defined policy … time-based or operation-based (the number of
//! updates), with the default being operation-based".

use lpg::Timestamp;

/// When TimeStore materializes a new full snapshot to disk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotPolicy {
    /// Snapshot after every `n` applied updates (the paper's default kind).
    EveryNOps(u64),
    /// Snapshot whenever at least `dt` time units passed since the last one.
    EveryInterval(u64),
    /// Never snapshot automatically (reconstruction always replays the log).
    Never,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy::EveryNOps(10_000)
    }
}

impl SnapshotPolicy {
    /// Decides whether to snapshot, given the updates applied and time
    /// elapsed since the last snapshot.
    pub fn should_snapshot(&self, ops_since: u64, last_ts: Timestamp, now: Timestamp) -> bool {
        match *self {
            SnapshotPolicy::EveryNOps(n) => ops_since >= n,
            SnapshotPolicy::EveryInterval(dt) => now.saturating_sub(last_ts) >= dt,
            SnapshotPolicy::Never => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_policy() {
        let p = SnapshotPolicy::EveryNOps(100);
        assert!(!p.should_snapshot(99, 0, 50));
        assert!(p.should_snapshot(100, 0, 50));
        assert!(p.should_snapshot(101, 0, 0));
    }

    #[test]
    fn interval_policy() {
        let p = SnapshotPolicy::EveryInterval(10);
        assert!(!p.should_snapshot(1_000_000, 5, 14));
        assert!(p.should_snapshot(0, 5, 15));
    }

    #[test]
    fn never_policy() {
        assert!(!SnapshotPolicy::Never.should_snapshot(u64::MAX, 0, u64::MAX));
    }

    #[test]
    fn default_is_operation_based() {
        assert!(matches!(
            SnapshotPolicy::default(),
            SnapshotPolicy::EveryNOps(_)
        ));
    }
}
