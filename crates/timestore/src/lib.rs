//! # aion-timestore — snapshot-based temporal storage indexed by time
//!
//! TimeStore (paper Sec. 4.3) is the half of Aion's hybrid store that
//! accelerates *global* queries: full-graph restoration at arbitrary time
//! points, diffs between time points, graph windows and temporal graphs.
//!
//! Components, mirroring the paper:
//!
//! * [`log::ChangeLog`] — "a log that contains all graph changes (similar to
//!   a DB write-ahead log with no retention policy)", ordered by
//!   monotonically increasing transaction timestamps, holding fully
//!   materialized entries or deltas in the Sec. 4.2 record format. Frames
//!   are checksummed so recovery can detect a torn tail.
//! * a B+Tree index `timestamp → log offset` for `O(log n)` seeks into the
//!   log (Table 2, row 1);
//! * eager snapshots written "based on a user-defined policy"
//!   ([`policy::SnapshotPolicy`], operation-based by default) to snapshot
//!   files, referenced from "a second B+Tree indexed by time" (Table 2,
//!   row 2);
//! * [`graphstore::GraphStore`] — "an in-memory Least Recently Used (LRU)
//!   cache for snapshots", which also maintains the *latest* graph by
//!   synchronously applying committed updates (Sec. 5.1 "Snapshot
//!   replication", the HTAP-style design).
//!
//! To retrieve a graph at timestamp `t`, [`store::TimeStore`] fetches the
//! snapshot with the closest timestamp `≤ t` (from GraphStore or disk) and
//! replays the forward changes from the log (Sec. 4.3).

pub mod audit;
pub mod graphstore;
pub mod log;
pub mod policy;
pub mod store;

pub use audit::AuditFinding;
pub use graphstore::GraphStore;
pub use log::{ChangeLog, CommitFrame};
pub use policy::SnapshotPolicy;
pub use store::{TimeStore, TimeStoreConfig, TimeStoreStats};
