//! GraphStore: the in-memory snapshot cache plus the always-current latest
//! graph (Sec. 4.3 "an in-memory Least Recently Used (LRU) cache for
//! snapshots called GraphStore"; Sec. 5.1 "we maintain the latest graph
//! in-memory … by synchronously applying all committed graph updates",
//! HTAP-style).
//!
//! Snapshots are shared as `Arc<Graph>`: handing one out is a pointer copy
//! (the CoW discipline of Sec. 5.2 — a reader that needs to mutate clones
//! via `Arc::make_mut`, copying only then).

use lpg::{Graph, Timestamp, Update};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

struct Inner {
    /// Cached historical snapshots keyed by timestamp; `BTreeMap` gives us
    /// the floor lookup, the `u64` tick drives LRU eviction.
    cache: BTreeMap<Timestamp, (Arc<Graph>, u64)>,
    bytes: usize,
    tick: u64,
    latest: Arc<Graph>,
    latest_ts: Timestamp,
    hits: u64,
    misses: u64,
}

/// In-memory snapshot cache with a byte budget, plus the latest graph.
pub struct GraphStore {
    inner: Mutex<Inner>,
    budget: usize,
}

impl GraphStore {
    /// A store whose historical cache may hold up to `budget_bytes` of
    /// estimated graph heap (the latest graph is not counted — it must
    /// always be resident).
    pub fn new(budget_bytes: usize) -> GraphStore {
        GraphStore {
            inner: Mutex::new(Inner {
                cache: BTreeMap::new(),
                bytes: 0,
                tick: 0,
                latest: Arc::new(Graph::new()),
                latest_ts: 0,
                hits: 0,
                misses: 0,
            }),
            budget: budget_bytes,
        }
    }

    /// Applies one committed transaction to the latest graph.
    pub fn apply_commit(&self, ts: Timestamp, updates: &[Update]) -> lpg::Result<()> {
        let mut g = self.inner.lock();
        let graph = Arc::make_mut(&mut g.latest);
        for u in updates {
            graph.apply(u)?;
        }
        g.latest_ts = ts;
        Ok(())
    }

    /// The latest graph (shared, zero-copy) and its timestamp.
    pub fn latest(&self) -> (Arc<Graph>, Timestamp) {
        let g = self.inner.lock();
        (g.latest.clone(), g.latest_ts)
    }

    /// Replaces the latest graph wholesale (recovery).
    pub fn set_latest(&self, graph: Graph, ts: Timestamp) {
        let mut g = self.inner.lock();
        g.latest = Arc::new(graph);
        g.latest_ts = ts;
    }

    /// Caches a historical snapshot, evicting LRU entries past the budget.
    pub fn put(&self, ts: Timestamp, graph: Arc<Graph>) {
        let size = graph.heap_size();
        if size > self.budget {
            return; // would evict everything else for one entry
        }
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some((old, _)) = g.cache.insert(ts, (graph, tick)) {
            g.bytes -= old.heap_size();
        }
        g.bytes += size;
        while g.bytes > self.budget {
            // Evict the least recently used snapshot. An empty cache with
            // a non-zero byte count would be an accounting bug; reset the
            // counter instead of panicking.
            let victim = g
                .cache
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(ts, _)| *ts);
            let Some(victim) = victim else {
                g.bytes = 0;
                break;
            };
            if let Some((old, _)) = g.cache.remove(&victim) {
                g.bytes -= old.heap_size();
            }
        }
    }

    /// Exact-timestamp cache lookup.
    pub fn get(&self, ts: Timestamp) -> Option<Arc<Graph>> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        match g.cache.get_mut(&ts) {
            Some((graph, t)) => {
                *t = tick;
                let out = graph.clone();
                g.hits += 1;
                Some(out)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Best cached snapshot with timestamp `≤ ts` — the "closest snapshot"
    /// lookup of Sec. 4.3. The latest graph also qualifies when current.
    pub fn floor(&self, ts: Timestamp) -> Option<(Timestamp, Arc<Graph>)> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        if g.latest_ts <= ts && g.latest.nodes().next().is_some() {
            // The live graph is the cheapest base when it's old enough.
            return Some((g.latest_ts, g.latest.clone()));
        }
        let found = g
            .cache
            .range(..=ts)
            .next_back()
            .map(|(k, (graph, _))| (*k, graph.clone()));
        match &found {
            Some((k, _)) => {
                g.hits += 1;
                let k = *k;
                if let Some((_, t)) = g.cache.get_mut(&k) {
                    *t = tick;
                }
            }
            None => g.misses += 1,
        }
        found
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let g = self.inner.lock();
        (g.hits, g.misses)
    }

    /// Number of cached historical snapshots.
    pub fn len(&self) -> usize {
        self.inner.lock().cache.len()
    }

    /// `true` when no historical snapshots are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes held by the historical cache.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::NodeId;

    fn graph_with_nodes(n: u64) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn latest_graph_tracks_commits() {
        let gs = GraphStore::new(1 << 20);
        gs.apply_commit(
            5,
            &[Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            }],
        )
        .unwrap();
        let (g, ts) = gs.latest();
        assert_eq!(ts, 5);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn cow_latest_does_not_disturb_readers() {
        let gs = GraphStore::new(1 << 20);
        gs.apply_commit(
            1,
            &[Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            }],
        )
        .unwrap();
        let (before, _) = gs.latest();
        gs.apply_commit(
            2,
            &[Update::AddNode {
                id: NodeId::new(2),
                labels: vec![],
                props: vec![],
            }],
        )
        .unwrap();
        // The reader's Arc still sees the old state (copy-on-write).
        assert_eq!(before.node_count(), 1);
        assert_eq!(gs.latest().0.node_count(), 2);
    }

    #[test]
    fn floor_prefers_closest_at_or_before() {
        let gs = GraphStore::new(1 << 24);
        gs.put(10, Arc::new(graph_with_nodes(1)));
        gs.put(20, Arc::new(graph_with_nodes(2)));
        gs.put(30, Arc::new(graph_with_nodes(3)));
        assert_eq!(gs.floor(25).unwrap().0, 20);
        assert_eq!(gs.floor(30).unwrap().0, 30);
        assert!(gs.floor(5).is_none());
    }

    #[test]
    fn floor_uses_latest_when_applicable() {
        let gs = GraphStore::new(1 << 24);
        gs.apply_commit(
            50,
            &[Update::AddNode {
                id: NodeId::new(1),
                labels: vec![],
                props: vec![],
            }],
        )
        .unwrap();
        let (ts, g) = gs.floor(60).unwrap();
        assert_eq!(ts, 50);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn budget_evicts_lru() {
        let one = Arc::new(graph_with_nodes(10));
        let size = one.heap_size();
        let gs = GraphStore::new(size * 2 + size / 2); // fits two
        gs.put(1, one.clone());
        gs.put(2, Arc::new(graph_with_nodes(10)));
        assert_eq!(gs.len(), 2);
        // Touch 1 so 2 is the LRU.
        assert!(gs.get(1).is_some());
        gs.put(3, Arc::new(graph_with_nodes(10)));
        assert_eq!(gs.len(), 2);
        assert!(gs.get(2).is_none(), "2 was evicted");
        assert!(gs.get(1).is_some());
        assert!(gs.get(3).is_some());
    }

    #[test]
    fn oversized_snapshot_is_not_cached() {
        let gs = GraphStore::new(64);
        gs.put(1, Arc::new(graph_with_nodes(100)));
        assert!(gs.is_empty());
        assert_eq!(gs.cached_bytes(), 0);
    }
}
