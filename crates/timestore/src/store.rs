//! The TimeStore facade: log + time indexes + snapshots + GraphStore.

use crate::graphstore::GraphStore;
use crate::log::{ChangeLog, CommitFrame};
use crate::policy::SnapshotPolicy;
use btree::BTree;
use encoding::{keys, snapshot};
use lpg::{
    Graph, GraphError, Interval, Result, TemporalGraph, Timestamp, TimestampedUpdate, Update,
    TS_MAX,
};
use pagestore::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vfs::VfsRef;

/// Tuning knobs for a [`TimeStore`].
#[derive(Clone, Debug)]
pub struct TimeStoreConfig {
    /// Pages held by the index page cache.
    pub cache_pages: usize,
    /// Snapshot creation policy.
    pub policy: SnapshotPolicy,
    /// Byte budget of the in-memory GraphStore snapshot cache.
    pub graphstore_bytes: usize,
    /// File system every file of the store is opened on. Defaults to the
    /// production `StdVfs`; the crash harness passes a `SimVfs`.
    pub vfs: VfsRef,
    /// Verify the index page file against its checksum sidecar at open.
    /// On mismatch (a crash tore un-synced index pages) the index is
    /// wiped and rebuilt from the log. Defaults to `true`.
    pub verify_index_pages: bool,
}

impl Default for TimeStoreConfig {
    fn default() -> Self {
        TimeStoreConfig {
            cache_pages: 1024,
            policy: SnapshotPolicy::default(),
            graphstore_bytes: 256 << 20,
            vfs: VfsRef::std(),
            verify_index_pages: true,
        }
    }
}

/// Appends the FNV-1a footer that makes a snapshot file self-verifying.
pub(crate) fn seal_snapshot(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(payload);
    out.extend_from_slice(&vfs::fnv64(payload).to_le_bytes());
    out
}

/// Verifies a snapshot file's footer, returning the payload when intact.
pub(crate) fn snapshot_payload(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, footer) = bytes.split_at(bytes.len() - 8);
    let mut f = [0u8; 8];
    f.copy_from_slice(footer);
    (vfs::fnv64(payload) == u64::from_le_bytes(f)).then_some(payload)
}

/// Parses the timestamp out of a `snap_<ts>.aisnap` file name.
pub(crate) fn snapshot_name_ts(name: &str) -> Option<Timestamp> {
    name.strip_prefix("snap_")?
        .strip_suffix(".aisnap")?
        .parse()
        .ok()
}

/// Size/footprint counters for the storage-overhead experiments (Fig. 10).
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeStoreStats {
    /// Change-log bytes.
    pub log_bytes: u64,
    /// Index file bytes (both B+Trees).
    pub index_bytes: u64,
    /// Total bytes of serialized snapshot files.
    pub snapshot_bytes: u64,
    /// Number of on-disk snapshots.
    pub snapshot_count: u64,
    /// Updates ingested.
    pub updates: u64,
    /// Commits ingested.
    pub commits: u64,
}

struct Metrics {
    log_appends: Arc<obs::Counter>,
    snapshot_creates: Arc<obs::Counter>,
    snapshot_create_latency: Arc<obs::Histogram>,
    snapshot_replays: Arc<obs::Counter>,
    snapshot_replay_latency: Arc<obs::Histogram>,
    graphstore_hits: Arc<obs::Counter>,
    graphstore_misses: Arc<obs::Counter>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            log_appends: obs::counter("timestore.log.appends"),
            snapshot_creates: obs::counter("timestore.snapshot.creates"),
            snapshot_create_latency: obs::histogram("timestore.snapshot.create.latency_ns"),
            snapshot_replays: obs::counter("timestore.snapshot.replays"),
            snapshot_replay_latency: obs::histogram("timestore.snapshot.replay.latency_ns"),
            graphstore_hits: obs::counter("timestore.graphstore.hits"),
            graphstore_misses: obs::counter("timestore.graphstore.misses"),
        }
    }
}

struct MutableState {
    latest_ts: Timestamp,
    ops_since_snapshot: u64,
    last_snapshot_ts: Timestamp,
    updates: u64,
    commits: u64,
    snapshot_bytes: u64,
    snapshot_count: u64,
}

/// Snapshot-based temporal storage indexed by time (Sec. 4.3).
pub struct TimeStore {
    pub(crate) vfs: VfsRef,
    pub(crate) log: ChangeLog,
    /// B+Tree: commit ts → log offset.
    pub(crate) time_index: BTree,
    /// B+Tree: snapshot ts → snapshot file name.
    pub(crate) snap_index: BTree,
    pub(crate) index_store: Arc<PageStore>,
    graphstore: GraphStore,
    pub(crate) snap_dir: PathBuf,
    policy: SnapshotPolicy,
    state: Mutex<MutableState>,
    /// In-memory mirror of [`SLOT_DURABLE_LOG_END`]: how many log bytes
    /// the last successful [`TimeStore::sync`] provably fsynced.
    /// Replication ships only below this point — bytes past it could
    /// still be lost in a crash.
    durable_log_end: AtomicU64,
    metrics: Metrics,
}

const SLOT_TIME_INDEX: usize = 0;
const SLOT_SNAP_INDEX: usize = 1;
/// Root slot recording how many log bytes were covered by the last
/// [`TimeStore::sync`]. Set *after* the log fsync and made durable by the
/// subsequent index fsync, so it never exceeds the durable log length; at
/// open it separates mid-log corruption (bad frame below it — hard error)
/// from a crash's torn tail (bad frame past it — truncated).
const SLOT_DURABLE_LOG_END: usize = 2;

impl TimeStore {
    /// Opens a TimeStore rooted at directory `dir`, recovering state from
    /// the log (the log is the source of truth; index tails are rebuilt).
    ///
    /// When the index page file fails checksum verification (or recovery
    /// through it fails), the index is deleted and rebuilt wholesale from
    /// the log — the slow path a crash mid-index-writeback leads to.
    pub fn open<P: AsRef<Path>>(dir: P, config: TimeStoreConfig) -> Result<TimeStore> {
        let dir = dir.as_ref();
        config.vfs.create_dir_all(dir)?;
        config.vfs.create_dir_all(&dir.join("snapshots"))?;
        match Self::try_open(dir, &config, config.verify_index_pages, false) {
            Ok(store) => Ok(store),
            // Corruption below the durable log end is diagnosed against a
            // checksum-verified index: real damage, not a crash artifact.
            // Wiping the index would discard the evidence and silently
            // truncate acknowledged commits — surface it instead. Every
            // other failure (torn index pages, stale index tail) is
            // recoverable by rebuilding the index from the log.
            Err(e @ GraphError::CorruptRecord(_)) if e.to_string().contains("durable end") => {
                Err(e)
            }
            Err(_) => Self::try_open(dir, &config, false, true),
        }
    }

    fn try_open(
        dir: &Path,
        config: &TimeStoreConfig,
        verify: bool,
        wipe_index: bool,
    ) -> Result<TimeStore> {
        let vfs = config.vfs.clone();
        let snap_dir = dir.join("snapshots");
        let idx_path = dir.join("timestore.idx");
        if wipe_index {
            let _ = vfs.remove_file(&idx_path);
            let _ = vfs.remove_file(&PageStore::sums_path(&idx_path));
        }
        let index_store = Arc::new(PageStore::open_with_vfs(
            &vfs,
            &idx_path,
            config.cache_pages,
            verify,
        )?);
        let time_index = BTree::open(index_store.clone(), SLOT_TIME_INDEX)
            .map_err(|e| GraphError::Storage(e.to_string()))?;
        let snap_index = BTree::open(index_store.clone(), SLOT_SNAP_INDEX)
            .map_err(|e| GraphError::Storage(e.to_string()))?;
        // The durable-end marker is only trustworthy when the index file
        // verified against its checksum sidecar (i.e. is exactly the image
        // of its last successful sync); otherwise fall back to
        // truncate-only torn-tail recovery.
        let durable_end = match index_store.root(SLOT_DURABLE_LOG_END) {
            _ if !verify => 0,
            u64::MAX => 0,
            end => end,
        };
        let log = ChangeLog::open_with_vfs(&vfs, &dir.join("timestore.log"), durable_end)?;
        // The marker can trail the surviving log (syncs are batched) but
        // never lead it; clamp defensively in case the file shrank.
        let durable_log_end = AtomicU64::new(durable_end.min(log.end_offset()));
        let store = TimeStore {
            vfs,
            log,
            time_index,
            snap_index,
            index_store,
            graphstore: GraphStore::new(config.graphstore_bytes),
            snap_dir,
            policy: config.policy,
            state: Mutex::new(MutableState {
                latest_ts: 0,
                ops_since_snapshot: 0,
                last_snapshot_ts: 0,
                updates: 0,
                commits: 0,
                snapshot_bytes: 0,
                snapshot_count: 0,
            }),
            durable_log_end,
            metrics: Metrics::new(),
        };
        store.recover()?;
        Ok(store)
    }

    /// Recovery: reindex any log frames missing from the time index (crash
    /// between log append and index flush), then rebuild the latest graph.
    fn recover(&self) -> Result<()> {
        // Find the highest indexed (ts, offset).
        let mut last_indexed_offset: Option<u64> = None;
        if let Some((_, v)) = self
            .time_index
            .seek_floor(&keys::ts_key(TS_MAX))
            .map_err(storage_err)?
        {
            last_indexed_offset = Some(decode_u64(&v)?);
        }
        // Scan the log from the last indexed frame (or the start).
        let scan_from = match last_indexed_offset {
            Some(off) => {
                let (_, next) = self.log.read_at(off)?;
                next
            }
            None => 0,
        };
        for entry in self.log.iter_from(scan_from) {
            let entry = entry?;
            self.time_index
                .insert(&keys::ts_key(entry.frame.ts), &entry.offset.to_le_bytes())
                .map_err(storage_err)?;
        }
        // Count stats and rebuild the latest graph from the best snapshot.
        let mut state = self.state.lock();
        let mut latest_ts = 0;
        let mut commits = 0u64;
        let mut updates = 0u64;
        for entry in self.log.iter_from(0) {
            let frame = entry?.frame;
            latest_ts = frame.ts;
            commits += 1;
            updates += frame.records.len() as u64;
        }
        state.latest_ts = latest_ts;
        state.commits = commits;
        state.updates = updates;
        // Reconcile the snapshot directory with the snapshot index. A
        // crash can leave torn snapshot files (quarantined — the log
        // re-derives them), snapshots from a future the durable log never
        // reached (deleted, preserving the snapshot-index envelope), valid
        // files the index lost (re-indexed), and index entries whose file
        // is gone (dropped).
        let mut valid = std::collections::BTreeSet::new();
        for (name, _) in self.vfs.read_dir(&self.snap_dir)? {
            let Some(sts) = snapshot_name_ts(&name) else {
                continue;
            };
            let path = self.snap_dir.join(&name);
            let intact = self
                .vfs
                .read(&path)
                .ok()
                .map(|b| (snapshot_payload(&b).is_some(), b.len() as u64));
            match intact {
                Some((true, len)) if sts <= latest_ts && sts > 0 => {
                    valid.insert(sts);
                    state.snapshot_bytes += len;
                    state.snapshot_count += 1;
                    if !self
                        .snap_index
                        .contains(&keys::ts_key(sts))
                        .map_err(storage_err)?
                    {
                        self.snap_index
                            .insert(&keys::ts_key(sts), name.as_bytes())
                            .map_err(storage_err)?;
                    }
                }
                _ => {
                    let _ = self.vfs.remove_file(&path);
                }
            }
        }
        let mut stale = Vec::new();
        for item in self.snap_index.scan(&[], &[]).map_err(storage_err)? {
            let (key, _) = item.map_err(storage_err)?;
            match keys::decode_ts_key(&key) {
                Some(sts) if valid.contains(&sts) => {}
                _ => stale.push(key),
            }
        }
        for key in stale {
            self.snap_index.remove(&key).map_err(storage_err)?;
        }
        state.last_snapshot_ts = 0;
        drop(state);
        if latest_ts > 0 {
            let graph = self.reconstruct_at(latest_ts)?;
            self.graphstore.set_latest(
                Arc::try_unwrap(graph).unwrap_or_else(|a| (*a).clone()),
                latest_ts,
            );
        }
        Ok(())
    }

    /// Ingests one committed transaction. Timestamps must be strictly
    /// increasing across commits ("no further changes are allowed on past
    /// updates").
    pub fn append_commit(&self, ts: Timestamp, updates: &[Update]) -> Result<()> {
        {
            let state = self.state.lock();
            if ts <= state.latest_ts && state.commits > 0 {
                return Err(GraphError::NonMonotonicCommit {
                    attempted: ts,
                    latest: state.latest_ts,
                });
            }
        }
        let frame = CommitFrame::from_updates(ts, updates);
        let offset = self.log.append(&frame)?;
        // The commit is in the log from here on: recovery replays it even
        // if the index insert or in-memory apply below fails. Publish
        // `latest_ts` before those steps so a caller seeing an error can
        // classify it: `latest_ts() < ts` means the log rejected the frame
        // cleanly (nothing persisted, the same timestamp may be retried),
        // `latest_ts() >= ts` means the commit reached the log and its
        // durability is uncertain.
        self.metrics.log_appends.inc();
        let should_snapshot;
        {
            let mut state = self.state.lock();
            state.latest_ts = ts;
            state.commits += 1;
            state.updates += updates.len() as u64;
            state.ops_since_snapshot += updates.len() as u64;
            should_snapshot =
                self.policy
                    .should_snapshot(state.ops_since_snapshot, state.last_snapshot_ts, ts);
        }
        self.time_index
            .insert(&keys::ts_key(ts), &offset.to_le_bytes())
            .map_err(storage_err)?;
        self.graphstore.apply_commit(ts, updates)?;
        if should_snapshot {
            self.write_snapshot(ts)?;
        }
        Ok(())
    }

    /// Forces a snapshot of the latest graph at its current timestamp.
    pub fn write_snapshot(&self, ts: Timestamp) -> Result<()> {
        let _timer = self.metrics.snapshot_create_latency.start_timer();
        self.metrics.snapshot_creates.inc();
        let (graph, latest_ts) = self.graphstore.latest();
        debug_assert_eq!(latest_ts, ts);
        let bytes = seal_snapshot(&snapshot::encode_graph(&graph));
        let name = format!("snap_{ts:020}.aisnap");
        let path = self.snap_dir.join(&name);
        // Write through a handle and sync before indexing: a crash can
        // then only leave a torn (quarantinable) or absent file, never a
        // durable index entry pointing at a non-durable snapshot.
        let file = self.vfs.open(&path)?;
        file.set_len(0)?;
        file.write_all_at(&bytes, 0)?;
        file.sync_data()?;
        drop(file);
        self.snap_index
            .insert(&keys::ts_key(ts), name.as_bytes())
            .map_err(storage_err)?;
        self.graphstore.put(ts, graph);
        let mut state = self.state.lock();
        state.ops_since_snapshot = 0;
        state.last_snapshot_ts = ts;
        state.snapshot_bytes += bytes.len() as u64;
        state.snapshot_count += 1;
        Ok(())
    }

    /// The latest committed timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.state.lock().latest_ts
    }

    /// The latest graph, zero-copy.
    pub fn latest_graph(&self) -> Arc<Graph> {
        self.graphstore.latest().0
    }

    /// Direct access to the in-memory GraphStore.
    pub fn graphstore(&self) -> &GraphStore {
        &self.graphstore
    }

    /// `getDiff(start, end)`: every update with commit ts in `[start, end)`,
    /// in timestamp order — the primitive behind incremental execution.
    pub fn diff(&self, start: Timestamp, end: Timestamp) -> Result<Vec<TimestampedUpdate>> {
        if start >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let scan = self
            .time_index
            .scan(&keys::ts_key(start), &keys::ts_key(end))
            .map_err(storage_err)?;
        for entry in scan {
            let (_, v) = entry.map_err(storage_err)?;
            let offset = decode_u64(&v)?;
            let (frame, _) = self.log.read_at(offset)?;
            out.extend(frame.to_updates());
        }
        Ok(out)
    }

    /// `getGraph` at a single point: the full graph as of `ts` (inclusive).
    ///
    /// Fetches the closest snapshot `≤ ts` from the GraphStore or disk, then
    /// replays forward log changes (Sec. 4.3).
    pub fn snapshot_at(&self, ts: Timestamp) -> Result<Arc<Graph>> {
        self.reconstruct_at(ts)
    }

    fn reconstruct_at(&self, ts: Timestamp) -> Result<Arc<Graph>> {
        // Exact in-memory hit?
        if let Some(g) = self.graphstore.get(ts) {
            self.metrics.graphstore_hits.inc();
            return Ok(g);
        }
        self.metrics.graphstore_misses.inc();
        // Best base from memory or disk.
        let mem = self.graphstore.floor(ts);
        let disk = self
            .snap_index
            .seek_floor(&keys::ts_key(ts))
            .map_err(storage_err)?;
        let (base_ts, base): (Timestamp, Arc<Graph>) = match (mem, disk) {
            (Some((mts, g)), Some((k, _))) if mts >= decode_ts(&k)? => (mts, g),
            (Some((mts, g)), None) => (mts, g),
            (mem, Some((k, name))) => {
                let disk_ts = decode_ts(&k)?;
                let path = self.snap_dir.join(String::from_utf8_lossy(&name).as_ref());
                match self
                    .vfs
                    .read(&path)
                    .ok()
                    .and_then(|b| snapshot_payload(&b).and_then(snapshot::decode_graph))
                {
                    Some(g) => {
                        let g = Arc::new(g);
                        self.graphstore.put(disk_ts, g.clone());
                        (disk_ts, g)
                    }
                    None => {
                        // A corrupt or missing snapshot file is recoverable:
                        // the change log holds the full history. Prefer any
                        // older in-memory base, else replay from the start.
                        match mem {
                            Some((mts, g)) => (mts, g),
                            None => (0, Arc::new(Graph::new())),
                        }
                    }
                }
            }
            (None, None) => (0, Arc::new(Graph::new())),
        };
        if base_ts == ts {
            return Ok(base);
        }
        // Replay (base_ts, ts] on a CoW copy.
        let _timer = self.metrics.snapshot_replay_latency.start_timer();
        self.metrics.snapshot_replays.inc();
        let deltas = self.diff(base_ts.saturating_add(1), ts.saturating_add(1))?;
        if deltas.is_empty() {
            return Ok(base);
        }
        let mut graph = (*base).clone();
        for u in &deltas {
            graph.apply(&u.op)?;
        }
        let graph = Arc::new(graph);
        self.graphstore.put(ts, graph.clone());
        Ok(graph)
    }

    /// `getGraph(start, end, step)`: materializes snapshots every `step`
    /// time units over `[start, end)` with one base + incremental forward
    /// replay.
    pub fn graphs(
        &self,
        start: Timestamp,
        end: Timestamp,
        step: u64,
    ) -> Result<Vec<(Timestamp, Arc<Graph>)>> {
        if start >= end || step == 0 {
            return Err(GraphError::InvalidTimeRange);
        }
        let mut out = Vec::new();
        let mut current = (*self.reconstruct_at(start)?).clone();
        out.push((start, Arc::new(current.clone())));
        let mut t = start;
        while t.saturating_add(step) < end {
            let next = t + step;
            for u in &self.diff(t + 1, next + 1)? {
                current.apply(&u.op)?;
            }
            out.push((next, Arc::new(current.clone())));
            t = next;
        }
        Ok(out)
    }

    /// `getWindow(start, end)`: the union graph of everything valid at some
    /// point in `[start, end)`. For each member entity the state is its
    /// latest within the window; relationships keep membership even when an
    /// endpoint was deleted mid-window only if both endpoints are members.
    pub fn window(&self, start: Timestamp, end: Timestamp) -> Result<Graph> {
        if start >= end {
            return Err(GraphError::InvalidTimeRange);
        }
        let tg = self.temporal_graph(start, end)?;
        let mut out = Graph::new();
        // Latest state of every node seen in the window.
        for chain in tg.nodes.values() {
            // temporal_graph never emits empty chains; skip defensively.
            let Some(last) = chain.last() else { continue };
            out.apply(&Update::AddNode {
                id: last.data.id,
                labels: last.data.labels.clone(),
                props: last.data.props.clone(),
            })?;
        }
        for chain in tg.rels.values() {
            let Some(last) = chain.last() else { continue };
            let r = &last.data;
            // Dangling relationships (an endpoint never present in the
            // window) are pruned, mirroring Gradoop's verification join.
            if out.has_node(r.src) && out.has_node(r.tgt) {
                out.apply(&Update::AddRel {
                    id: r.id,
                    src: r.src,
                    tgt: r.tgt,
                    label: r.label,
                    props: r.props.clone(),
                })?;
            }
        }
        Ok(out)
    }

    /// `getTemporalGraph(start, end)`: the full temporal LPG over
    /// `[start, end)` with per-entity version intervals.
    pub fn temporal_graph(&self, start: Timestamp, end: Timestamp) -> Result<TemporalGraph> {
        if start >= end {
            return Err(GraphError::InvalidTimeRange);
        }
        let base = self.reconstruct_at(start)?;
        let updates = self.diff(start.saturating_add(1), end)?;
        Ok(TemporalGraph::build(
            &base,
            Interval::new(start, end),
            &updates,
        ))
    }

    /// Per-entity diffs grouped by entity — the `List<Entity>` shape of the
    /// paper's `getDiff`.
    pub fn diff_by_entity(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<HashMap<lpg::EntityId, Vec<TimestampedUpdate>>> {
        let mut map: HashMap<lpg::EntityId, Vec<TimestampedUpdate>> = HashMap::new();
        for u in self.diff(start, end)? {
            map.entry(u.op.entity()).or_default().push(u);
        }
        Ok(map)
    }

    /// The underlying commit log. Replication tails this directly with
    /// [`ChangeLog::iter_from`]; the log is append-only so concurrent
    /// readers see a consistent prefix.
    pub fn log(&self) -> &ChangeLog {
        &self.log
    }

    /// Footprint and ingest counters (Fig. 10).
    pub fn stats(&self) -> TimeStoreStats {
        let state = self.state.lock();
        TimeStoreStats {
            log_bytes: self.log.size_bytes(),
            index_bytes: self.index_store.size_bytes(),
            snapshot_bytes: state.snapshot_bytes,
            snapshot_count: state.snapshot_count,
            updates: state.updates,
            commits: state.commits,
        }
    }

    /// Flushes indexes and log to disk.
    pub fn sync(&self) -> Result<()> {
        // Capture the end *before* the fsync: a frame appended while the
        // fsync is in flight is not covered by it and must not be marked
        // durable.
        let end = self.log.end_offset();
        self.log.sync()?;
        // Everything below `end` is now on disk; publish that to
        // in-process readers (replication ships only the durable prefix).
        // fetch_max keeps concurrent syncs from regressing the marker.
        self.durable_log_end.fetch_max(end, Ordering::AcqRel);
        // Record how far the log is now provably durable (log fsync above,
        // marker made durable by the index fsync below — the marker can
        // trail the log but never lead it).
        self.index_store.set_root(SLOT_DURABLE_LOG_END, end);
        self.index_store.sync()?;
        Ok(())
    }

    /// How many log bytes the last successful [`TimeStore::sync`]
    /// provably fsynced. Log bytes past this point could still be lost
    /// in a crash, so replication must not ship them: a replica that
    /// durably applied (and acked) a commit the primary then forgot
    /// would silently diverge when recovery reuses the lost timestamps.
    pub fn durable_log_end(&self) -> u64 {
        self.durable_log_end.load(Ordering::Acquire)
    }
}

fn storage_err(e: std::io::Error) -> GraphError {
    GraphError::Storage(e.to_string())
}

fn decode_u64(v: &[u8]) -> Result<u64> {
    v.try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| GraphError::Storage("bad index value".into()))
}

fn decode_ts(k: &[u8]) -> Result<Timestamp> {
    keys::decode_ts_key(k).ok_or_else(|| GraphError::Storage("bad index key".into()))
}
