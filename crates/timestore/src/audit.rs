//! Deep consistency audit of a [`TimeStore`] (the TimeStore half of
//! `aion-fsck`).
//!
//! Structural pass (always):
//!
//! * both index B+Trees pass [`btree::BTree::verify`];
//! * page accounting: every allocated index page is either reachable from
//!   a tree root or on the free list, and never both.
//!
//! Deep pass (`deep = true`) additionally checks the log/index/snapshot
//! agreement the recovery path relies on:
//!
//! * every time-index entry decodes, is monotone in both timestamp and log
//!   offset, and points at a log frame carrying exactly that timestamp;
//! * every log frame is indexed (no orphaned commits);
//! * every snapshot-index entry names an existing, decodable snapshot file
//!   whose contents equal an independent log replay at that timestamp;
//! * a full log replay reproduces the live in-memory graph.

use crate::store::TimeStore;
use encoding::{keys, snapshot};
use lpg::{Graph, Result};

/// One audit finding: a named invariant plus what was observed.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Short machine-matchable invariant name, e.g. `"time-index/order"`.
    pub check: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

pub(crate) fn storage_err(e: std::io::Error) -> lpg::GraphError {
    lpg::GraphError::Storage(e.to_string())
}

impl TimeStore {
    /// Runs the audit; see the module docs for the invariant list. Returns
    /// every violation found (empty = consistent). IO errors abort the
    /// audit; corruption is reported, never panicked on.
    pub fn audit(&self, deep: bool) -> Result<Vec<AuditFinding>> {
        let mut findings = Vec::new();

        // Structural pass: both index trees, then page accounting.
        let mut reachable = std::collections::BTreeSet::new();
        reachable.insert(0); // meta page
        for (name, tree) in [
            ("time-index", &self.time_index),
            ("snapshot-index", &self.snap_index),
        ] {
            let report = tree.verify().map_err(storage_err)?;
            for v in &report.violations {
                findings.push(AuditFinding {
                    check: match name {
                        "time-index" => "time-index/structure",
                        _ => "snapshot-index/structure",
                    },
                    detail: format!("{v}"),
                });
            }
            reachable.extend(report.reachable.iter().copied());
        }
        for problem in self
            .index_store
            .reconcile_free_list(&reachable)
            .map_err(storage_err)?
        {
            findings.push(AuditFinding {
                check: "index-pages/accounting",
                detail: problem,
            });
        }
        if !deep {
            return Ok(findings);
        }

        // Deep pass: time index ↔ log agreement.
        let mut indexed_offsets = std::collections::BTreeSet::new();
        let mut prev: Option<(u64, u64)> = None; // (ts, offset)
        for item in self.time_index.scan(&[], &[]).map_err(storage_err)? {
            let (key, value) = item.map_err(storage_err)?;
            let Some(ts) = keys::decode_ts_key(&key) else {
                findings.push(AuditFinding {
                    check: "time-index/key",
                    detail: format!("undecodable {}-byte key {key:?}", key.len()),
                });
                continue;
            };
            let Ok(bytes) = <[u8; 8]>::try_from(value.as_slice()) else {
                findings.push(AuditFinding {
                    check: "time-index/value",
                    detail: format!("entry at ts {ts} holds a {}-byte offset", value.len()),
                });
                continue;
            };
            let offset = u64::from_le_bytes(bytes);
            if let Some((pts, poff)) = prev {
                if ts <= pts {
                    findings.push(AuditFinding {
                        check: "time-index/order",
                        detail: format!("timestamp {ts} not above predecessor {pts}"),
                    });
                }
                if offset <= poff {
                    findings.push(AuditFinding {
                        check: "time-index/order",
                        detail: format!(
                            "offset {offset} at ts {ts} not above predecessor offset {poff}"
                        ),
                    });
                }
            }
            prev = Some((ts, offset));
            indexed_offsets.insert(offset);
            match self.log.read_at(offset) {
                Ok((frame, _)) => {
                    if frame.ts != ts {
                        findings.push(AuditFinding {
                            check: "time-index/envelope",
                            detail: format!(
                                "index says ts {ts} at offset {offset}, frame carries ts {}",
                                frame.ts
                            ),
                        });
                    }
                }
                Err(e) => findings.push(AuditFinding {
                    check: "time-index/envelope",
                    detail: format!("offset {offset} (ts {ts}) is unreadable: {e}"),
                }),
            }
        }

        // Every log frame must be indexed, and the replay of the whole log
        // must reproduce the live graph; snapshots are compared against the
        // running replay as it passes their timestamps.
        let mut snaps: Vec<(u64, String)> = Vec::new();
        for item in self.snap_index.scan(&[], &[]).map_err(storage_err)? {
            let (key, value) = item.map_err(storage_err)?;
            let Some(ts) = keys::decode_ts_key(&key) else {
                findings.push(AuditFinding {
                    check: "snapshot-index/key",
                    detail: format!("undecodable {}-byte key {key:?}", key.len()),
                });
                continue;
            };
            snaps.push((ts, String::from_utf8_lossy(&value).into_owned()));
        }
        let mut snap_iter = snaps.iter().peekable();
        let mut replay = Graph::new();
        let mut replay_ok = true;
        for entry in self.log.iter_from(0) {
            let crate::log::LogEntry { offset, frame, .. } = entry?;
            if !indexed_offsets.contains(&offset) {
                findings.push(AuditFinding {
                    check: "time-index/coverage",
                    detail: format!(
                        "log frame at offset {offset} (ts {}) is unindexed",
                        frame.ts
                    ),
                });
            }
            for u in frame.to_updates() {
                if let Err(e) = replay.apply(&u.op) {
                    findings.push(AuditFinding {
                        check: "log/replay",
                        detail: format!("update at ts {} does not apply: {e}", u.ts),
                    });
                    replay_ok = false;
                }
            }
            while let Some((sts, name)) = snap_iter.peek() {
                if *sts > frame.ts {
                    break;
                }
                self.audit_snapshot(*sts, name, replay_ok.then_some(&replay), &mut findings);
                snap_iter.next();
            }
        }
        for (sts, name) in snap_iter {
            findings.push(AuditFinding {
                check: "snapshot-index/envelope",
                detail: format!("snapshot {name} at ts {sts} is beyond the last log frame"),
            });
        }
        if replay_ok && !replay.same_as(&self.latest_graph()) {
            findings.push(AuditFinding {
                check: "log/replay",
                detail: "full log replay does not reproduce the live graph".into(),
            });
        }
        if let Err(e) = self.latest_graph().check_consistency() {
            findings.push(AuditFinding {
                check: "graph/consistency",
                detail: format!("live graph fails self-check: {e}"),
            });
        }
        Ok(findings)
    }

    /// Checks one snapshot file: readable, decodable, internally consistent
    /// and (when the log replay is trustworthy) equal to the replayed state
    /// at its timestamp.
    fn audit_snapshot(
        &self,
        ts: u64,
        name: &str,
        replay: Option<&Graph>,
        findings: &mut Vec<AuditFinding>,
    ) {
        let path = self.snap_dir.join(name);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) => {
                findings.push(AuditFinding {
                    check: "snapshot/file",
                    detail: format!("snapshot {name} at ts {ts} unreadable: {e}"),
                });
                return;
            }
        };
        let Some(graph) = crate::store::snapshot_payload(&bytes).and_then(snapshot::decode_graph)
        else {
            findings.push(AuditFinding {
                check: "snapshot/decode",
                detail: format!("snapshot {name} at ts {ts} does not decode"),
            });
            return;
        };
        if let Err(e) = graph.check_consistency() {
            findings.push(AuditFinding {
                check: "snapshot/consistency",
                detail: format!("snapshot {name} at ts {ts} fails self-check: {e}"),
            });
        }
        if let Some(expected) = replay {
            if !graph.same_as(expected) {
                findings.push(AuditFinding {
                    check: "snapshot/replay",
                    detail: format!(
                        "snapshot {name} at ts {ts} diverges from the log replay at that point"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TimeStoreConfig;
    use lpg::{NodeId, Update};
    use tempfile::tempdir;

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: NodeId::new(i),
            labels: vec![],
            props: vec![],
        }
    }

    #[test]
    fn fresh_store_audits_clean() {
        let dir = tempdir().unwrap();
        let ts = TimeStore::open(dir.path(), TimeStoreConfig::default()).unwrap();
        for i in 1..200u64 {
            ts.append_commit(i, &[add_node(i)]).unwrap();
        }
        ts.write_snapshot(199).unwrap();
        ts.sync().unwrap();
        let findings = ts.audit(true).unwrap();
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn missing_snapshot_file_detected() {
        let dir = tempdir().unwrap();
        let ts = TimeStore::open(dir.path(), TimeStoreConfig::default()).unwrap();
        for i in 1..50u64 {
            ts.append_commit(i, &[add_node(i)]).unwrap();
        }
        ts.write_snapshot(49).unwrap();
        ts.sync().unwrap();
        let vfs = vfs::VfsRef::std();
        let snapdir = dir.path().join("snapshots");
        for (name, _) in vfs.read_dir(&snapdir).unwrap() {
            vfs.remove_file(&snapdir.join(name)).unwrap();
        }
        let findings = ts.audit(true).unwrap();
        assert!(findings.iter().any(|f| f.check == "snapshot/file"));
    }
}
