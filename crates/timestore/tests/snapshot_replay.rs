//! Property test: point-in-time reconstruction must agree with a
//! from-scratch replay of the change log, for histories whose queries
//! cross snapshot boundaries, both before and after a reopen.
//!
//! `snapshot_at` answers from the nearest on-disk snapshot plus a log
//! suffix; `diff` reads raw log frames. The two paths share no state
//! beyond the files, so folding every `diff(t, t+1)` into a graph from
//! scratch is an independent oracle for `snapshot_at(t)`.

use lpg::{Graph, StrId};
use proptest::prelude::*;
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStore, TimeStoreConfig};
use workload::{commit_script, SimOpsConfig};

fn config(policy: SnapshotPolicy) -> TimeStoreConfig {
    TimeStoreConfig {
        cache_pages: 32,
        policy,
        graphstore_bytes: 1 << 20,
        ..Default::default()
    }
}

/// Replays the log from ts 1 and checks `snapshot_at` at every commit
/// point and in the gap after it.
fn assert_matches_replay(store: &TimeStore, end: u64) {
    let mut replay = Graph::new();
    for t in 1..=end {
        for u in store.diff(t, t + 1).unwrap() {
            replay.apply(&u.op).unwrap();
        }
        let got = store.snapshot_at(t).unwrap();
        assert!(got.same_as(&replay), "mismatch at ts {t}");
    }
    // Past-the-end queries answer from the final state.
    let after = store.snapshot_at(end + 3).unwrap();
    assert!(after.same_as(&replay), "mismatch past the last commit");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_at_equals_log_replay(
        seed in any::<u64>(),
        commits in 4usize..28,
        policy in prop_oneof![
            Just(SnapshotPolicy::Never),
            Just(SnapshotPolicy::EveryNOps(2)),
            Just(SnapshotPolicy::EveryNOps(9)),
            Just(SnapshotPolicy::EveryInterval(5)),
        ],
    ) {
        let script = commit_script(
            seed,
            &SimOpsConfig {
                commits,
                ops_per_commit: 5,
                app_start: StrId::new(0),
                app_end: StrId::new(1),
                key: StrId::new(2),
                label: StrId::new(3),
            },
        );
        let dir = tempdir().unwrap();
        let store = TimeStore::open(dir.path(), config(policy)).unwrap();
        for (i, batch) in script.iter().enumerate() {
            store.append_commit((i + 1) as u64, batch).unwrap();
        }
        store.sync().unwrap();
        let end = script.len() as u64;
        // The aggressive policy must actually produce snapshots, or this
        // test never crosses a snapshot boundary.
        if matches!(policy, SnapshotPolicy::EveryNOps(2)) {
            prop_assert!(store.stats().snapshot_count >= 1);
        }
        assert_matches_replay(&store, end);
        // Recovery path: reopen from the files and re-check, so the
        // snapshot index rebuilt at open agrees with the log too.
        drop(store);
        let store = TimeStore::open(dir.path(), config(policy)).unwrap();
        prop_assert_eq!(store.latest_ts(), end);
        assert_matches_replay(&store, end);
    }
}
