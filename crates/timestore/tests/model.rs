//! Property test: TimeStore reconstruction must equal naive update replay
//! for arbitrary valid commit histories, under every snapshot policy.

use lpg::{Graph, NodeId, PropertyValue, RelId, StrId, Update};
use proptest::prelude::*;
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStore, TimeStoreConfig};

/// Random-but-valid commit histories over a small id space; each commit
/// carries 1–3 updates.
fn history_strategy() -> impl Strategy<Value = Vec<Vec<Update>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..5, 0u64..5, any::<i64>(), 0u8..6), 1..4),
        1..40,
    )
    .prop_map(|commits| {
        let mut live_nodes: Vec<u64> = Vec::new();
        let mut live_rels: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_rel = 0u64;
        let mut out = Vec::new();
        for commit in commits {
            let mut batch = Vec::new();
            for (a, b, val, kind) in commit {
                match kind {
                    0 if !live_nodes.contains(&a) => {
                        live_nodes.push(a);
                        batch.push(Update::AddNode {
                            id: NodeId::new(a),
                            labels: vec![StrId::new((a % 3) as u32)],
                            props: vec![],
                        });
                    }
                    1 if live_nodes.contains(&a) && live_nodes.contains(&b) => {
                        let rid = next_rel;
                        next_rel += 1;
                        live_rels.push((rid, a, b));
                        batch.push(Update::AddRel {
                            id: RelId::new(rid),
                            src: NodeId::new(a),
                            tgt: NodeId::new(b),
                            label: None,
                            props: vec![],
                        });
                    }
                    2 if !live_rels.is_empty() => {
                        let i = (a as usize) % live_rels.len();
                        let (rid, _, _) = live_rels.remove(i);
                        batch.push(Update::DeleteRel {
                            id: RelId::new(rid),
                        });
                    }
                    3 if live_nodes.contains(&a) => {
                        batch.push(Update::SetNodeProp {
                            id: NodeId::new(a),
                            key: StrId::new((b % 4) as u32),
                            value: PropertyValue::Int(val),
                        });
                    }
                    4 if live_nodes.contains(&a)
                        && !live_rels.iter().any(|(_, s, t)| *s == a || *t == a) =>
                    {
                        live_nodes.retain(|n| *n != a);
                        batch.push(Update::DeleteNode { id: NodeId::new(a) });
                    }
                    5 if !live_rels.is_empty() => {
                        let (rid, _, _) = live_rels[(a as usize) % live_rels.len()];
                        batch.push(Update::SetRelProp {
                            id: RelId::new(rid),
                            key: StrId::new((b % 4) as u32),
                            value: PropertyValue::Int(val),
                        });
                    }
                    _ => {}
                }
            }
            if !batch.is_empty() {
                out.push(batch);
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reconstruction_equals_naive_replay(
        commits in history_strategy(),
        policy in prop_oneof![
            Just(SnapshotPolicy::Never),
            Just(SnapshotPolicy::EveryNOps(3)),
            Just(SnapshotPolicy::EveryNOps(11)),
            Just(SnapshotPolicy::EveryInterval(5)),
        ],
    ) {
        let dir = tempdir().unwrap();
        let store = TimeStore::open(
            dir.path(),
            TimeStoreConfig {
                cache_pages: 64,
                policy,
                graphstore_bytes: 1 << 20,
                ..Default::default()
            },
        )
        .unwrap();
        // Ingest with gaps between timestamps (ts = 2·i + 1).
        let mut oracle = Graph::new();
        let mut states: Vec<(u64, Graph)> = vec![(0, oracle.clone())];
        for (i, batch) in commits.iter().enumerate() {
            let ts = (i as u64) * 2 + 1;
            store.append_commit(ts, batch).unwrap();
            oracle.apply_all(batch.iter()).unwrap();
            states.push((ts, oracle.clone()));
        }
        // Reconstruction agrees at every commit point and in the gaps
        // between commits (commit timestamps are odd, gaps are even).
        for (ts, want) in &states {
            let got = store.snapshot_at(*ts).unwrap();
            prop_assert!(got.same_as(want), "mismatch at ts {}", ts);
            if *ts > 0 {
                let between = store.snapshot_at(ts + 1).unwrap();
                prop_assert!(between.same_as(want), "mismatch at ts {}", ts + 1);
            }
        }
        // Diffs replayed over any base state reproduce any later state.
        if states.len() >= 3 {
            let (mid_ts, mid) = states[states.len() / 2].clone();
            let (end_ts, end) = states.last().cloned().unwrap();
            let mut replay = mid;
            for u in store.diff(mid_ts + 1, end_ts + 1).unwrap() {
                replay.apply(&u.op).unwrap();
            }
            prop_assert!(replay.same_as(&end));
        }
        // The temporal graph's point-in-time views agree too.
        if let Some((end_ts, _)) = states.last() {
            let tg = store.temporal_graph(0, end_ts + 1).unwrap();
            for (ts, want) in states.iter().take(5) {
                prop_assert!(tg.graph_at(*ts).same_as(want), "tg mismatch at {}", ts);
            }
        }
    }
}
