//! End-to-end TimeStore tests: ingest → reconstruct → diff → window →
//! temporal graph → recovery, all checked against the naive-replay oracle.

use lpg::{
    Graph, Interval, NodeId, PropertyValue, RelId, StrId, TemporalGraph, TimestampedUpdate, Update,
};
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStore, TimeStoreConfig};

fn add_node(i: u64) -> Update {
    Update::AddNode {
        id: NodeId::new(i),
        labels: vec![StrId::new((i % 4) as u32)],
        props: vec![(StrId::new(0), PropertyValue::Int(i as i64))],
    }
}

fn add_rel(id: u64, src: u64, tgt: u64) -> Update {
    Update::AddRel {
        id: RelId::new(id),
        src: NodeId::new(src),
        tgt: NodeId::new(tgt),
        label: Some(StrId::new(9)),
        props: vec![(StrId::new(1), PropertyValue::Float(id as f64))],
    }
}

/// A deterministic update history: nodes, rels, property churn, deletions.
fn history() -> Vec<(u64, Vec<Update>)> {
    let mut commits = Vec::new();
    let mut ts = 0u64;
    for i in 0..30 {
        ts += 1;
        commits.push((ts, vec![add_node(i)]));
    }
    for i in 0..60 {
        ts += 1;
        commits.push((ts, vec![add_rel(i, i % 30, (i * 7 + 1) % 30)]));
    }
    for i in 0..20 {
        ts += 1;
        commits.push((
            ts,
            vec![Update::SetNodeProp {
                id: NodeId::new(i % 30),
                key: StrId::new(2),
                value: PropertyValue::Int(i as i64 * 10),
            }],
        ));
    }
    for i in 0..10 {
        ts += 1;
        commits.push((ts, vec![Update::DeleteRel { id: RelId::new(i) }]));
    }
    commits
}

fn config(policy: SnapshotPolicy) -> TimeStoreConfig {
    TimeStoreConfig {
        cache_pages: 64,
        policy,
        graphstore_bytes: 4 << 20,
        ..Default::default()
    }
}

fn oracle_at(commits: &[(u64, Vec<Update>)], ts: u64) -> Graph {
    let mut g = Graph::new();
    for (cts, ops) in commits {
        if *cts > ts {
            break;
        }
        g.apply_all(ops.iter()).unwrap();
    }
    g
}

#[test]
fn reconstruction_matches_oracle_at_every_commit() {
    let dir = tempdir().unwrap();
    let ts_store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(25))).unwrap();
    let commits = history();
    for (ts, ops) in &commits {
        ts_store.append_commit(*ts, ops).unwrap();
    }
    for probe in [1u64, 5, 30, 31, 45, 90, 100, 111, 120, 200] {
        let got = ts_store.snapshot_at(probe).unwrap();
        let want = oracle_at(&commits, probe);
        assert!(got.same_as(&want), "mismatch at ts {probe}");
    }
}

#[test]
fn snapshots_accelerate_but_do_not_change_results() {
    let commits = history();
    let mut graphs = Vec::new();
    for policy in [SnapshotPolicy::Never, SnapshotPolicy::EveryNOps(10)] {
        let dir = tempdir().unwrap();
        let store = TimeStore::open(dir.path(), config(policy)).unwrap();
        for (ts, ops) in &commits {
            store.append_commit(*ts, ops).unwrap();
        }
        graphs.push((*store.snapshot_at(77).unwrap()).clone());
    }
    assert!(graphs[0].same_as(&graphs[1]));
}

#[test]
fn diff_returns_exactly_the_window() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::Never)).unwrap();
    for (ts, ops) in history() {
        store.append_commit(ts, &ops).unwrap();
    }
    let diff = store.diff(31, 41).unwrap();
    assert_eq!(diff.len(), 10, "ten rel-insert commits in [31,41)");
    assert!(diff.iter().all(|u| (31..41).contains(&u.ts)));
    assert!(diff.iter().all(|u| matches!(u.op, Update::AddRel { .. })));
    assert!(store.diff(10, 10).unwrap().is_empty());
    assert!(store.diff(1_000, 2_000).unwrap().is_empty());
}

#[test]
fn monotonic_commit_enforced() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::Never)).unwrap();
    store.append_commit(5, &[add_node(1)]).unwrap();
    let err = store.append_commit(5, &[add_node(2)]).unwrap_err();
    assert!(matches!(err, lpg::GraphError::NonMonotonicCommit { .. }));
    store.append_commit(6, &[add_node(2)]).unwrap();
}

#[test]
fn graphs_sequence_with_step() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(40))).unwrap();
    let commits = history();
    for (ts, ops) in &commits {
        store.append_commit(*ts, ops).unwrap();
    }
    let series = store.graphs(10, 110, 25).unwrap();
    assert_eq!(series.len(), 4); // 10, 35, 60, 85
    for (ts, g) in &series {
        let want = oracle_at(&commits, *ts);
        assert!(g.same_as(&want), "series mismatch at {ts}");
    }
    assert!(store.graphs(10, 10, 5).is_err());
    assert!(store.graphs(10, 20, 0).is_err());
}

#[test]
fn temporal_graph_matches_naive_replay() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(33))).unwrap();
    let commits = history();
    for (ts, ops) in &commits {
        store.append_commit(*ts, ops).unwrap();
    }
    let (lo, hi) = (20u64, 100u64);
    let got = store.temporal_graph(lo, hi).unwrap();
    // Oracle: build from scratch.
    let base = oracle_at(&commits, lo);
    let updates: Vec<TimestampedUpdate> = commits
        .iter()
        .filter(|(ts, _)| *ts > lo && *ts < hi)
        .flat_map(|(ts, ops)| {
            ops.iter()
                .map(move |o| TimestampedUpdate::new(*ts, o.clone()))
        })
        .collect();
    let want = TemporalGraph::build(&base, Interval::new(lo, hi), &updates);
    assert_eq!(got.version_count(), want.version_count());
    for probe in [20u64, 50, 80, 99] {
        assert!(got.graph_at(probe).same_as(&want.graph_at(probe)));
    }
}

#[test]
fn window_unions_entities_and_prunes_dangling() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::Never)).unwrap();
    // ts1-2: two nodes; ts3: rel; ts4: delete rel; ts5: third node.
    store.append_commit(1, &[add_node(0)]).unwrap();
    store.append_commit(2, &[add_node(1)]).unwrap();
    store.append_commit(3, &[add_rel(0, 0, 1)]).unwrap();
    store
        .append_commit(4, &[Update::DeleteRel { id: RelId::new(0) }])
        .unwrap();
    store.append_commit(5, &[add_node(2)]).unwrap();
    // Window [3,5): rel 0 was valid at 3, node 2 not yet present.
    let w = store.window(3, 5).unwrap();
    assert_eq!(w.node_count(), 2);
    assert_eq!(w.rel_count(), 1, "rel valid at window start is included");
    assert!(!w.has_node(NodeId::new(2)));
    // Window [4,6): rel deleted before, node 2 present.
    let w = store.window(4, 6).unwrap();
    assert_eq!(w.rel_count(), 0);
    assert!(w.has_node(NodeId::new(2)));
}

#[test]
fn recovery_after_reopen_preserves_everything() {
    let dir = tempdir().unwrap();
    let commits = history();
    {
        let store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(30))).unwrap();
        for (ts, ops) in &commits {
            store.append_commit(*ts, ops).unwrap();
        }
        store.sync().unwrap();
    }
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(30))).unwrap();
    assert_eq!(store.latest_ts(), commits.last().unwrap().0);
    let want = oracle_at(&commits, u64::MAX);
    assert!(store.latest_graph().same_as(&want));
    // Historical reads still work.
    let got = store.snapshot_at(60).unwrap();
    assert!(got.same_as(&oracle_at(&commits, 60)));
    // Ingestion continues.
    store.append_commit(1_000, &[add_node(999)]).unwrap();
    assert_eq!(store.latest_graph().node_count(), want.node_count() + 1);
}

#[test]
fn recovery_reindexes_unflushed_index_tail() {
    let dir = tempdir().unwrap();
    let commits = history();
    {
        let store = TimeStore::open(dir.path(), config(SnapshotPolicy::Never)).unwrap();
        for (ts, ops) in &commits {
            store.append_commit(*ts, ops).unwrap();
        }
        // Only the log is synced; the index pages may be lost.
        store.sync().unwrap();
    }
    // Simulate losing the index entirely (worst case).
    vfs::VfsRef::std()
        .remove_file(&dir.path().join("timestore.idx"))
        .unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::Never)).unwrap();
    assert_eq!(store.latest_ts(), commits.last().unwrap().0);
    let got = store.snapshot_at(45).unwrap();
    assert!(got.same_as(&oracle_at(&commits, 45)));
}

#[test]
fn stats_track_footprint() {
    let dir = tempdir().unwrap();
    let store = TimeStore::open(dir.path(), config(SnapshotPolicy::EveryNOps(50))).unwrap();
    for (ts, ops) in history() {
        store.append_commit(ts, &ops).unwrap();
    }
    let stats = store.stats();
    assert!(stats.log_bytes > 0);
    assert!(stats.index_bytes > 0);
    assert!(stats.snapshot_count >= 2);
    assert!(stats.snapshot_bytes > 0);
    assert_eq!(stats.commits, 120);
    assert_eq!(stats.updates, 120);
}
