//! Property tests: every encodable record body round-trips bit-exactly, and
//! decoding consumes exactly the bytes encoding produced (so records can be
//! streamed back-to-back in the TimeStore log).

use encoding::{LogRecord, RecordBody};
use lpg::{EntityDelta, NodeId, PropChange, PropertyValue, RelId, StrId};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = PropertyValue> {
    prop_oneof![
        any::<i64>().prop_map(PropertyValue::Int),
        // NaN breaks PartialEq-based roundtrip checks; use finite floats.
        (-1e12f64..1e12).prop_map(PropertyValue::Float),
        any::<bool>().prop_map(PropertyValue::Bool),
        (0u32..1 << 29).prop_map(|s| PropertyValue::Str(StrId::new(s))),
        proptest::collection::vec(any::<i64>(), 0..8).prop_map(PropertyValue::IntArray),
        proptest::collection::vec(-1e9f64..1e9, 0..8).prop_map(PropertyValue::FloatArray),
    ]
}

fn sid_strategy() -> impl Strategy<Value = StrId> {
    (0u32..1 << 29).prop_map(StrId::new)
}

fn props_strategy() -> impl Strategy<Value = Vec<(StrId, PropertyValue)>> {
    proptest::collection::vec((sid_strategy(), value_strategy()), 0..6)
}

fn delta_strategy() -> impl Strategy<Value = EntityDelta> {
    (
        proptest::collection::vec((0u32..1 << 30).prop_map(StrId::new), 0..4),
        proptest::collection::vec((0u32..1 << 30).prop_map(StrId::new), 0..4),
        proptest::collection::vec(
            prop_oneof![
                (sid_strategy(), value_strategy()).prop_map(|(k, v)| PropChange::Set(k, v)),
                sid_strategy().prop_map(PropChange::Remove),
            ],
            0..6,
        ),
    )
        .prop_map(|(labels_added, labels_removed, props)| EntityDelta {
            labels_added,
            labels_removed,
            props,
        })
}

fn body_strategy() -> impl Strategy<Value = RecordBody> {
    prop_oneof![
        (
            proptest::collection::vec(sid_strategy(), 0..4),
            props_strategy()
        )
            .prop_map(|(labels, props)| RecordBody::NodeFull { labels, props }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(sid_strategy()),
            props_strategy()
        )
            .prop_map(|(s, t, label, props)| RecordBody::RelFull {
                src: NodeId::new(s),
                tgt: NodeId::new(t),
                label,
                props,
            }),
        delta_strategy().prop_map(RecordBody::NodeDelta),
        delta_strategy().prop_map(RecordBody::RelDelta),
        Just(RecordBody::NodeDeleted),
        Just(RecordBody::RelDeleted),
        (any::<u64>(), any::<bool>()).prop_map(|(r, d)| RecordBody::Neighbour {
            rel: RelId::new(r),
            deleted: d,
        }),
    ]
}

/// Values at LEB128 group boundaries (2^(7k) ± 1) where an off-by-one in
/// the continuation-bit logic would corrupt the stream, mixed with
/// arbitrary values.
fn varint_boundary_strategy() -> impl Strategy<Value = u64> {
    let mut arms = vec![Just(0u64).boxed(), Just(u64::MAX).boxed()];
    for k in 1..=9u32 {
        let edge = 1u64 << (7 * k);
        arms.push(Just(edge - 1).boxed());
        arms.push(Just(edge).boxed());
        arms.push(Just(edge + 1).boxed());
    }
    arms.push(any::<u64>().boxed());
    proptest::strategy::Union::new(arms)
}

proptest! {
    #[test]
    fn varint_u64_boundaries_roundtrip(v in varint_boundary_strategy()) {
        let mut buf = Vec::new();
        encoding::varint::write_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(encoding::varint::read_u64(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
        // Width follows the 7-bit group count.
        let want = (64 - v.leading_zeros() as usize).div_ceil(7).max(1);
        prop_assert_eq!(buf.len(), want);
    }

    #[test]
    fn varint_i64_boundaries_roundtrip(v in varint_boundary_strategy(), flip in any::<bool>()) {
        // Map the unsigned boundary onto both sides of zero: zigzag must
        // keep |v| small encodings small and extremes lossless.
        let signed = if flip { (v as i64).wrapping_neg() } else { v as i64 };
        let mut buf = Vec::new();
        encoding::varint::write_i64(&mut buf, signed);
        let mut pos = 0;
        prop_assert_eq!(encoding::varint::read_i64(&buf, &mut pos), Some(signed));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_never_panics(v in varint_boundary_strategy(), cut in any::<u64>()) {
        let mut buf = Vec::new();
        encoding::varint::write_u64(&mut buf, v);
        let cut = (cut as usize) % buf.len();
        let mut pos = 0;
        // Either decodes a (possibly different) value from the prefix or
        // cleanly reports None — never panics or reads past the slice.
        let _ = encoding::varint::read_u64(&buf[..cut], &mut pos);
        prop_assert!(pos <= cut);
    }

    #[test]
    fn boundary_ids_roundtrip_through_records(ts in varint_boundary_strategy(),
                                              entity in varint_boundary_strategy(),
                                              raw in varint_boundary_strategy()) {
        let rec = LogRecord {
            ts,
            entity,
            body: RecordBody::NodeFull {
                labels: vec![],
                props: vec![(StrId::new(0), PropertyValue::Int(raw as i64))],
            },
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let mut pos = 0;
        prop_assert_eq!(LogRecord::decode(&buf, &mut pos), Some(rec));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn body_roundtrips(body in body_strategy()) {
        let bytes = body.to_bytes();
        prop_assert_eq!(RecordBody::from_bytes(&bytes), Some(body));
    }

    #[test]
    fn log_records_stream(records in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), body_strategy()), 0..20)) {
        let records: Vec<LogRecord> = records
            .into_iter()
            .map(|(ts, entity, body)| LogRecord { ts, entity, body })
            .collect();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        let mut got = Vec::new();
        while pos < buf.len() {
            got.push(LogRecord::decode(&buf, &mut pos).unwrap());
        }
        prop_assert_eq!(got, records);
        prop_assert_eq!(pos, buf.len());
    }
}
