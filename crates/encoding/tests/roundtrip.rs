//! Property tests: every encodable record body round-trips bit-exactly, and
//! decoding consumes exactly the bytes encoding produced (so records can be
//! streamed back-to-back in the TimeStore log).

use encoding::{LogRecord, RecordBody};
use lpg::{EntityDelta, NodeId, PropChange, PropertyValue, RelId, StrId};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = PropertyValue> {
    prop_oneof![
        any::<i64>().prop_map(PropertyValue::Int),
        // NaN breaks PartialEq-based roundtrip checks; use finite floats.
        (-1e12f64..1e12).prop_map(PropertyValue::Float),
        any::<bool>().prop_map(PropertyValue::Bool),
        (0u32..1 << 29).prop_map(|s| PropertyValue::Str(StrId::new(s))),
        proptest::collection::vec(any::<i64>(), 0..8).prop_map(PropertyValue::IntArray),
        proptest::collection::vec(-1e9f64..1e9, 0..8).prop_map(PropertyValue::FloatArray),
    ]
}

fn sid_strategy() -> impl Strategy<Value = StrId> {
    (0u32..1 << 29).prop_map(StrId::new)
}

fn props_strategy() -> impl Strategy<Value = Vec<(StrId, PropertyValue)>> {
    proptest::collection::vec((sid_strategy(), value_strategy()), 0..6)
}

fn delta_strategy() -> impl Strategy<Value = EntityDelta> {
    (
        proptest::collection::vec((0u32..1 << 30).prop_map(StrId::new), 0..4),
        proptest::collection::vec((0u32..1 << 30).prop_map(StrId::new), 0..4),
        proptest::collection::vec(
            prop_oneof![
                (sid_strategy(), value_strategy()).prop_map(|(k, v)| PropChange::Set(k, v)),
                sid_strategy().prop_map(PropChange::Remove),
            ],
            0..6,
        ),
    )
        .prop_map(|(labels_added, labels_removed, props)| EntityDelta {
            labels_added,
            labels_removed,
            props,
        })
}

fn body_strategy() -> impl Strategy<Value = RecordBody> {
    prop_oneof![
        (proptest::collection::vec(sid_strategy(), 0..4), props_strategy())
            .prop_map(|(labels, props)| RecordBody::NodeFull { labels, props }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(sid_strategy()),
            props_strategy()
        )
            .prop_map(|(s, t, label, props)| RecordBody::RelFull {
                src: NodeId::new(s),
                tgt: NodeId::new(t),
                label,
                props,
            }),
        delta_strategy().prop_map(RecordBody::NodeDelta),
        delta_strategy().prop_map(RecordBody::RelDelta),
        Just(RecordBody::NodeDeleted),
        Just(RecordBody::RelDeleted),
        (any::<u64>(), any::<bool>()).prop_map(|(r, d)| RecordBody::Neighbour {
            rel: RelId::new(r),
            deleted: d,
        }),
    ]
}

proptest! {
    #[test]
    fn body_roundtrips(body in body_strategy()) {
        let bytes = body.to_bytes();
        prop_assert_eq!(RecordBody::from_bytes(&bytes), Some(body));
    }

    #[test]
    fn log_records_stream(records in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), body_strategy()), 0..20)) {
        let records: Vec<LogRecord> = records
            .into_iter()
            .map(|(ts, entity, body)| LogRecord { ts, entity, body })
            .collect();
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        let mut got = Vec::new();
        while pos < buf.len() {
            got.push(LogRecord::decode(&buf, &mut pos).unwrap());
        }
        prop_assert_eq!(got, records);
        prop_assert_eq!(pos, buf.len());
    }
}
