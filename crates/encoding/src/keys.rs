//! Order-preserving composite B+Tree keys (Table 2).
//!
//! All components are encoded big-endian so the B+Tree's lexicographic byte
//! comparison equals the intended numeric ordering: first by entity id(s),
//! then by timestamp — which puts an entity's whole history "in the same or
//! adjacent B+Tree pages" (Sec. 4.4).
//!
//! | store        | entry           | key layout                |
//! |--------------|-----------------|---------------------------|
//! | TimeStore    | graph update    | `ts`                      |
//! | TimeStore    | graph snapshot  | `ts`                      |
//! | LineageStore | node            | `nodeId, ts`              |
//! | LineageStore | relationship    | `relId, ts`               |
//! | LineageStore | out-neighbours  | `srcId, tgtId, relId, ts` |
//! | LineageStore | in-neighbours   | `tgtId, srcId, relId, ts` |
//!
//! The neighbourhood keys extend Table 2 with the relationship id so that
//! multigraphs (several relationships between the same node pair — which
//! Raphtory cannot represent, Sec. 6.2) remain distinguishable.

use lpg::{NodeId, RelId, Timestamp};

/// An 8-byte timestamp key (TimeStore log / snapshot indexes).
pub fn ts_key(ts: Timestamp) -> [u8; 8] {
    ts.to_be_bytes()
}

/// Decodes a [`ts_key`].
pub fn decode_ts_key(key: &[u8]) -> Option<Timestamp> {
    Some(u64::from_be_bytes(key.get(..8)?.try_into().ok()?))
}

/// A `(entityId, ts)` key for the node / relationship history indexes.
pub fn entity_ts_key(id: u64, ts: Timestamp) -> [u8; 16] {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&id.to_be_bytes());
    k[8..].copy_from_slice(&ts.to_be_bytes());
    k
}

fn be_u64(key: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&key[off..off + 8]);
    u64::from_be_bytes(a)
}

/// Decodes an [`entity_ts_key`] into `(id, ts)`.
pub fn decode_entity_ts_key(key: &[u8]) -> Option<(u64, Timestamp)> {
    if key.len() != 16 {
        return None;
    }
    let id = be_u64(key, 0);
    let ts = be_u64(key, 8);
    Some((id, ts))
}

/// Node-history key.
pub fn node_key(id: NodeId, ts: Timestamp) -> [u8; 16] {
    entity_ts_key(id.raw(), ts)
}

/// Relationship-history key.
pub fn rel_key(id: RelId, ts: Timestamp) -> [u8; 16] {
    entity_ts_key(id.raw(), ts)
}

/// `[low, high)` bounds covering every version of one entity from `from_ts`.
pub fn entity_range(id: u64, from_ts: Timestamp) -> ([u8; 16], [u8; 16]) {
    (entity_ts_key(id, from_ts), entity_ts_key(id + 1, 0))
}

/// A `(a, b, relId, ts)` neighbourhood key — `a = src, b = tgt` for the
/// out-neighbours index and the reverse for in-neighbours.
pub fn neigh_key(a: NodeId, b: NodeId, rel: RelId, ts: Timestamp) -> [u8; 32] {
    let mut k = [0u8; 32];
    k[..8].copy_from_slice(&a.raw().to_be_bytes());
    k[8..16].copy_from_slice(&b.raw().to_be_bytes());
    k[16..24].copy_from_slice(&rel.raw().to_be_bytes());
    k[24..].copy_from_slice(&ts.to_be_bytes());
    k
}

/// Decodes a [`neigh_key`] into `(a, b, rel, ts)`.
pub fn decode_neigh_key(key: &[u8]) -> Option<(NodeId, NodeId, RelId, Timestamp)> {
    if key.len() != 32 {
        return None;
    }
    let a = be_u64(key, 0);
    let b = be_u64(key, 8);
    let r = be_u64(key, 16);
    let ts = be_u64(key, 24);
    Some((NodeId::new(a), NodeId::new(b), RelId::new(r), ts))
}

/// `[low, high)` bounds covering every neighbourhood entry anchored at `a`.
pub fn neigh_range(a: NodeId) -> ([u8; 32], [u8; 32]) {
    (
        neigh_key(a, NodeId::new(0), RelId::new(0), 0),
        neigh_key(NodeId::new(a.raw() + 1), NodeId::new(0), RelId::new(0), 0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_key_orders_numerically() {
        assert!(ts_key(1) < ts_key(2));
        assert!(ts_key(255) < ts_key(256));
        assert!(ts_key(u64::MAX - 1) < ts_key(u64::MAX));
        assert_eq!(decode_ts_key(&ts_key(42)), Some(42));
        assert_eq!(decode_ts_key(&[1, 2]), None);
    }

    #[test]
    fn entity_key_orders_by_id_then_ts() {
        let a = entity_ts_key(1, 999);
        let b = entity_ts_key(2, 0);
        assert!(a < b, "id dominates");
        let c = entity_ts_key(1, 5);
        let d = entity_ts_key(1, 6);
        assert!(c < d, "ts breaks ties");
        assert_eq!(decode_entity_ts_key(&a), Some((1, 999)));
    }

    #[test]
    fn entity_range_covers_exactly_one_entity() {
        let (lo, hi) = entity_range(7, 3);
        assert_eq!(lo, entity_ts_key(7, 3));
        assert!(entity_ts_key(7, u64::MAX) < hi);
        assert!(entity_ts_key(8, 0) >= hi);
        assert!(entity_ts_key(7, 2) < lo);
    }

    #[test]
    fn neigh_key_roundtrip_and_order() {
        let k1 = neigh_key(NodeId::new(1), NodeId::new(9), RelId::new(4), 10);
        let k2 = neigh_key(NodeId::new(1), NodeId::new(9), RelId::new(4), 11);
        let k3 = neigh_key(NodeId::new(1), NodeId::new(10), RelId::new(0), 0);
        let k4 = neigh_key(NodeId::new(2), NodeId::new(0), RelId::new(0), 0);
        assert!(k1 < k2 && k2 < k3 && k3 < k4);
        assert_eq!(
            decode_neigh_key(&k1),
            Some((NodeId::new(1), NodeId::new(9), RelId::new(4), 10))
        );
    }

    #[test]
    fn neigh_range_covers_anchor() {
        let (lo, hi) = neigh_range(NodeId::new(5));
        let inside = neigh_key(NodeId::new(5), NodeId::new(u64::MAX), RelId::new(3), 9);
        let outside = neigh_key(NodeId::new(6), NodeId::new(0), RelId::new(0), 0);
        assert!(lo <= inside && inside < hi);
        assert!(outside >= hi);
    }
}
