//! LEB128 varints and zigzag signed encoding.
//!
//! Timestamps, entity ids, lengths and integer property values are almost
//! always small, so variable-length encoding keeps the temporal records far
//! below Neo4j's fixed-size record cost (the point of Sec. 4.2).

/// Appends an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, advancing `pos`. Returns `None` on
/// truncated or oversized input.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-maps a signed value so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed varint (zigzag + LEB128).
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Reads a signed varint.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

/// Appends a fixed 8-byte little-endian float.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a fixed 8-byte little-endian float.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Option<f64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(bytes);
    *pos += 8;
    Some(f64::from_le_bytes(a))
}

/// Appends a fixed 4-byte little-endian u32 (string-store references).
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a fixed 4-byte little-endian u32.
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = buf.get(*pos..*pos + 4)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(bytes);
    *pos += 4;
    Some(u32::from_le_bytes(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_signs() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn small_values_stay_small() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -50);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        assert_eq!(read_f64(&[1, 2, 3], &mut 0), None);
        assert_eq!(read_u32(&[1], &mut 0), None);
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = vec![0x80u8; 10];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn f64_and_u32_roundtrip() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -2.5);
        write_u32(&mut buf, 0xDEAD);
        let mut pos = 0;
        assert_eq!(read_f64(&buf, &mut pos), Some(-2.5));
        assert_eq!(read_u32(&buf, &mut pos), Some(0xDEAD));
    }
}
