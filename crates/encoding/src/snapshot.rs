//! Whole-graph snapshot serialization for TimeStore's snapshot files
//! (Sec. 4.3: "snapshots are stored on disk, and references to the files are
//! maintained in a second B+Tree indexed by time").
//!
//! The format reuses the Fig. 3 record bodies: a small header, then every
//! node as `varint id + NodeFull`, then every relationship as
//! `varint id + RelFull`. Nodes precede relationships so decoding can replay
//! through the constraint-checking [`lpg::Graph`] applier.

use crate::record::RecordBody;
use crate::varint;
use lpg::{Graph, NodeId, RelId, Update};

const MAGIC: u32 = 0x4149_5053; // "AIPS"
const VERSION: u8 = 1;

/// Serializes a graph snapshot.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + graph.node_count() * 16 + graph.rel_count() * 24);
    varint::write_u32(&mut out, MAGIC);
    out.push(VERSION);
    varint::write_u64(&mut out, graph.node_count() as u64);
    // Deterministic order aids testing and delta-friendly file diffs.
    let mut nodes: Vec<_> = graph.nodes().collect();
    nodes.sort_unstable_by_key(|n| n.id);
    for n in nodes {
        varint::write_u64(&mut out, n.id.raw());
        RecordBody::NodeFull {
            labels: n.labels.clone(),
            props: n.props.clone(),
        }
        .encode(&mut out);
    }
    varint::write_u64(&mut out, graph.rel_count() as u64);
    let mut rels: Vec<_> = graph.rels().collect();
    rels.sort_unstable_by_key(|r| r.id);
    for r in rels {
        varint::write_u64(&mut out, r.id.raw());
        RecordBody::RelFull {
            src: r.src,
            tgt: r.tgt,
            label: r.label,
            props: r.props.clone(),
        }
        .encode(&mut out);
    }
    out
}

/// Deserializes a snapshot, validating structure and graph constraints.
pub fn decode_graph(buf: &[u8]) -> Option<Graph> {
    let mut pos = 0;
    if varint::read_u32(buf, &mut pos)? != MAGIC {
        return None;
    }
    if *buf.get(pos)? != VERSION {
        return None;
    }
    pos += 1;
    let mut graph = Graph::new();
    let nnodes = varint::read_u64(buf, &mut pos)? as usize;
    for _ in 0..nnodes {
        let id = NodeId::new(varint::read_u64(buf, &mut pos)?);
        match RecordBody::decode(buf, &mut pos)? {
            RecordBody::NodeFull { labels, props } => {
                graph.apply(&Update::AddNode { id, labels, props }).ok()?;
            }
            _ => return None,
        }
    }
    let nrels = varint::read_u64(buf, &mut pos)? as usize;
    for _ in 0..nrels {
        let id = RelId::new(varint::read_u64(buf, &mut pos)?);
        match RecordBody::decode(buf, &mut pos)? {
            RecordBody::RelFull {
                src,
                tgt,
                label,
                props,
            } => {
                graph
                    .apply(&Update::AddRel {
                        id,
                        src,
                        tgt,
                        label,
                        props,
                    })
                    .ok()?;
            }
            _ => return None,
        }
    }
    (pos == buf.len()).then_some(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{PropertyValue, StrId};

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..20u64 {
            g.apply(&Update::AddNode {
                id: NodeId::new(i),
                labels: vec![StrId::new((i % 3) as u32)],
                props: vec![(StrId::new(9), PropertyValue::Int(i as i64))],
            })
            .unwrap();
        }
        for i in 0..40u64 {
            g.apply(&Update::AddRel {
                id: RelId::new(i),
                src: NodeId::new(i % 20),
                tgt: NodeId::new((i * 7) % 20),
                label: Some(StrId::new(5)),
                props: vec![(StrId::new(1), PropertyValue::Float(i as f64 / 2.0))],
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn graph_roundtrip() {
        let g = sample_graph();
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).expect("decodes");
        assert!(g.same_as(&g2));
        g2.check_consistency().unwrap();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::new();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.rel_count(), 0);
    }

    #[test]
    fn corruption_detected() {
        let g = sample_graph();
        let mut bytes = encode_graph(&g);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode_graph(&bad).is_none());
        // Truncated.
        bytes.truncate(bytes.len() - 3);
        assert!(decode_graph(&bytes).is_none());
        // Trailing garbage.
        let mut padded = encode_graph(&g);
        padded.push(7);
        assert!(decode_graph(&padded).is_none());
    }
}
