//! Entity record encoding (Fig. 3).
//!
//! Every record starts with a one-byte header:
//!
//! ```text
//! bit 0-1  entity type: 0 = node, 1 = relationship, 2 = neighbourhood
//! bit 2    deleted
//! bit 3    delta (diff from the previous version)
//! ```
//!
//! Bodies:
//!
//! * **node, full**: `varint nlabels, nlabels × u32 label-ref,
//!   varint nprops, nprops × prop`
//! * **relationship, full**: `varint src, varint tgt, u32 label-ref
//!   (MSB set = no label), varint nprops, nprops × prop`
//! * **delta** (either kind): `varint nlabels, label-refs (MSB = removed),
//!   varint nprops, props (state bits 3-MSB = deleted ⇒ key only)`
//! * **deleted**: header only — "deleted entities require space only for
//!   their ID and timestamp of deletion", both of which live in the key or
//!   the log envelope.
//! * **neighbourhood**: `varint relId` with src/tgt in the key.
//!
//! A property is a `u32` word whose three most significant bits carry
//! state + type and whose low 29 bits are the key reference, followed by the
//! type-specific value bytes.

use crate::varint;
use lpg::{EntityDelta, NodeId, PropChange, PropertyValue, Props, RelId, StrId, Timestamp, Update};

const TYPE_MASK: u8 = 0b0000_0011;
const TYPE_NODE: u8 = 0;
const TYPE_REL: u8 = 1;
const TYPE_NEIGH: u8 = 2;
const FLAG_DELETED: u8 = 0b0000_0100;
const FLAG_DELTA: u8 = 0b0000_1000;

/// Label-reference MSB: the label is removed (delta records).
const LABEL_REMOVED: u32 = 1 << 31;

/// Property state/type codes (the three MSBs of the property word).
const PROP_DELETED: u32 = 0;
const PROP_INT: u32 = 1;
const PROP_FLOAT: u32 = 2;
const PROP_BOOL: u32 = 3;
const PROP_STR: u32 = 4;
const PROP_INT_ARR: u32 = 5;
const PROP_FLOAT_ARR: u32 = 6;
const PROP_KEY_MASK: u32 = (1 << 29) - 1;

fn prop_word(code: u32, key: StrId) -> u32 {
    debug_assert!(key.raw() <= PROP_KEY_MASK, "string store exceeds 29 bits");
    (code << 29) | key.raw()
}

/// The payload of one record.
#[derive(Clone, PartialEq, Debug)]
pub enum RecordBody {
    /// Fully materialized node state.
    NodeFull {
        /// Node labels.
        labels: Vec<StrId>,
        /// Node properties.
        props: Props,
    },
    /// Fully materialized relationship state.
    RelFull {
        /// Source node.
        src: NodeId,
        /// Target node.
        tgt: NodeId,
        /// Optional relationship type.
        label: Option<StrId>,
        /// Relationship properties.
        props: Props,
    },
    /// A diff from the previous version of a node.
    NodeDelta(EntityDelta),
    /// A diff from the previous version of a relationship.
    RelDelta(EntityDelta),
    /// Node tombstone.
    NodeDeleted,
    /// Relationship tombstone.
    RelDeleted,
    /// A neighbourhood index entry pointing back at its relationship.
    Neighbour {
        /// The relationship id this adjacency entry maps back to.
        rel: RelId,
        /// Whether the adjacency was removed at this timestamp.
        deleted: bool,
    },
}

impl RecordBody {
    /// `true` for tombstones.
    pub fn is_deleted(&self) -> bool {
        matches!(self, RecordBody::NodeDeleted | RecordBody::RelDeleted)
            || matches!(self, RecordBody::Neighbour { deleted: true, .. })
    }

    /// `true` for delta records.
    pub fn is_delta(&self) -> bool {
        matches!(self, RecordBody::NodeDelta(_) | RecordBody::RelDelta(_))
    }

    /// Builds the record body for one logical [`Update`].
    pub fn from_update(op: &Update) -> RecordBody {
        match op {
            Update::AddNode { labels, props, .. } => RecordBody::NodeFull {
                labels: labels.clone(),
                props: props.clone(),
            },
            Update::DeleteNode { .. } => RecordBody::NodeDeleted,
            Update::AddRel {
                src,
                tgt,
                label,
                props,
                ..
            } => RecordBody::RelFull {
                src: *src,
                tgt: *tgt,
                label: *label,
                props: props.clone(),
            },
            Update::DeleteRel { .. } => RecordBody::RelDeleted,
            other => {
                // Adds and deletes are matched above, so only modify
                // variants reach here; an empty delta is the panic-free
                // fallback should that invariant ever be violated.
                let delta = EntityDelta::from_update(other).unwrap_or_default();
                if other.is_rel() {
                    RecordBody::RelDelta(delta)
                } else {
                    RecordBody::NodeDelta(delta)
                }
            }
        }
    }

    /// Serializes the body into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RecordBody::NodeFull { labels, props } => {
                out.push(TYPE_NODE);
                varint::write_u64(out, labels.len() as u64);
                for l in labels {
                    varint::write_u32(out, l.raw());
                }
                encode_props(out, props);
            }
            RecordBody::RelFull {
                src,
                tgt,
                label,
                props,
            } => {
                out.push(TYPE_REL);
                varint::write_u64(out, src.raw());
                varint::write_u64(out, tgt.raw());
                match label {
                    Some(l) => varint::write_u32(out, l.raw()),
                    None => varint::write_u32(out, LABEL_REMOVED),
                }
                encode_props(out, props);
            }
            RecordBody::NodeDelta(d) => {
                out.push(TYPE_NODE | FLAG_DELTA);
                encode_delta(out, d);
            }
            RecordBody::RelDelta(d) => {
                out.push(TYPE_REL | FLAG_DELTA);
                encode_delta(out, d);
            }
            RecordBody::NodeDeleted => out.push(TYPE_NODE | FLAG_DELETED),
            RecordBody::RelDeleted => out.push(TYPE_REL | FLAG_DELETED),
            RecordBody::Neighbour { rel, deleted } => {
                out.push(TYPE_NEIGH | if *deleted { FLAG_DELETED } else { 0 });
                varint::write_u64(out, rel.raw());
            }
        }
    }

    /// Serializes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode(&mut out);
        out
    }

    /// Deserializes a body, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<RecordBody> {
        let header = *buf.get(*pos)?;
        *pos += 1;
        let ty = header & TYPE_MASK;
        let deleted = header & FLAG_DELETED != 0;
        let delta = header & FLAG_DELTA != 0;
        Some(match (ty, deleted, delta) {
            (TYPE_NODE, true, _) => RecordBody::NodeDeleted,
            (TYPE_REL, true, _) => RecordBody::RelDeleted,
            (TYPE_NODE, false, true) => RecordBody::NodeDelta(decode_delta(buf, pos)?),
            (TYPE_REL, false, true) => RecordBody::RelDelta(decode_delta(buf, pos)?),
            (TYPE_NODE, false, false) => {
                let nlabels = varint::read_u64(buf, pos)? as usize;
                let mut labels = Vec::with_capacity(nlabels);
                for _ in 0..nlabels {
                    labels.push(StrId::new(varint::read_u32(buf, pos)?));
                }
                let props = decode_props(buf, pos)?;
                RecordBody::NodeFull { labels, props }
            }
            (TYPE_REL, false, false) => {
                let src = NodeId::new(varint::read_u64(buf, pos)?);
                let tgt = NodeId::new(varint::read_u64(buf, pos)?);
                let raw = varint::read_u32(buf, pos)?;
                let label = (raw & LABEL_REMOVED == 0).then(|| StrId::new(raw));
                let props = decode_props(buf, pos)?;
                RecordBody::RelFull {
                    src,
                    tgt,
                    label,
                    props,
                }
            }
            (TYPE_NEIGH, _, _) => RecordBody::Neighbour {
                rel: RelId::new(varint::read_u64(buf, pos)?),
                deleted,
            },
            _ => return None,
        })
    }

    /// Deserializes a body from an exact buffer.
    pub fn from_bytes(buf: &[u8]) -> Option<RecordBody> {
        let mut pos = 0;
        let body = Self::decode(buf, &mut pos)?;
        (pos == buf.len()).then_some(body)
    }
}

fn encode_props(out: &mut Vec<u8>, props: &Props) {
    varint::write_u64(out, props.len() as u64);
    for (key, value) in props {
        encode_prop_value(out, *key, value);
    }
}

fn encode_prop_value(out: &mut Vec<u8>, key: StrId, value: &PropertyValue) {
    match value {
        PropertyValue::Int(v) => {
            varint::write_u32(out, prop_word(PROP_INT, key));
            varint::write_i64(out, *v);
        }
        PropertyValue::Float(v) => {
            varint::write_u32(out, prop_word(PROP_FLOAT, key));
            varint::write_f64(out, *v);
        }
        PropertyValue::Bool(v) => {
            varint::write_u32(out, prop_word(PROP_BOOL, key));
            out.push(u8::from(*v));
        }
        PropertyValue::Str(s) => {
            varint::write_u32(out, prop_word(PROP_STR, key));
            varint::write_u32(out, s.raw());
        }
        PropertyValue::IntArray(v) => {
            varint::write_u32(out, prop_word(PROP_INT_ARR, key));
            varint::write_u64(out, v.len() as u64);
            for x in v {
                varint::write_i64(out, *x);
            }
        }
        PropertyValue::FloatArray(v) => {
            varint::write_u32(out, prop_word(PROP_FLOAT_ARR, key));
            varint::write_u64(out, v.len() as u64);
            for x in v {
                varint::write_f64(out, *x);
            }
        }
    }
}

/// Decodes one property word + value. Returns `(key, None)` for a deleted
/// property marker.
fn decode_prop_entry(buf: &[u8], pos: &mut usize) -> Option<(StrId, Option<PropertyValue>)> {
    let word = varint::read_u32(buf, pos)?;
    let key = StrId::new(word & PROP_KEY_MASK);
    let value = match word >> 29 {
        PROP_DELETED => None,
        PROP_INT => Some(PropertyValue::Int(varint::read_i64(buf, pos)?)),
        PROP_FLOAT => Some(PropertyValue::Float(varint::read_f64(buf, pos)?)),
        PROP_BOOL => {
            let b = *buf.get(*pos)?;
            *pos += 1;
            Some(PropertyValue::Bool(b != 0))
        }
        PROP_STR => Some(PropertyValue::Str(StrId::new(varint::read_u32(buf, pos)?))),
        PROP_INT_ARR => {
            let n = varint::read_u64(buf, pos)? as usize;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(varint::read_i64(buf, pos)?);
            }
            Some(PropertyValue::IntArray(v))
        }
        PROP_FLOAT_ARR => {
            let n = varint::read_u64(buf, pos)? as usize;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(varint::read_f64(buf, pos)?);
            }
            Some(PropertyValue::FloatArray(v))
        }
        _ => return None,
    };
    Some((key, value))
}

fn decode_props(buf: &[u8], pos: &mut usize) -> Option<Props> {
    let n = varint::read_u64(buf, pos)? as usize;
    let mut props = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let (key, value) = decode_prop_entry(buf, pos)?;
        props.push((key, value?)); // full records never carry deletions
    }
    Some(props)
}

fn encode_delta(out: &mut Vec<u8>, d: &EntityDelta) {
    varint::write_u64(out, (d.labels_added.len() + d.labels_removed.len()) as u64);
    for l in &d.labels_added {
        varint::write_u32(out, l.raw());
    }
    for l in &d.labels_removed {
        varint::write_u32(out, l.raw() | LABEL_REMOVED);
    }
    varint::write_u64(out, d.props.len() as u64);
    for change in &d.props {
        match change {
            PropChange::Set(k, v) => encode_prop_value(out, *k, v),
            PropChange::Remove(k) => varint::write_u32(out, prop_word(PROP_DELETED, *k)),
        }
    }
}

fn decode_delta(buf: &[u8], pos: &mut usize) -> Option<EntityDelta> {
    let nlabels = varint::read_u64(buf, pos)? as usize;
    let mut d = EntityDelta::new();
    for _ in 0..nlabels {
        let word = varint::read_u32(buf, pos)?;
        if word & LABEL_REMOVED != 0 {
            d.labels_removed.push(StrId::new(word & !LABEL_REMOVED));
        } else {
            d.labels_added.push(StrId::new(word));
        }
    }
    let nprops = varint::read_u64(buf, pos)? as usize;
    for _ in 0..nprops {
        let (key, value) = decode_prop_entry(buf, pos)?;
        d.props.push(match value {
            Some(v) => PropChange::Set(key, v),
            None => PropChange::Remove(key),
        });
    }
    Some(d)
}

/// A TimeStore log entry: the body plus the `(τ, id)` envelope.
#[derive(Clone, PartialEq, Debug)]
pub struct LogRecord {
    /// Commit timestamp.
    pub ts: Timestamp,
    /// Raw entity id (interpret via the body's entity type).
    pub entity: u64,
    /// The payload.
    pub body: RecordBody,
}

impl LogRecord {
    /// Builds the log record for one timestamped update.
    pub fn from_update(ts: Timestamp, op: &Update) -> LogRecord {
        LogRecord {
            ts,
            entity: op.entity().raw(),
            body: RecordBody::from_update(op),
        }
    }

    /// Serializes envelope + body.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.ts);
        varint::write_u64(out, self.entity);
        self.body.encode(out);
    }

    /// Deserializes envelope + body, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<LogRecord> {
        let ts = varint::read_u64(buf, pos)?;
        let entity = varint::read_u64(buf, pos)?;
        let body = RecordBody::decode(buf, pos)?;
        Some(LogRecord { ts, entity, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> StrId {
        StrId::new(i)
    }

    fn roundtrip(body: RecordBody) {
        let bytes = body.to_bytes();
        assert_eq!(RecordBody::from_bytes(&bytes), Some(body));
    }

    #[test]
    fn node_full_roundtrip() {
        roundtrip(RecordBody::NodeFull {
            labels: vec![sid(1), sid(500_000)],
            props: vec![
                (sid(0), PropertyValue::Int(-42)),
                (sid(1), PropertyValue::Float(2.5)),
                (sid(2), PropertyValue::Bool(true)),
                (sid(3), PropertyValue::Str(sid(77))),
                (sid(4), PropertyValue::IntArray(vec![1, -2, 3])),
                (sid(5), PropertyValue::FloatArray(vec![0.5, -0.5])),
            ],
        });
    }

    #[test]
    fn rel_full_roundtrip_with_and_without_label() {
        roundtrip(RecordBody::RelFull {
            src: NodeId::new(3),
            tgt: NodeId::new(900_000_000_000),
            label: Some(sid(4)),
            props: vec![(sid(1), PropertyValue::Int(1))],
        });
        roundtrip(RecordBody::RelFull {
            src: NodeId::new(0),
            tgt: NodeId::new(0),
            label: None,
            props: vec![],
        });
    }

    #[test]
    fn tombstones_are_one_byte() {
        assert_eq!(RecordBody::NodeDeleted.to_bytes().len(), 1);
        assert_eq!(RecordBody::RelDeleted.to_bytes().len(), 1);
        roundtrip(RecordBody::NodeDeleted);
        roundtrip(RecordBody::RelDeleted);
    }

    #[test]
    fn delta_roundtrip() {
        roundtrip(RecordBody::NodeDelta(EntityDelta {
            labels_added: vec![sid(1)],
            labels_removed: vec![sid(2)],
            props: vec![
                PropChange::Set(sid(3), PropertyValue::Int(9)),
                PropChange::Remove(sid(4)),
            ],
        }));
        roundtrip(RecordBody::RelDelta(EntityDelta {
            labels_added: vec![],
            labels_removed: vec![],
            props: vec![PropChange::Set(sid(0), PropertyValue::Str(sid(1)))],
        }));
    }

    #[test]
    fn neighbour_roundtrip() {
        roundtrip(RecordBody::Neighbour {
            rel: RelId::new(123),
            deleted: false,
        });
        roundtrip(RecordBody::Neighbour {
            rel: RelId::new(0),
            deleted: true,
        });
    }

    #[test]
    fn from_update_maps_every_variant() {
        let cases: Vec<(Update, bool, bool)> = vec![
            (
                Update::AddNode {
                    id: NodeId::new(1),
                    labels: vec![sid(1)],
                    props: vec![],
                },
                false,
                false,
            ),
            (Update::DeleteNode { id: NodeId::new(1) }, true, false),
            (
                Update::SetRelProp {
                    id: RelId::new(2),
                    key: sid(1),
                    value: PropertyValue::Int(1),
                },
                false,
                true,
            ),
            (
                Update::AddLabel {
                    id: NodeId::new(1),
                    label: sid(9),
                },
                false,
                true,
            ),
        ];
        for (op, deleted, delta) in cases {
            let body = RecordBody::from_update(&op);
            assert_eq!(body.is_deleted(), deleted, "{op:?}");
            assert_eq!(body.is_delta(), delta, "{op:?}");
        }
    }

    #[test]
    fn log_record_roundtrip_stream() {
        let records = vec![
            LogRecord::from_update(
                5,
                &Update::AddNode {
                    id: NodeId::new(1),
                    labels: vec![sid(0)],
                    props: vec![(sid(1), PropertyValue::Int(10))],
                },
            ),
            LogRecord::from_update(
                6,
                &Update::AddRel {
                    id: RelId::new(1),
                    src: NodeId::new(1),
                    tgt: NodeId::new(1),
                    label: None,
                    props: vec![],
                },
            ),
            LogRecord::from_update(9, &Update::DeleteRel { id: RelId::new(1) }),
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        let mut got = Vec::new();
        while pos < buf.len() {
            got.push(LogRecord::decode(&buf, &mut pos).unwrap());
        }
        assert_eq!(got, records);
    }

    #[test]
    fn corrupt_input_returns_none() {
        assert_eq!(RecordBody::from_bytes(&[]), None);
        assert_eq!(RecordBody::from_bytes(&[0xFF]), None); // bad type bits
                                                           // Truncated node record.
        let full = RecordBody::NodeFull {
            labels: vec![sid(1)],
            props: vec![(sid(0), PropertyValue::Int(1))],
        }
        .to_bytes();
        assert_eq!(RecordBody::from_bytes(&full[..full.len() - 1]), None);
        // Trailing garbage rejected by from_bytes.
        let mut padded = RecordBody::NodeDeleted.to_bytes();
        padded.push(0);
        assert_eq!(RecordBody::from_bytes(&padded), None);
    }
}

/// Reconstructs the logical updates a log record represents (the inverse of
/// [`RecordBody::from_update`]); a delta record can carry several changes.
pub fn updates_from_record(entity: u64, body: &RecordBody) -> Vec<Update> {
    match body {
        RecordBody::NodeFull { labels, props } => vec![Update::AddNode {
            id: NodeId::new(entity),
            labels: labels.clone(),
            props: props.clone(),
        }],
        RecordBody::RelFull {
            src,
            tgt,
            label,
            props,
        } => vec![Update::AddRel {
            id: RelId::new(entity),
            src: *src,
            tgt: *tgt,
            label: *label,
            props: props.clone(),
        }],
        RecordBody::NodeDeleted => vec![Update::DeleteNode {
            id: NodeId::new(entity),
        }],
        RecordBody::RelDeleted => vec![Update::DeleteRel {
            id: RelId::new(entity),
        }],
        RecordBody::NodeDelta(d) => {
            let id = NodeId::new(entity);
            let mut out = Vec::with_capacity(d.len());
            for l in &d.labels_added {
                out.push(Update::AddLabel { id, label: *l });
            }
            for l in &d.labels_removed {
                out.push(Update::RemoveLabel { id, label: *l });
            }
            for p in &d.props {
                out.push(match p {
                    PropChange::Set(k, v) => Update::SetNodeProp {
                        id,
                        key: *k,
                        value: v.clone(),
                    },
                    PropChange::Remove(k) => Update::RemoveNodeProp { id, key: *k },
                });
            }
            out
        }
        RecordBody::RelDelta(d) => {
            let id = RelId::new(entity);
            d.props
                .iter()
                .map(|p| match p {
                    PropChange::Set(k, v) => Update::SetRelProp {
                        id,
                        key: *k,
                        value: v.clone(),
                    },
                    PropChange::Remove(k) => Update::RemoveRelProp { id, key: *k },
                })
                .collect()
        }
        RecordBody::Neighbour { .. } => Vec::new(),
    }
}

#[cfg(test)]
mod inverse_tests {
    use super::*;

    #[test]
    fn update_record_update_is_identity_for_single_ops() {
        let ops = vec![
            Update::AddNode {
                id: NodeId::new(4),
                labels: vec![StrId::new(1)],
                props: vec![(StrId::new(2), PropertyValue::Bool(true))],
            },
            Update::DeleteNode { id: NodeId::new(4) },
            Update::AddRel {
                id: RelId::new(9),
                src: NodeId::new(1),
                tgt: NodeId::new(2),
                label: None,
                props: vec![],
            },
            Update::DeleteRel { id: RelId::new(9) },
            Update::SetNodeProp {
                id: NodeId::new(4),
                key: StrId::new(3),
                value: PropertyValue::Float(0.5),
            },
            Update::RemoveNodeProp {
                id: NodeId::new(4),
                key: StrId::new(3),
            },
            Update::AddLabel {
                id: NodeId::new(4),
                label: StrId::new(6),
            },
            Update::RemoveLabel {
                id: NodeId::new(4),
                label: StrId::new(6),
            },
            Update::SetRelProp {
                id: RelId::new(9),
                key: StrId::new(3),
                value: PropertyValue::Int(-1),
            },
            Update::RemoveRelProp {
                id: RelId::new(9),
                key: StrId::new(3),
            },
        ];
        for op in ops {
            let body = RecordBody::from_update(&op);
            let back = updates_from_record(op.entity().raw(), &body);
            assert_eq!(back, vec![op.clone()], "{op:?}");
        }
    }
}
