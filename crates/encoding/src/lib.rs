//! # aion-encoding — the variable-size temporal record format (Sec. 4.2)
//!
//! Aion decouples Neo4j's fixed-size record format from its own temporal
//! storage format to avoid a >2× storage blow-up. Records here are
//! variable-size and come in two flavours: *fully materialized* entities and
//! *deltas* from the previous update (Fig. 3).
//!
//! Wire conventions (all little-endian except keys):
//!
//! * the first byte of every record is a **header**: two bits of entity
//!   type (node / relationship / neighbourhood), a *deleted* bit and a
//!   *delta* bit;
//! * strings never appear inline — labels, property keys and string values
//!   are 4-byte references into the string store ([`lpg::Interner`]);
//! * a label reference reserves its **most significant bit** to mark the
//!   label as removed (used by delta records);
//! * a property reference reserves its **three most significant bits** for
//!   state + data type (deleted, int, float, bool, string, int array, float
//!   array);
//! * deleted entities "require space only for their ID and timestamp of
//!   deletion" — their record is a single header byte (id and timestamp
//!   live in the key or the log entry envelope);
//! * B+Tree keys ([`keys`]) are big-endian so lexicographic byte order
//!   equals numeric order — exactly the composite layouts of Table 2.
//!
//! [`snapshot`] serializes whole graphs for TimeStore's snapshot files, and
//! [`varint`] provides the LEB128 + zigzag primitives everything above uses.

pub mod keys;
pub mod record;
pub mod snapshot;
pub mod varint;

pub use record::{updates_from_record, LogRecord, RecordBody};
