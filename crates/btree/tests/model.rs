//! Property tests: the page-backed B+Tree must behave exactly like an
//! in-memory `BTreeMap<Vec<u8>, Vec<u8>>` under arbitrary operation
//! sequences — lookups, floor lookups and range scans included.

use btree::BTree;
use pagestore::PageStore;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;
use tempfile::tempdir;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Floor(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and length so operations collide often.
    proptest::collection::vec(0u8..4, 1..5)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..2100)
        )
            .prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Get),
        key_strategy().prop_map(Op::Floor),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Scan(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let dir = tempdir().unwrap();
        // Tiny cache forces eviction/write-back during the test.
        let store = Arc::new(PageStore::open(dir.path().join("m.db"), 4).unwrap());
        let tree = BTree::open(store, 0).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let was = tree.remove(&k).unwrap();
                    prop_assert_eq!(was, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::Floor(k) => {
                    let got = tree.seek_floor(&k).unwrap();
                    let want = model
                        .range((Bound::Unbounded, Bound::Included(k)))
                        .next_back()
                        .map(|(a, b)| (a.clone(), b.clone()));
                    prop_assert_eq!(got, want);
                }
                Op::Scan(mut lo, mut hi) => {
                    if lo > hi {
                        std::mem::swap(&mut lo, &mut hi);
                    }
                    let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                        .scan(&lo, &hi)
                        .unwrap()
                        .map(|r| r.unwrap())
                        .collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range((Bound::Included(lo), Bound::Excluded(hi)))
                        .map(|(a, b)| (a.clone(), b.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final full-scan equivalence.
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            tree.scan(&[], &[]).unwrap().map(|r| r.unwrap()).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_survives_reopen(entries in proptest::collection::btree_map(
        key_strategy(), proptest::collection::vec(any::<u8>(), 0..64), 1..60)) {
        let dir = tempdir().unwrap();
        let path = dir.path().join("r.db");
        {
            let store = Arc::new(PageStore::open(&path, 8).unwrap());
            let tree = BTree::open(store.clone(), 0).unwrap();
            for (k, v) in &entries {
                tree.insert(k, v).unwrap();
            }
            store.sync().unwrap();
        }
        let store = Arc::new(PageStore::open(&path, 8).unwrap());
        let tree = BTree::open(store, 0).unwrap();
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            tree.scan(&[], &[]).unwrap().map(|r| r.unwrap()).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            entries.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        prop_assert_eq!(got, want);
    }
}
