//! Ordered range scans over the leaf sibling chain.
//!
//! Both temporal stores are range-scan heavy: TimeStore replays log offsets
//! over `[t_lo, t_hi)` and LineageStore reconstructs entity history with
//! `nodes.seek(low, high)` (Sec. 4.4). The scan copies one leaf's matching
//! entries at a time, so no page stays pinned between iterator steps.

use crate::layout;
use crate::tree::BTree;
use pagestore::PageId;
use std::collections::VecDeque;
use std::io;

/// Iterator over `[low, high)` in key order. `high = []` means unbounded.
pub struct Scan {
    tree: BTree,
    next_leaf: PageId,
    high: Vec<u8>,
    buffer: VecDeque<(Vec<u8>, Vec<u8>)>,
    done: bool,
}

impl Scan {
    pub(crate) fn new(
        tree: BTree,
        start_leaf: PageId,
        low: &[u8],
        high: &[u8],
    ) -> io::Result<Scan> {
        let mut s = Scan {
            tree,
            next_leaf: start_leaf,
            high: high.to_vec(),
            buffer: VecDeque::new(),
            done: false,
        };
        s.fill(low)?;
        Ok(s)
    }

    /// Buffers the next non-empty leaf's entries `>= low` and `< high`.
    fn fill(&mut self, low: &[u8]) -> io::Result<()> {
        while self.buffer.is_empty() && !self.done {
            if self.next_leaf.is_null() {
                self.done = true;
                return Ok(());
            }
            let leaf = self.next_leaf;
            let (indices, sibling, past_high) = self.tree.store().read(leaf, |p| {
                let n = layout::ncells(p);
                let start = match layout::leaf_search(p, low) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                let mut idxs = Vec::new();
                let mut past = false;
                for i in start..n {
                    let key = layout::leaf_key(p, i);
                    if !self.high.is_empty() && key >= self.high.as_slice() {
                        past = true;
                        break;
                    }
                    idxs.push(i);
                }
                (idxs, layout::link(p), past)
            })?;
            for i in indices {
                self.buffer.push_back(self.tree.read_leaf_entry(leaf, i)?);
            }
            if past_high {
                self.done = true;
            } else {
                self.next_leaf = PageId(sibling);
            }
        }
        Ok(())
    }
}

impl Iterator for Scan {
    type Item = io::Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer.is_empty() {
            if self.done {
                return None;
            }
            if let Err(e) = self.fill(&[]) {
                self.done = true;
                return Some(Err(e));
            }
        }
        self.buffer.pop_front().map(Ok)
    }
}

/// Key-only iterator over `[low, high)` in key order.
///
/// Unlike [`Scan`] this never touches values or overflow chains: keys are
/// copied straight out of each leaf while it is mapped. Index-style
/// consumers (streaming executors walking `(entity, ts)` keys and resolving
/// state lazily per entity) pay one page read per leaf instead of one per
/// entry.
pub struct KeyScan {
    tree: BTree,
    next_leaf: PageId,
    high: Vec<u8>,
    buffer: VecDeque<Vec<u8>>,
    done: bool,
}

impl KeyScan {
    pub(crate) fn new(
        tree: BTree,
        start_leaf: PageId,
        low: &[u8],
        high: &[u8],
    ) -> io::Result<KeyScan> {
        let mut s = KeyScan {
            tree,
            next_leaf: start_leaf,
            high: high.to_vec(),
            buffer: VecDeque::new(),
            done: false,
        };
        s.fill(low)?;
        Ok(s)
    }

    /// Buffers the next non-empty leaf's keys `>= low` and `< high`.
    fn fill(&mut self, low: &[u8]) -> io::Result<()> {
        while self.buffer.is_empty() && !self.done {
            if self.next_leaf.is_null() {
                self.done = true;
                return Ok(());
            }
            let leaf = self.next_leaf;
            let (keys, sibling, past_high) = self.tree.store().read(leaf, |p| {
                let n = layout::ncells(p);
                let start = match layout::leaf_search(p, low) {
                    Ok(i) => i,
                    Err(i) => i,
                };
                let mut keys = Vec::new();
                let mut past = false;
                for i in start..n {
                    let key = layout::leaf_key(p, i);
                    if !self.high.is_empty() && key >= self.high.as_slice() {
                        past = true;
                        break;
                    }
                    keys.push(key.to_vec());
                }
                (keys, layout::link(p), past)
            })?;
            self.buffer.extend(keys);
            if past_high {
                self.done = true;
            } else {
                self.next_leaf = PageId(sibling);
            }
        }
        Ok(())
    }
}

impl Iterator for KeyScan {
    type Item = io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer.is_empty() {
            if self.done {
                return None;
            }
            if let Err(e) = self.fill(&[]) {
                self.done = true;
                return Some(Err(e));
            }
        }
        self.buffer.pop_front().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use crate::BTree;
    use pagestore::PageStore;
    use std::sync::Arc;
    use tempfile::tempdir;

    fn tree() -> (tempfile::TempDir, BTree) {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 64).unwrap());
        let t = BTree::open(store, 0).unwrap();
        (dir, t)
    }

    fn k(i: u32) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn scan_empty_tree() {
        let (_d, t) = tree();
        assert_eq!(t.scan(&[], &[]).unwrap().count(), 0);
    }

    #[test]
    fn scan_respects_bounds() {
        let (_d, t) = tree();
        for i in 0..100u32 {
            t.insert(&k(i), &k(i * 2)).unwrap();
        }
        let got: Vec<u32> = t
            .scan(&k(10), &k(20))
            .unwrap()
            .map(|r| u32::from_be_bytes(r.unwrap().0.try_into().unwrap()))
            .collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        // Unbounded high.
        assert_eq!(t.scan(&k(95), &[]).unwrap().count(), 5);
        // Low past everything.
        assert_eq!(t.scan(&k(1000), &[]).unwrap().count(), 0);
    }

    #[test]
    fn scan_across_many_leaves_in_order() {
        let (_d, t) = tree();
        let n = 5_000u32;
        // Insert in reverse to exercise splits with front insertion.
        for i in (0..n).rev() {
            t.insert(&k(i), &i.to_le_bytes()).unwrap();
        }
        assert!(t.height().unwrap() > 1, "should have split");
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        for r in t.scan(&[], &[]).unwrap() {
            let (key, val) = r.unwrap();
            if let Some(p) = &prev {
                assert!(p < &key, "keys must be strictly increasing");
            }
            let i = u32::from_be_bytes(key.as_slice().try_into().unwrap());
            assert_eq!(val, i.to_le_bytes());
            prev = Some(key);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn key_scan_matches_full_scan() {
        let (_d, t) = tree();
        let big = vec![0xABu8; 2_000]; // force overflow values
        for i in 0..500u32 {
            let v: &[u8] = if i % 7 == 0 { &big } else { b"v" };
            t.insert(&k(i), v).unwrap();
        }
        let keys: Vec<Vec<u8>> = t
            .scan_keys(&k(10), &k(400))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let full: Vec<Vec<u8>> = t
            .scan(&k(10), &k(400))
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(keys, full);
        assert_eq!(t.scan_keys(&k(1000), &[]).unwrap().count(), 0);
        assert_eq!(t.scan_keys(&[], &[]).unwrap().count(), 500);
    }

    #[test]
    fn scan_skips_removed_entries() {
        let (_d, t) = tree();
        for i in 0..50u32 {
            t.insert(&k(i), b"v").unwrap();
        }
        for i in (0..50u32).step_by(2) {
            assert!(t.remove(&k(i)).unwrap());
        }
        let got: Vec<u32> = t
            .scan(&[], &[])
            .unwrap()
            .map(|r| u32::from_be_bytes(r.unwrap().0.try_into().unwrap()))
            .collect();
        assert_eq!(got, (1..50).step_by(2).collect::<Vec<_>>());
    }
}
