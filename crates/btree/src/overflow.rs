//! Overflow chains for values larger than a leaf cell can hold inline.
//!
//! Layout per overflow page: `u64 next` at offset 0, `u16 len` at offset 8,
//! payload from offset 10.

use pagestore::{PageId, PageStore, PAGE_SIZE};
use std::io;

const NEXT_OFF: usize = 0;
const LEN_OFF: usize = 8;
const DATA_OFF: usize = 10;
/// Payload bytes per overflow page.
pub const OVERFLOW_CAPACITY: usize = PAGE_SIZE - DATA_OFF;

/// Writes `value` into a fresh overflow chain; returns the head page.
pub fn write_chain(store: &PageStore, value: &[u8]) -> io::Result<PageId> {
    debug_assert!(!value.is_empty());
    let mut chunks = value.chunks(OVERFLOW_CAPACITY).rev();
    let mut next = PageId::NULL;
    // Build back-to-front so each page can point at its successor.
    for chunk in &mut chunks {
        let page = store.allocate()?;
        store.write(page, |p| {
            p.write_u64(NEXT_OFF, next.0);
            p.write_u16(LEN_OFF, chunk.len() as u16);
            p.bytes_mut()[DATA_OFF..DATA_OFF + chunk.len()].copy_from_slice(chunk);
        })?;
        next = page;
    }
    Ok(next)
}

/// Reads a whole overflow chain into `out`.
pub fn read_chain(store: &PageStore, head: PageId, out: &mut Vec<u8>) -> io::Result<()> {
    let mut page = head;
    while !page.is_null() {
        page = store.read(page, |p| {
            let len = p.read_u16(LEN_OFF) as usize;
            out.extend_from_slice(&p.bytes()[DATA_OFF..DATA_OFF + len]);
            PageId(p.read_u64(NEXT_OFF))
        })?;
    }
    Ok(())
}

/// Frees every page of a chain.
pub fn free_chain(store: &PageStore, head: PageId) -> io::Result<()> {
    let mut page = head;
    while !page.is_null() {
        let next = store.read(page, |p| PageId(p.read_u64(NEXT_OFF)))?;
        store.free(page)?;
        page = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn single_page_chain() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("o.db"), 8).unwrap();
        let value = vec![42u8; 500];
        let head = write_chain(&store, &value).unwrap();
        let mut out = Vec::new();
        read_chain(&store, head, &mut out).unwrap();
        assert_eq!(out, value);
    }

    #[test]
    fn multi_page_chain_roundtrip_and_free() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("o.db"), 8).unwrap();
        let value: Vec<u8> = (0..OVERFLOW_CAPACITY * 3 + 123)
            .map(|i| (i % 251) as u8)
            .collect();
        let head = write_chain(&store, &value).unwrap();
        let mut out = Vec::new();
        read_chain(&store, head, &mut out).unwrap();
        assert_eq!(out, value);
        let pages_before = store.page_count();
        free_chain(&store, head).unwrap();
        // Freed pages are reused, not leaked.
        let again = write_chain(&store, &value).unwrap();
        assert_eq!(store.page_count(), pages_before);
        let mut out2 = Vec::new();
        read_chain(&store, again, &mut out2).unwrap();
        assert_eq!(out2, value);
    }
}
