//! The B+Tree proper: descent, splits, upserts, lazy deletes and floor
//! lookups.

use crate::layout::{self, FLAG_OVERFLOW, INTERNAL, LEAF};
use crate::overflow;
use crate::scan::{KeyScan, Scan};
use pagestore::{PageId, PageStore, PAGE_SIZE};
use std::io;
use std::sync::Arc;

/// Maximum key length in bytes. Composite keys (Table 2) are at most
/// 24 bytes, so this is generous.
pub const MAX_KEY: usize = 512;

/// Values larger than this are spilled to overflow pages.
pub const MAX_INLINE_VALUE: usize = 1024;

/// A B+Tree rooted at one of the page-store meta slots. Clone freely — all
/// clones share the same underlying store and root slot.
///
/// ```
/// use btree::BTree;
/// use pagestore::PageStore;
/// use std::sync::Arc;
///
/// let dir = tempfile::tempdir().unwrap();
/// let store = Arc::new(PageStore::open(dir.path().join("db"), 64).unwrap());
/// let tree = BTree::open(store, 0).unwrap();
/// tree.insert(b"key-2", b"two").unwrap();
/// tree.insert(b"key-1", b"one").unwrap();
/// assert_eq!(tree.get(b"key-1").unwrap().as_deref(), Some(&b"one"[..]));
/// // Ordered range scan over [key-1, key-3).
/// let keys: Vec<Vec<u8>> = tree
///     .scan(b"key-1", b"key-3").unwrap()
///     .map(|r| r.unwrap().0)
///     .collect();
/// assert_eq!(keys, vec![b"key-1".to_vec(), b"key-2".to_vec()]);
/// // Floor lookup: greatest key <= probe.
/// assert_eq!(tree.seek_floor(b"key-20").unwrap().unwrap().0, b"key-2".to_vec());
/// ```
#[derive(Clone)]
pub struct BTree {
    store: Arc<PageStore>,
    slot: usize,
    metrics: Metrics,
}

/// Process-wide metric handles, fetched once per tree so descent and
/// split paths only pay a relaxed atomic op.
#[derive(Clone)]
struct Metrics {
    page_reads: Arc<obs::Counter>,
    splits: Arc<obs::Counter>,
    overflow_walks: Arc<obs::Counter>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            page_reads: obs::counter("btree.page.reads"),
            splits: obs::counter("btree.splits"),
            overflow_walks: obs::counter("btree.overflow.walks"),
        }
    }
}

impl BTree {
    /// Opens the tree persisted in meta `slot`, creating an empty root leaf
    /// on first use.
    pub fn open(store: Arc<PageStore>, slot: usize) -> io::Result<BTree> {
        if store.root(slot) == u64::MAX {
            let root = store.allocate()?;
            store.write(root, |p| layout::init(p, LEAF))?;
            store.set_root(slot, root.0);
        }
        Ok(BTree {
            store,
            slot,
            metrics: Metrics::new(),
        })
    }

    /// The shared page store (for size accounting).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// The meta slot holding this tree's root pointer.
    pub(crate) fn slot(&self) -> usize {
        self.slot
    }

    fn root(&self) -> PageId {
        PageId(self.store.root(self.slot))
    }

    /// Descends to the leaf covering `key`; returns the path of internal
    /// `(page, taken_child_index)` pairs and the leaf page.
    fn descend(&self, key: &[u8]) -> io::Result<(Vec<(PageId, isize)>, PageId)> {
        let mut path = Vec::new();
        let mut page = self.root();
        loop {
            let (is_leaf, step) = self.store.read(page, |p| {
                if layout::node_type(p) == LEAF {
                    (true, (0, 0))
                } else {
                    let (idx, child) = layout::internal_descend(p, key);
                    (false, (idx, child))
                }
            })?;
            self.metrics.page_reads.inc();
            if is_leaf {
                return Ok((path, page));
            }
            path.push((page, step.0));
            page = PageId(step.1);
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let (_, leaf) = self.descend(key)?;
        enum Hit {
            Miss,
            Inline(Vec<u8>),
            Overflow(PageId),
        }
        let hit = self
            .store
            .read(leaf, |p| match layout::leaf_search(p, key) {
                Ok(i) => {
                    let cell = layout::leaf_cell(p, i);
                    if cell.is_overflow() {
                        Hit::Overflow(PageId(cell.overflow_page()))
                    } else {
                        Hit::Inline(cell.inline.to_vec())
                    }
                }
                Err(_) => Hit::Miss,
            })?;
        match hit {
            Hit::Miss => Ok(None),
            Hit::Inline(v) => Ok(Some(v)),
            Hit::Overflow(head) => {
                self.metrics.overflow_walks.inc();
                let mut out = Vec::new();
                overflow::read_chain(&self.store, head, &mut out)?;
                Ok(Some(out))
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> io::Result<bool> {
        let (_, leaf) = self.descend(key)?;
        self.store
            .read(leaf, |p| layout::leaf_search(p, key).is_ok())
    }

    /// Inserts or replaces `key → value`.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> io::Result<()> {
        assert!(key.len() <= MAX_KEY, "key too large");
        let (flags, vlen, inline) = if value.len() > MAX_INLINE_VALUE {
            let head = overflow::write_chain(&self.store, value)?;
            (
                FLAG_OVERFLOW,
                value.len() as u32,
                head.0.to_le_bytes().to_vec(),
            )
        } else {
            (0u8, value.len() as u32, value.to_vec())
        };
        let (mut path, leaf) = self.descend(key)?;

        // Replace an existing cell: remove it first (freeing any chain).
        let old_overflow = self.store.write(leaf, |p| {
            if let Ok(i) = layout::leaf_search(p, key) {
                let cell = layout::leaf_cell(p, i);
                let ovf = cell.is_overflow().then(|| PageId(cell.overflow_page()));
                layout::leaf_remove(p, i);
                ovf
            } else {
                None
            }
        })?;
        if let Some(head) = old_overflow {
            overflow::free_chain(&self.store, head)?;
        }

        let needed = layout::leaf_cell_size(key.len(), inline.len()) + 2;
        let fits = self.store.write(leaf, |p| {
            if layout::free_space(p) >= needed {
                true
            } else if layout::live_bytes(p) + needed <= PAGE_SIZE {
                layout::compact(p);
                true
            } else {
                false
            }
        })?;
        if fits {
            self.store.write(leaf, |p| {
                // The cell for `key` was removed above, so the search can
                // only miss; fold both arms to stay panic-free regardless.
                let i = match layout::leaf_search(p, key) {
                    Ok(i) | Err(i) => i,
                };
                layout::leaf_insert(p, i, flags, key, vlen, &inline);
            })?;
            return Ok(());
        }

        // Split the leaf and retry into the correct half.
        let (sep, new_leaf) = self.split_leaf(leaf)?;
        let target = if key < sep.as_slice() { leaf } else { new_leaf };
        self.store.write(target, |p| {
            if layout::free_space(p) < needed {
                layout::compact(p);
            }
            let i = match layout::leaf_search(p, key) {
                Ok(i) | Err(i) => i,
            };
            layout::leaf_insert(p, i, flags, key, vlen, &inline);
        })?;
        self.insert_into_parent(&mut path, sep, new_leaf)?;
        Ok(())
    }

    /// Splits `leaf`, returning the separator key and the new right sibling.
    fn split_leaf(&self, leaf: PageId) -> io::Result<(Vec<u8>, PageId)> {
        self.metrics.splits.inc();
        let new_page = self.store.allocate()?;
        let moved: Vec<Vec<u8>> = self.store.write(leaf, |p| {
            let n = layout::ncells(p);
            debug_assert!(n >= 2);
            // Split at roughly half the live payload.
            let total = layout::live_bytes(p);
            let mut acc = 0;
            let mut split_at = n / 2;
            for i in 0..n {
                let cell = layout::leaf_cell(p, i);
                acc += layout::leaf_cell_size(cell.key.len(), cell.inline.len()) + 2;
                if acc >= total / 2 {
                    split_at = (i + 1).clamp(1, n - 1);
                    break;
                }
            }
            let mut cells = Vec::with_capacity(n - split_at);
            for i in split_at..n {
                let off_cell = layout::leaf_cell(p, i);
                let mut raw = Vec::with_capacity(layout::leaf_cell_size(
                    off_cell.key.len(),
                    off_cell.inline.len(),
                ));
                raw.push(off_cell.flags);
                raw.extend_from_slice(&(off_cell.key.len() as u16).to_le_bytes());
                raw.extend_from_slice(&(off_cell.vlen as u32).to_le_bytes());
                raw.extend_from_slice(off_cell.key);
                raw.extend_from_slice(off_cell.inline);
                cells.push(raw);
            }
            for _ in split_at..n {
                layout::leaf_remove(p, split_at);
            }
            layout::compact(p);
            cells
        })?;
        let old_sibling = self.store.read(leaf, layout::link)?;
        self.store.write(new_page, |p| {
            layout::init(p, LEAF);
            layout::set_link(p, old_sibling);
            for (i, raw) in moved.iter().enumerate() {
                let flags = raw[0];
                let mut klen2 = [0u8; 2];
                klen2.copy_from_slice(&raw[1..3]);
                let klen = u16::from_le_bytes(klen2) as usize;
                let mut vlen4 = [0u8; 4];
                vlen4.copy_from_slice(&raw[3..7]);
                let vlen = u32::from_le_bytes(vlen4);
                let key = &raw[7..7 + klen];
                let inline = &raw[7 + klen..];
                layout::leaf_insert(p, i, flags, key, vlen, inline);
            }
        })?;
        self.store
            .write(leaf, |p| layout::set_link(p, new_page.0))?;
        let sep = self
            .store
            .read(new_page, |p| layout::leaf_key(p, 0).to_vec())?;
        Ok((sep, new_page))
    }

    /// Inserts `(sep, child)` into the parent chain, splitting internals and
    /// growing a new root as needed.
    fn insert_into_parent(
        &self,
        path: &mut Vec<(PageId, isize)>,
        mut sep: Vec<u8>,
        mut child: PageId,
    ) -> io::Result<()> {
        loop {
            let Some((parent, _)) = path.pop() else {
                // Grow a new root.
                let old_root = self.root();
                let new_root = self.store.allocate()?;
                self.store.write(new_root, |p| {
                    layout::init(p, INTERNAL);
                    layout::set_link(p, old_root.0);
                    layout::internal_insert(p, 0, &sep, child.0);
                })?;
                self.store.set_root(self.slot, new_root.0);
                return Ok(());
            };
            let needed = layout::internal_cell_size(sep.len()) + 2;
            let fits = self.store.write(parent, |p| {
                if layout::free_space(p) >= needed {
                    true
                } else if layout::live_bytes(p) + needed <= PAGE_SIZE {
                    layout::compact(p);
                    true
                } else {
                    false
                }
            })?;
            if fits {
                self.store.write(parent, |p| {
                    let n = layout::ncells(p);
                    let mut lo = 0;
                    let mut hi = n;
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if layout::internal_key(p, mid) < sep.as_slice() {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    layout::internal_insert(p, lo, &sep, child.0);
                })?;
                return Ok(());
            }
            // Split the internal node: promote the middle separator.
            let (promoted, new_node) = self.split_internal(parent)?;
            // Insert the pending (sep, child) into the proper half.
            let target = if sep < promoted { parent } else { new_node };
            self.store.write(target, |p| {
                if layout::free_space(p) < needed {
                    layout::compact(p);
                }
                let n = layout::ncells(p);
                let mut lo = 0;
                let mut hi = n;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if layout::internal_key(p, mid) < sep.as_slice() {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                layout::internal_insert(p, lo, &sep, child.0);
            })?;
            sep = promoted;
            child = new_node;
        }
    }

    /// Splits an internal node; the middle key moves up (B+Tree internal
    /// split), its child becomes the new node's leftmost child.
    fn split_internal(&self, node: PageId) -> io::Result<(Vec<u8>, PageId)> {
        self.metrics.splits.inc();
        let new_page = self.store.allocate()?;
        type SplitPlan = (Vec<u8>, u64, Vec<(Vec<u8>, u64)>);
        let (promoted, new_link, moved): SplitPlan = self.store.write(node, |p| {
            let n = layout::ncells(p);
            debug_assert!(n >= 3);
            let mid = n / 2;
            let promoted = layout::internal_key(p, mid).to_vec();
            let new_link = layout::internal_child(p, mid);
            let moved: Vec<(Vec<u8>, u64)> = (mid + 1..n)
                .map(|i| {
                    (
                        layout::internal_key(p, i).to_vec(),
                        layout::internal_child(p, i),
                    )
                })
                .collect();
            for _ in mid..n {
                layout::internal_remove(p, mid);
            }
            layout::compact(p);
            (promoted, new_link, moved)
        })?;
        self.store.write(new_page, |p| {
            layout::init(p, INTERNAL);
            layout::set_link(p, new_link);
            for (i, (k, c)) in moved.iter().enumerate() {
                layout::internal_insert(p, i, k, *c);
            }
        })?;
        Ok((promoted, new_page))
    }

    /// Removes `key` if present; returns whether it existed.
    ///
    /// Deletion is lazy: pages are never merged or unlinked (Aion's stores
    /// are append-mostly), but freed overflow chains return to the free list
    /// and in-page space is reclaimed by compaction on later inserts.
    pub fn remove(&self, key: &[u8]) -> io::Result<bool> {
        let (_, leaf) = self.descend(key)?;
        let removed = self.store.write(leaf, |p| {
            if let Ok(i) = layout::leaf_search(p, key) {
                let cell = layout::leaf_cell(p, i);
                let ovf = cell.is_overflow().then(|| PageId(cell.overflow_page()));
                layout::leaf_remove(p, i);
                Some(ovf)
            } else {
                None
            }
        })?;
        match removed {
            None => Ok(false),
            Some(None) => Ok(true),
            Some(Some(head)) => {
                overflow::free_chain(&self.store, head)?;
                Ok(true)
            }
        }
    }

    /// Ordered scan over `[low, high)`. An empty `high` means "unbounded".
    pub fn scan(&self, low: &[u8], high: &[u8]) -> io::Result<Scan> {
        let (_, leaf) = self.descend(low)?;
        Scan::new(self.clone(), leaf, low, high)
    }

    /// Ordered key-only scan over `[low, high)` — the range-stream API for
    /// index walks that resolve values lazily. Skips value and overflow
    /// reads entirely; see [`crate::scan::KeyScan`].
    pub fn scan_keys(&self, low: &[u8], high: &[u8]) -> io::Result<KeyScan> {
        let (_, leaf) = self.descend(low)?;
        KeyScan::new(self.clone(), leaf, low, high)
    }

    /// The greatest entry with key `<= key` (floor lookup) — the access that
    /// finds "the snapshot with the closest timestamp" (Sec. 4.3).
    pub fn seek_floor(&self, key: &[u8]) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        let (path, leaf) = self.descend(key)?;
        enum Outcome {
            Found(usize),
            Before,
        }
        let out = self
            .store
            .read(leaf, |p| match layout::leaf_search(p, key) {
                Ok(i) => Outcome::Found(i),
                Err(0) => Outcome::Before,
                Err(i) => Outcome::Found(i - 1),
            })?;
        match out {
            Outcome::Found(i) => self.read_leaf_entry(leaf, i).map(Some),
            Outcome::Before => {
                // The floor lives in an earlier subtree; walk the path upward
                // looking for a sibling to our left, then take its rightmost
                // descendant.
                for (page, idx) in path.iter().rev() {
                    let candidates: Vec<u64> = self.store.read(*page, |p| {
                        let mut c = Vec::new();
                        let mut i = *idx - 1;
                        while i >= -1 {
                            let child = if i == -1 {
                                layout::link(p)
                            } else {
                                layout::internal_child(p, i as usize)
                            };
                            c.push(child);
                            i -= 1;
                        }
                        c
                    })?;
                    for cand in candidates {
                        if let Some(hit) = self.rightmost_entry(PageId(cand))? {
                            return Ok(Some(hit));
                        }
                    }
                }
                Ok(None)
            }
        }
    }

    /// The last entry of the subtree rooted at `page` (None if all-empty).
    fn rightmost_entry(&self, page: PageId) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        enum Step {
            Leaf(Option<usize>),
            Children(Vec<u64>),
        }
        let step = self.store.read(page, |p| {
            if layout::node_type(p) == LEAF {
                let n = layout::ncells(p);
                Step::Leaf((n > 0).then(|| n - 1))
            } else {
                // Children right-to-left: cell n-1 … cell 0, then the
                // leftmost child (the link field).
                let n = layout::ncells(p);
                let mut kids: Vec<u64> =
                    (0..n).rev().map(|i| layout::internal_child(p, i)).collect();
                kids.push(layout::link(p));
                Step::Children(kids)
            }
        })?;
        match step {
            Step::Leaf(Some(i)) => self.read_leaf_entry(page, i).map(Some),
            Step::Leaf(None) => Ok(None),
            Step::Children(kids) => {
                for k in kids {
                    if let Some(hit) = self.rightmost_entry(PageId(k))? {
                        return Ok(Some(hit));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Copies out entry `i` of `leaf`, resolving overflow.
    pub(crate) fn read_leaf_entry(&self, leaf: PageId, i: usize) -> io::Result<(Vec<u8>, Vec<u8>)> {
        enum V {
            Inline(Vec<u8>, Vec<u8>),
            Ovf(Vec<u8>, PageId),
        }
        let v = self.store.read(leaf, |p| {
            let cell = layout::leaf_cell(p, i);
            if cell.is_overflow() {
                V::Ovf(cell.key.to_vec(), PageId(cell.overflow_page()))
            } else {
                V::Inline(cell.key.to_vec(), cell.inline.to_vec())
            }
        })?;
        match v {
            V::Inline(k, val) => Ok((k, val)),
            V::Ovf(k, head) => {
                let mut out = Vec::new();
                overflow::read_chain(&self.store, head, &mut out)?;
                Ok((k, out))
            }
        }
    }

    /// Height of the tree (1 = just a root leaf); used by tests.
    pub fn height(&self) -> io::Result<usize> {
        let mut h = 1;
        let mut page = self.root();
        loop {
            let (is_leaf, child) = self.store.read(page, |p| {
                if layout::node_type(p) == LEAF {
                    (true, 0)
                } else {
                    (false, layout::link(p))
                }
            })?;
            if is_leaf {
                return Ok(h);
            }
            h += 1;
            page = PageId(child);
        }
    }

    /// Flushes the underlying store.
    pub fn flush(&self) -> io::Result<()> {
        self.store.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn open_tree(cache: usize) -> (tempfile::TempDir, BTree) {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), cache).unwrap());
        let t = BTree::open(store, 0).unwrap();
        (dir, t)
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn get_insert_remove_basics() {
        let (_d, t) = open_tree(32);
        assert_eq!(t.get(b"missing").unwrap(), None);
        t.insert(b"a", b"1").unwrap();
        t.insert(b"b", b"2").unwrap();
        assert_eq!(t.get(b"a").unwrap().as_deref(), Some(b"1".as_slice()));
        assert!(t.contains(b"b").unwrap());
        // Upsert replaces.
        t.insert(b"a", b"one").unwrap();
        assert_eq!(t.get(b"a").unwrap().as_deref(), Some(b"one".as_slice()));
        assert!(t.remove(b"a").unwrap());
        assert!(!t.remove(b"a").unwrap());
        assert_eq!(t.get(b"a").unwrap(), None);
    }

    #[test]
    fn many_inserts_split_and_stay_retrievable() {
        let (_d, t) = open_tree(16); // tiny cache: exercise out-of-core path
        let n = 20_000u64;
        for i in 0..n {
            t.insert(&k(i * 7919 % n), &(i * 3).to_le_bytes()).unwrap();
        }
        assert!(t.height().unwrap() >= 2);
        for i in 0..n {
            let key = k(i * 7919 % n);
            let v = t.get(&key).unwrap().expect("present");
            assert_eq!(v, (i * 3).to_le_bytes());
        }
    }

    #[test]
    fn overflow_values_roundtrip() {
        let (_d, t) = open_tree(32);
        let big = vec![0xABu8; MAX_INLINE_VALUE * 5 + 17];
        t.insert(b"big", &big).unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), big);
        // Replacing an overflow value frees the old chain (pages reused).
        let store = t.store().clone();
        let pages = store.page_count();
        let big2 = vec![0xCDu8; MAX_INLINE_VALUE * 5];
        t.insert(b"big", &big2).unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), big2);
        assert!(store.page_count() <= pages + 1);
        assert!(t.remove(b"big").unwrap());
        assert_eq!(t.get(b"big").unwrap(), None);
    }

    #[test]
    fn seek_floor_semantics() {
        let (_d, t) = open_tree(32);
        assert_eq!(t.seek_floor(&k(5)).unwrap(), None, "empty tree");
        for i in (10..100u64).step_by(10) {
            t.insert(&k(i), &k(i)).unwrap();
        }
        // Exact hit.
        assert_eq!(t.seek_floor(&k(30)).unwrap().unwrap().0, k(30));
        // Between keys → previous.
        assert_eq!(t.seek_floor(&k(35)).unwrap().unwrap().0, k(30));
        // Before all → none.
        assert_eq!(t.seek_floor(&k(5)).unwrap(), None);
        // After all → last.
        assert_eq!(t.seek_floor(&k(1_000)).unwrap().unwrap().0, k(90));
    }

    #[test]
    fn seek_floor_across_leaf_boundaries() {
        let (_d, t) = open_tree(16);
        for i in 0..10_000u64 {
            t.insert(&k(i * 2), b"v").unwrap();
        }
        assert!(t.height().unwrap() >= 2);
        for probe in [1u64, 999, 4_001, 19_999] {
            let floor = t.seek_floor(&k(probe)).unwrap().unwrap().0;
            let expect = k((probe - 1) / 2 * 2);
            assert_eq!(floor, expect, "probe {probe}");
        }
        // Exactly at a leaf's first key: floor(k) == k.
        assert_eq!(t.seek_floor(&k(0)).unwrap().unwrap().0, k(0));
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.db");
        {
            let store = Arc::new(PageStore::open(&path, 16).unwrap());
            let t = BTree::open(store.clone(), 0).unwrap();
            for i in 0..2_000u64 {
                t.insert(&k(i), &(i + 1).to_le_bytes()).unwrap();
            }
            store.sync().unwrap();
        }
        let store = Arc::new(PageStore::open(&path, 16).unwrap());
        let t = BTree::open(store, 0).unwrap();
        for i in (0..2_000u64).step_by(97) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), (i + 1).to_le_bytes());
        }
        assert_eq!(t.scan(&[], &[]).unwrap().count(), 2_000);
    }

    #[test]
    fn two_trees_share_one_store() {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 32).unwrap());
        let a = BTree::open(store.clone(), 0).unwrap();
        let b = BTree::open(store, 1).unwrap();
        for i in 0..500u64 {
            a.insert(&k(i), b"a").unwrap();
            b.insert(&k(i), b"b").unwrap();
        }
        assert_eq!(a.get(&k(7)).unwrap().as_deref(), Some(b"a".as_slice()));
        assert_eq!(b.get(&k(7)).unwrap().as_deref(), Some(b"b".as_slice()));
        assert_eq!(a.scan(&[], &[]).unwrap().count(), 500);
        assert_eq!(b.scan(&[], &[]).unwrap().count(), 500);
    }

    #[test]
    fn variable_length_keys_sort_lexicographically() {
        let (_d, t) = open_tree(32);
        let keys: Vec<&[u8]> = vec![b"a", b"aa", b"ab", b"b", b"ba"];
        for (i, key) in keys.iter().rev().enumerate() {
            t.insert(key, &[i as u8]).unwrap();
        }
        let got: Vec<Vec<u8>> = t.scan(&[], &[]).unwrap().map(|r| r.unwrap().0).collect();
        assert_eq!(got, keys.iter().map(|s| s.to_vec()).collect::<Vec<_>>());
    }
}
