//! Slotted-page layout shared by leaf and internal nodes.
//!
//! ```text
//! off  0  u8   node type (1 = leaf, 2 = internal)
//! off  2  u16  cell count
//! off  4  u16  cell data start (lowest used byte; cells grow downward)
//! off  8  u64  leaf: right sibling page | internal: leftmost child page
//! off 16  u16  × ncells  slot directory (cell offsets, key-sorted)
//! ...          free space
//! ...          cells, packed towards PAGE_SIZE
//! ```
//!
//! Leaf cell:      `u8 flags, u16 klen, u32 vlen, key, (value | u64 ovf page)`
//! Internal cell:  `u16 klen, u64 child, key`

use pagestore::{PageBuf, PAGE_SIZE};

/// Node type tag for leaves.
pub const LEAF: u8 = 1;
/// Node type tag for internal nodes.
pub const INTERNAL: u8 = 2;

/// Leaf-cell flag: the value lives in an overflow chain.
pub const FLAG_OVERFLOW: u8 = 1;

const TYPE_OFF: usize = 0;
const NCELLS_OFF: usize = 2;
const DATA_START_OFF: usize = 4;
const LINK_OFF: usize = 8;
/// First byte of the slot directory.
pub const SLOTS_OFF: usize = 16;

/// Initializes a page as an empty node of the given type.
pub fn init(page: &mut PageBuf, node_type: u8) {
    page.bytes_mut().fill(0);
    page.bytes_mut()[TYPE_OFF] = node_type;
    page.write_u16(NCELLS_OFF, 0);
    page.write_u16(DATA_START_OFF, PAGE_SIZE as u16);
    page.write_u64(LINK_OFF, u64::MAX);
}

/// The node type byte.
pub fn node_type(page: &PageBuf) -> u8 {
    page.bytes()[TYPE_OFF]
}

/// Number of cells.
pub fn ncells(page: &PageBuf) -> usize {
    page.read_u16(NCELLS_OFF) as usize
}

/// The link field: right sibling (leaf) or leftmost child (internal).
pub fn link(page: &PageBuf) -> u64 {
    page.read_u64(LINK_OFF)
}

/// Sets the link field.
pub fn set_link(page: &mut PageBuf, v: u64) {
    page.write_u64(LINK_OFF, v);
}

fn data_start(page: &PageBuf) -> usize {
    page.read_u16(DATA_START_OFF) as usize
}

fn slot(page: &PageBuf, i: usize) -> usize {
    page.read_u16(SLOTS_OFF + i * 2) as usize
}

fn read_u16_at(b: &[u8], off: usize) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[off..off + 2]);
    u16::from_le_bytes(a)
}

fn read_u32_at(b: &[u8], off: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[off..off + 4]);
    u32::from_le_bytes(a)
}

fn read_u64_at(b: &[u8], off: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(a)
}

/// Contiguous free bytes between the slot directory and the cell heap.
pub fn free_space(page: &PageBuf) -> usize {
    data_start(page).saturating_sub(SLOTS_OFF + ncells(page) * 2)
}

// ---------------------------------------------------------------- leaf cells

/// Bytes needed for a leaf cell holding `klen`-byte key and `inline_vlen`
/// bytes of inline payload (value bytes, or 8 for an overflow pointer).
pub fn leaf_cell_size(klen: usize, inline_vlen: usize) -> usize {
    1 + 2 + 4 + klen + inline_vlen
}

/// A decoded view of one leaf cell.
pub struct LeafCell<'a> {
    /// Cell flags ([`FLAG_OVERFLOW`]).
    pub flags: u8,
    /// The key bytes.
    pub key: &'a [u8],
    /// Logical value length (may exceed the inline payload when overflowed).
    pub vlen: usize,
    /// Inline payload: value bytes, or the 8-byte overflow page id.
    pub inline: &'a [u8],
}

impl LeafCell<'_> {
    /// Whether the value is in an overflow chain.
    pub fn is_overflow(&self) -> bool {
        self.flags & FLAG_OVERFLOW != 0
    }

    /// The overflow chain head (only valid when [`Self::is_overflow`]).
    pub fn overflow_page(&self) -> u64 {
        read_u64_at(self.inline, 0)
    }
}

/// Reads leaf cell `i`.
pub fn leaf_cell(page: &PageBuf, i: usize) -> LeafCell<'_> {
    let off = slot(page, i);
    let b = page.bytes();
    let flags = b[off];
    let klen = read_u16_at(b, off + 1) as usize;
    let vlen = read_u32_at(b, off + 3) as usize;
    let key = &b[off + 7..off + 7 + klen];
    let inline_len = if flags & FLAG_OVERFLOW != 0 { 8 } else { vlen };
    let inline = &b[off + 7 + klen..off + 7 + klen + inline_len];
    LeafCell {
        flags,
        key,
        vlen,
        inline,
    }
}

/// Key of leaf cell `i` (avoids decoding the value).
pub fn leaf_key(page: &PageBuf, i: usize) -> &[u8] {
    let off = slot(page, i);
    let b = page.bytes();
    let klen = read_u16_at(b, off + 1) as usize;
    &b[off + 7..off + 7 + klen]
}

/// Binary search among leaf keys. `Ok(i)` exact hit, `Err(i)` insert slot.
pub fn leaf_search(page: &PageBuf, key: &[u8]) -> Result<usize, usize> {
    let n = ncells(page);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(page, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Inserts a leaf cell at slot index `i`. The caller must have ensured
/// enough contiguous free space (see [`free_space`] / [`compact`]).
pub fn leaf_insert(page: &mut PageBuf, i: usize, flags: u8, key: &[u8], vlen: u32, inline: &[u8]) {
    let size = leaf_cell_size(key.len(), inline.len());
    debug_assert!(free_space(page) >= size + 2, "caller must ensure space");
    let n = ncells(page);
    let new_start = data_start(page) - size;
    {
        let b = page.bytes_mut();
        b[new_start] = flags;
        b[new_start + 1..new_start + 3].copy_from_slice(&(key.len() as u16).to_le_bytes());
        b[new_start + 3..new_start + 7].copy_from_slice(&vlen.to_le_bytes());
        b[new_start + 7..new_start + 7 + key.len()].copy_from_slice(key);
        b[new_start + 7 + key.len()..new_start + size].copy_from_slice(inline);
        // Shift the slot directory right of i.
        b.copy_within(SLOTS_OFF + i * 2..SLOTS_OFF + n * 2, SLOTS_OFF + i * 2 + 2);
    }
    page.write_u16(SLOTS_OFF + i * 2, new_start as u16);
    page.write_u16(NCELLS_OFF, (n + 1) as u16);
    page.write_u16(DATA_START_OFF, new_start as u16);
}

/// Removes leaf cell `i` (slot only; heap bytes become garbage until the
/// next [`compact`]). Returns the cell's heap size for accounting.
pub fn leaf_remove(page: &mut PageBuf, i: usize) -> usize {
    let off = slot(page, i);
    let b = page.bytes();
    let flags = b[off];
    let klen = read_u16_at(b, off + 1) as usize;
    let vlen = read_u32_at(b, off + 3) as usize;
    let inline = if flags & FLAG_OVERFLOW != 0 { 8 } else { vlen };
    let size = leaf_cell_size(klen, inline);
    let n = ncells(page);
    page.bytes_mut().copy_within(
        SLOTS_OFF + (i + 1) * 2..SLOTS_OFF + n * 2,
        SLOTS_OFF + i * 2,
    );
    page.write_u16(NCELLS_OFF, (n - 1) as u16);
    size
}

// ------------------------------------------------------- checked accessors
//
// The verifier walks pages that may be arbitrarily corrupt, so it cannot
// use the trusting accessors above (whose slicing panics on out-of-range
// offsets). These duplicates bounds-check every step and return `None`
// instead.

/// Bounds-checked slot lookup: `None` when the slot directory itself runs
/// past the page or the stored offset points outside the page.
pub fn checked_slot(page: &PageBuf, i: usize) -> Option<usize> {
    let slot_off = SLOTS_OFF.checked_add(i.checked_mul(2)?)?;
    if slot_off + 2 > PAGE_SIZE {
        return None;
    }
    let off = page.read_u16(slot_off) as usize;
    (off < PAGE_SIZE).then_some(off)
}

/// Bounds-checked leaf cell decode.
pub fn checked_leaf_cell(page: &PageBuf, i: usize) -> Option<LeafCell<'_>> {
    let off = checked_slot(page, i)?;
    let b = page.bytes();
    if off + 7 > PAGE_SIZE {
        return None;
    }
    let flags = b[off];
    let klen = read_u16_at(b, off + 1) as usize;
    let vlen = read_u32_at(b, off + 3) as usize;
    let inline_len = if flags & FLAG_OVERFLOW != 0 { 8 } else { vlen };
    let end = off
        .checked_add(7)?
        .checked_add(klen)?
        .checked_add(inline_len)?;
    if end > PAGE_SIZE {
        return None;
    }
    Some(LeafCell {
        flags,
        key: &b[off + 7..off + 7 + klen],
        vlen,
        inline: &b[off + 7 + klen..end],
    })
}

/// Bounds-checked internal cell decode into `(key, child)`.
pub fn checked_internal_cell(page: &PageBuf, i: usize) -> Option<(&[u8], u64)> {
    let off = checked_slot(page, i)?;
    let b = page.bytes();
    if off + 10 > PAGE_SIZE {
        return None;
    }
    let klen = read_u16_at(b, off) as usize;
    let child = read_u64_at(b, off + 2);
    let end = off.checked_add(10)?.checked_add(klen)?;
    if end > PAGE_SIZE {
        return None;
    }
    Some((&b[off + 10..end], child))
}

// ------------------------------------------------------------ internal cells

/// Bytes needed for an internal cell with a `klen`-byte separator key.
pub fn internal_cell_size(klen: usize) -> usize {
    2 + 8 + klen
}

/// Key of internal cell `i`.
pub fn internal_key(page: &PageBuf, i: usize) -> &[u8] {
    let off = slot(page, i);
    let b = page.bytes();
    let klen = read_u16_at(b, off) as usize;
    &b[off + 10..off + 10 + klen]
}

/// Child pointer of internal cell `i`.
pub fn internal_child(page: &PageBuf, i: usize) -> u64 {
    let off = slot(page, i);
    read_u64_at(page.bytes(), off + 2)
}

/// The child page that covers `key`: the last cell whose separator key is
/// `<= key`, or the leftmost child (the link field) when all separators are
/// greater.
pub fn internal_descend(page: &PageBuf, key: &[u8]) -> (isize, u64) {
    let n = ncells(page);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(page, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        (-1, link(page))
    } else {
        ((lo - 1) as isize, internal_child(page, lo - 1))
    }
}

/// Inserts an internal cell at slot `i`.
pub fn internal_insert(page: &mut PageBuf, i: usize, key: &[u8], child: u64) {
    let size = internal_cell_size(key.len());
    debug_assert!(free_space(page) >= size + 2, "caller must ensure space");
    let n = ncells(page);
    let new_start = data_start(page) - size;
    {
        let b = page.bytes_mut();
        b[new_start..new_start + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        b[new_start + 2..new_start + 10].copy_from_slice(&child.to_le_bytes());
        b[new_start + 10..new_start + size].copy_from_slice(key);
        b.copy_within(SLOTS_OFF + i * 2..SLOTS_OFF + n * 2, SLOTS_OFF + i * 2 + 2);
    }
    page.write_u16(SLOTS_OFF + i * 2, new_start as u16);
    page.write_u16(NCELLS_OFF, (n + 1) as u16);
    page.write_u16(DATA_START_OFF, new_start as u16);
}

/// Removes internal cell `i`.
pub fn internal_remove(page: &mut PageBuf, i: usize) {
    let n = ncells(page);
    page.bytes_mut().copy_within(
        SLOTS_OFF + (i + 1) * 2..SLOTS_OFF + n * 2,
        SLOTS_OFF + i * 2,
    );
    page.write_u16(NCELLS_OFF, (n - 1) as u16);
}

// ----------------------------------------------------------------- compaction

/// Rewrites all live cells contiguously at the end of the page, reclaiming
/// garbage left by removals and in-place updates.
pub fn compact(page: &mut PageBuf) {
    let n = ncells(page);
    let is_leaf = node_type(page) == LEAF;
    let mut cells: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        let off = slot(page, i);
        let b = page.bytes();
        let size = if is_leaf {
            let flags = b[off];
            let klen = read_u16_at(b, off + 1) as usize;
            let vlen = read_u32_at(b, off + 3) as usize;
            let inline = if flags & FLAG_OVERFLOW != 0 { 8 } else { vlen };
            leaf_cell_size(klen, inline)
        } else {
            let klen = read_u16_at(b, off) as usize;
            internal_cell_size(klen)
        };
        cells.push(b[off..off + size].to_vec());
    }
    let mut pos = PAGE_SIZE;
    for (i, cell) in cells.iter().enumerate() {
        pos -= cell.len();
        page.bytes_mut()[pos..pos + cell.len()].copy_from_slice(cell);
        page.write_u16(SLOTS_OFF + i * 2, pos as u16);
    }
    page.write_u16(DATA_START_OFF, pos as u16);
}

/// Total bytes of live cell payload plus slots — used to decide whether a
/// compaction would make an insert fit.
pub fn live_bytes(page: &PageBuf) -> usize {
    let n = ncells(page);
    let is_leaf = node_type(page) == LEAF;
    let mut total = SLOTS_OFF + n * 2;
    for i in 0..n {
        let off = slot(page, i);
        let b = page.bytes();
        total += if is_leaf {
            let flags = b[off];
            let klen = read_u16_at(b, off + 1) as usize;
            let vlen = read_u32_at(b, off + 3) as usize;
            let inline = if flags & FLAG_OVERFLOW != 0 { 8 } else { vlen };
            leaf_cell_size(klen, inline)
        } else {
            let klen = read_u16_at(b, off) as usize;
            internal_cell_size(klen)
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_search_remove() {
        let mut p = PageBuf::zeroed();
        init(&mut p, LEAF);
        assert_eq!(ncells(&p), 0);
        // Insert keys out of order at their sorted slots.
        for key in [b"bb".as_slice(), b"aa", b"cc"] {
            let i = leaf_search(&p, key).unwrap_err();
            leaf_insert(&mut p, i, 0, key, 1, &[key[0]]);
        }
        assert_eq!(ncells(&p), 3);
        assert_eq!(leaf_key(&p, 0), b"aa");
        assert_eq!(leaf_key(&p, 1), b"bb");
        assert_eq!(leaf_key(&p, 2), b"cc");
        assert_eq!(leaf_search(&p, b"bb"), Ok(1));
        assert_eq!(leaf_search(&p, b"b"), Err(1));
        let cell = leaf_cell(&p, 0);
        assert_eq!(cell.inline, b"a");
        assert!(!cell.is_overflow());
        leaf_remove(&mut p, 1);
        assert_eq!(ncells(&p), 2);
        assert_eq!(leaf_search(&p, b"bb"), Err(1));
    }

    #[test]
    fn compact_reclaims_garbage() {
        let mut p = PageBuf::zeroed();
        init(&mut p, LEAF);
        let val = vec![7u8; 100];
        for i in 0..20u8 {
            let key = [i];
            let s = leaf_search(&p, &key).unwrap_err();
            leaf_insert(&mut p, s, 0, &key, 100, &val);
        }
        let before = free_space(&p);
        for _ in 0..10 {
            leaf_remove(&mut p, 0);
        }
        compact(&mut p);
        assert!(free_space(&p) > before + 900);
        // Survivors intact.
        assert_eq!(ncells(&p), 10);
        assert_eq!(leaf_key(&p, 0), &[10u8]);
        assert_eq!(leaf_cell(&p, 9).inline, &val[..]);
    }

    #[test]
    fn internal_descend_picks_correct_child() {
        let mut p = PageBuf::zeroed();
        init(&mut p, INTERNAL);
        set_link(&mut p, 100); // leftmost child
        internal_insert(&mut p, 0, b"g", 200);
        internal_insert(&mut p, 1, b"p", 300);
        assert_eq!(internal_descend(&p, b"a").1, 100);
        assert_eq!(internal_descend(&p, b"g").1, 200);
        assert_eq!(internal_descend(&p, b"k").1, 200);
        assert_eq!(internal_descend(&p, b"p").1, 300);
        assert_eq!(internal_descend(&p, b"z").1, 300);
        assert_eq!(internal_key(&p, 0), b"g");
        assert_eq!(internal_child(&p, 1), 300);
    }

    #[test]
    fn live_bytes_tracks_payload() {
        let mut p = PageBuf::zeroed();
        init(&mut p, LEAF);
        let empty = live_bytes(&p);
        leaf_insert(&mut p, 0, 0, b"key", 5, b"value");
        assert_eq!(live_bytes(&p), empty + 2 + leaf_cell_size(3, 5));
    }
}
