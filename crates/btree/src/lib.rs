//! # aion-btree — an order-preserving, page-backed B+Tree
//!
//! The Rust counterpart of the Neo4j B+Tree (`GBPTree`) that Aion builds
//! both of its temporal stores on (Sec. 5: "Backing Aion's storage with
//! Neo4j's B+Tree implementation offers sortedness, scalable accesses,
//! out-of-core storage, and seamless integration with the page cache").
//!
//! Properties:
//!
//! * arbitrary byte-string keys compared lexicographically — composite keys
//!   (`{nodeId, ts}`, `{srcId, tgtId, ts}`, Table 2) are encoded order-
//!   preservingly by the `encoding` crate;
//! * variable-size values with transparent overflow pages for values larger
//!   than [`MAX_INLINE_VALUE`];
//! * slotted 8 KiB pages served through the `pagestore` LRU cache, so the
//!   tree works out-of-core;
//! * `O(log n)` point lookups and ordered range scans over leaf sibling
//!   chains — the access pattern behind both TimeStore and LineageStore;
//! * several trees can share one file: each tree persists its root pointer
//!   in one of the page-store meta slots.
//!
//! Deletion is *lazy*: cells are removed in place and empty leaves are
//! unlinked and freed, but non-empty underfull nodes are not rebalanced.
//! Aion's stores are append-mostly (the change log has "no retention
//! policy"), so rebalancing would add complexity with no measurable win.

pub mod layout;
pub mod overflow;
pub mod scan;
pub mod tree;
pub mod verify;

pub use scan::{KeyScan, Scan};
pub use tree::{BTree, MAX_INLINE_VALUE, MAX_KEY};
pub use verify::{VerifyClass, VerifyReport, Violation};
