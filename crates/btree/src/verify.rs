//! Deep structural verification of one B+Tree (the core of `aion-fsck`).
//!
//! [`BTree::verify`] walks every page reachable from the root with
//! bounds-checked decoding (a corrupt page yields a violation, never a
//! panic) and checks, per the on-disk invariants:
//!
//! * node types are valid and internal levels are homogeneous;
//! * keys within every node are strictly increasing;
//! * internal separator keys bound their subtrees (`sep(i) <= min(child
//!   i+1)` and children left of `sep(i)` stay below it);
//! * the leaf sibling chain visits exactly the in-order leaves and key
//!   ranges stay monotone across the chain;
//! * overflow chains are acyclic, in-bounds and deliver exactly the
//!   declared value length.
//!
//! The report also returns the set of reachable pages so a caller that
//! knows every tree sharing the page file can reconcile reachability
//! against the free list (leak / double-use detection).

use crate::layout;
use crate::tree::BTree;
use pagestore::{PageId, PAGE_SIZE};
use std::collections::BTreeSet;
use std::fmt;
use std::io;

/// Classes of structural violation [`BTree::verify`] can report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyClass {
    /// Keys out of order within a node or across the leaf sibling chain.
    KeyOrder,
    /// The leaf sibling chain diverges from the in-order leaf sequence.
    SiblingChain,
    /// A broken, cyclic or length-inconsistent overflow chain.
    OverflowChain,
    /// Undecodable page content: bad node type, out-of-bounds cell, child
    /// pointer outside the file, or a cycle in the tree itself.
    Structure,
}

impl fmt::Display for VerifyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VerifyClass::KeyOrder => "key-order",
            VerifyClass::SiblingChain => "sibling-chain",
            VerifyClass::OverflowChain => "overflow-chain",
            VerifyClass::Structure => "structure",
        };
        f.write_str(s)
    }
}

/// One invariant violation found during verification.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated invariant class.
    pub class: VerifyClass,
    /// Page where the violation was observed.
    pub page: u64,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] page {}: {}", self.class, self.page, self.detail)
    }
}

/// The result of [`BTree::verify`].
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Every violation found (empty = structurally sound).
    pub violations: Vec<Violation>,
    /// Pages reachable from this tree's root (tree nodes + overflow pages).
    pub reachable: BTreeSet<u64>,
    /// Number of live leaf entries seen.
    pub entries: u64,
    /// Tree height observed on the leftmost path (0 when the root is
    /// undecodable).
    pub height: u32,
}

impl VerifyReport {
    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn push(&mut self, class: VerifyClass, page: u64, detail: String) {
        self.violations.push(Violation {
            class,
            page,
            detail,
        });
    }
}

/// An optional key bound inherited from a parent separator.
type KeyBound = Option<Vec<u8>>;
/// One frame of the in-order walk: (page, low bound, high bound, depth).
type WalkFrame = (u64, KeyBound, KeyBound, u32);

impl BTree {
    /// Deep structural verification; see the module docs for the invariant
    /// list. IO errors abort the walk; corruption never panics.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        let store = self.store();
        let page_count = store.page_count();
        let root = PageId(store.root(self.slot()));
        if root.is_null() {
            // Never-opened slot: an empty tree is vacuously sound.
            return Ok(report);
        }
        if root.0 >= page_count {
            report.push(
                VerifyClass::Structure,
                root.0,
                format!("root pointer {} outside file of {page_count} pages", root.0),
            );
            return Ok(report);
        }

        // In-order walk collecting (leaf page, sibling link); key-range
        // bounds propagate down.
        let mut leaves: Vec<(u64, u64)> = Vec::new();
        let mut stack: Vec<WalkFrame> = vec![(root.0, None, None, 1)];
        while let Some((page, low, high, depth)) = stack.pop() {
            if !report.reachable.insert(page) {
                report.push(
                    VerifyClass::Structure,
                    page,
                    "page reached twice (tree cycle or shared child)".into(),
                );
                continue;
            }
            if page >= page_count {
                report.push(
                    VerifyClass::Structure,
                    page,
                    format!("child pointer outside file of {page_count} pages"),
                );
                continue;
            }
            report.height = report.height.max(depth);
            enum Node {
                Leaf {
                    keys: Vec<Vec<u8>>,
                    link: u64,
                    overflows: Vec<(u64, usize)>,
                },
                Internal {
                    seps: Vec<(Vec<u8>, u64)>,
                    leftmost: u64,
                },
                Bad(String),
            }
            let node = store.read(PageId(page), |p| {
                let ncells = layout::ncells(p);
                if layout::SLOTS_OFF + ncells * 2 > PAGE_SIZE {
                    return Node::Bad(format!("cell count {ncells} overruns the page"));
                }
                match layout::node_type(p) {
                    layout::LEAF => {
                        let mut keys = Vec::with_capacity(ncells);
                        let mut overflows = Vec::new();
                        for i in 0..ncells {
                            match layout::checked_leaf_cell(p, i) {
                                Some(cell) => {
                                    if cell.is_overflow() {
                                        overflows.push((cell.overflow_page(), cell.vlen));
                                    }
                                    keys.push(cell.key.to_vec());
                                }
                                None => {
                                    return Node::Bad(format!(
                                        "leaf cell {i} of {ncells} is out of bounds"
                                    ))
                                }
                            }
                        }
                        Node::Leaf {
                            keys,
                            link: layout::link(p),
                            overflows,
                        }
                    }
                    layout::INTERNAL => {
                        let mut seps = Vec::with_capacity(ncells);
                        for i in 0..ncells {
                            match layout::checked_internal_cell(p, i) {
                                Some((k, child)) => seps.push((k.to_vec(), child)),
                                None => {
                                    return Node::Bad(format!(
                                        "internal cell {i} of {ncells} is out of bounds"
                                    ))
                                }
                            }
                        }
                        Node::Internal {
                            seps,
                            leftmost: layout::link(p),
                        }
                    }
                    t => Node::Bad(format!("invalid node type {t}")),
                }
            })?;
            match node {
                Node::Bad(detail) => report.push(VerifyClass::Structure, page, detail),
                Node::Leaf {
                    keys,
                    link,
                    overflows,
                } => {
                    leaves.push((page, link));
                    report.entries += keys.len() as u64;
                    check_key_order(&mut report, page, &keys, low.as_deref(), high.as_deref());
                    for (head, vlen) in overflows {
                        self.verify_overflow_chain(&mut report, page, head, vlen, page_count)?;
                    }
                }
                Node::Internal { seps, leftmost } => {
                    check_key_order(
                        &mut report,
                        page,
                        &seps.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
                        low.as_deref(),
                        high.as_deref(),
                    );
                    // Push children right-to-left so the stack pops them in
                    // key order; each child narrows its bounds.
                    let mut children: Vec<(u64, KeyBound, KeyBound)> = Vec::new();
                    let mut lower = low.clone();
                    let mut iter = seps.iter().peekable();
                    children.push((
                        leftmost,
                        lower.clone(),
                        iter.peek().map(|(k, _)| k.clone()).or_else(|| high.clone()),
                    ));
                    while let Some((sep, child)) = iter.next() {
                        lower = Some(sep.clone());
                        let upper = iter.peek().map(|(k, _)| k.clone()).or_else(|| high.clone());
                        children.push((*child, lower.clone(), upper));
                    }
                    for (child, lo, hi) in children.into_iter().rev() {
                        stack.push((child, lo, hi, depth + 1));
                    }
                }
            }
        }

        verify_sibling_chain(&mut report, &leaves);
        Ok(report)
    }

    /// Verifies one overflow chain: in-bounds pages, no cycle, and payload
    /// totalling exactly `vlen` bytes.
    fn verify_overflow_chain(
        &self,
        report: &mut VerifyReport,
        leaf: u64,
        head: u64,
        vlen: usize,
        page_count: u64,
    ) -> io::Result<()> {
        const DATA_OFF: usize = 10; // u64 next + u16 len (overflow layout)
        let store = self.store();
        let mut page = head;
        let mut total = 0usize;
        let max_pages = vlen / (PAGE_SIZE - DATA_OFF) + 2;
        let mut hops = 0usize;
        while page != u64::MAX {
            if page >= page_count {
                report.push(
                    VerifyClass::OverflowChain,
                    leaf,
                    format!("overflow page {page} outside file of {page_count} pages"),
                );
                return Ok(());
            }
            if !report.reachable.insert(page) {
                report.push(
                    VerifyClass::OverflowChain,
                    leaf,
                    format!("overflow page {page} referenced twice (cycle or sharing)"),
                );
                return Ok(());
            }
            hops += 1;
            if hops > max_pages {
                report.push(
                    VerifyClass::OverflowChain,
                    leaf,
                    format!("overflow chain exceeds {max_pages} pages for a {vlen}-byte value"),
                );
                return Ok(());
            }
            let (next, len) =
                store.read(PageId(page), |p| (p.read_u64(0), p.read_u16(8) as usize))?;
            if DATA_OFF + len > PAGE_SIZE {
                report.push(
                    VerifyClass::OverflowChain,
                    page,
                    format!("overflow chunk length {len} overruns the page"),
                );
                return Ok(());
            }
            total += len;
            page = next;
        }
        if total != vlen {
            report.push(
                VerifyClass::OverflowChain,
                leaf,
                format!("overflow chain delivers {total} bytes, cell declares {vlen}"),
            );
        }
        Ok(())
    }
}

/// Checks that each leaf's sibling link points at the next in-order leaf
/// and the last leaf terminates the chain. Uses the links captured during
/// the walk, so the chain is compared against the exact pages the in-order
/// traversal visited.
fn verify_sibling_chain(report: &mut VerifyReport, leaves: &[(u64, u64)]) {
    for pair in leaves.windows(2) {
        let ((page, link), (next, _)) = (pair[0], pair[1]);
        if link != next {
            report.push(
                VerifyClass::SiblingChain,
                page,
                format!("sibling link points at page {link}, in-order successor is {next}"),
            );
        }
    }
    if let Some(&(page, link)) = leaves.last() {
        if link != u64::MAX {
            report.push(
                VerifyClass::SiblingChain,
                page,
                format!("last leaf's sibling link is {link}, expected end-of-chain"),
            );
        }
    }
}

/// Checks that `keys` are strictly increasing and fall inside
/// `[low, high)` (bounds from the parent separators).
fn check_key_order(
    report: &mut VerifyReport,
    page: u64,
    keys: &[Vec<u8>],
    low: Option<&[u8]>,
    high: Option<&[u8]>,
) {
    for pair in keys.windows(2) {
        if pair[0] >= pair[1] {
            report.push(
                VerifyClass::KeyOrder,
                page,
                format!("keys out of order: {:?} !< {:?}", pair[0], pair[1]),
            );
        }
    }
    if let (Some(lo), Some(first)) = (low, keys.first()) {
        if first.as_slice() < lo {
            report.push(
                VerifyClass::KeyOrder,
                page,
                format!("first key {first:?} below parent separator {lo:?}"),
            );
        }
    }
    if let (Some(hi), Some(last)) = (high, keys.last()) {
        if last.as_slice() >= hi {
            report.push(
                VerifyClass::KeyOrder,
                page,
                format!("last key {last:?} not below parent separator {hi:?}"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagestore::PageStore;
    use std::sync::Arc;
    use tempfile::tempdir;

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn healthy_tree_verifies_clean() {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 64).unwrap());
        let t = BTree::open(store, 0).unwrap();
        for i in 0..5_000u64 {
            t.insert(&k(i), &(i * 2).to_le_bytes()).unwrap();
        }
        let r = t.verify().unwrap();
        assert!(r.is_clean(), "unexpected violations: {:?}", r.violations);
        assert_eq!(r.entries, 5_000);
        assert!(r.height >= 2);
        assert!(r.reachable.len() > 2);
    }

    #[test]
    fn healthy_overflow_values_verify_clean() {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 64).unwrap());
        let t = BTree::open(store, 0).unwrap();
        // Three pages' worth of payload forces a multi-page overflow chain.
        t.insert(b"big", &vec![7u8; PAGE_SIZE * 3 + 5]).unwrap();
        let r = t.verify().unwrap();
        assert!(r.is_clean(), "unexpected violations: {:?}", r.violations);
        assert!(r.reachable.len() >= 4, "chain pages counted as reachable");
    }

    #[test]
    fn swapped_slots_reported_as_key_order() {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 64).unwrap());
        let t = BTree::open(store.clone(), 0).unwrap();
        for i in 0..10u64 {
            t.insert(&k(i), b"v").unwrap();
        }
        let root = PageId(store.root(0));
        store
            .write(root, |p| {
                let a = p.read_u16(layout::SLOTS_OFF);
                let b = p.read_u16(layout::SLOTS_OFF + 2);
                p.write_u16(layout::SLOTS_OFF, b);
                p.write_u16(layout::SLOTS_OFF + 2, a);
            })
            .unwrap();
        let r = t.verify().unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| v.class == VerifyClass::KeyOrder));
    }

    #[test]
    fn garbage_page_reported_as_structure() {
        let dir = tempdir().unwrap();
        let store = Arc::new(PageStore::open(dir.path().join("t.db"), 64).unwrap());
        let t = BTree::open(store.clone(), 0).unwrap();
        t.insert(b"a", b"1").unwrap();
        let root = PageId(store.root(0));
        store.write(root, |p| p.bytes_mut().fill(0xFF)).unwrap();
        let r = t.verify().unwrap();
        assert!(r
            .violations
            .iter()
            .any(|v| v.class == VerifyClass::Structure));
    }
}
