//! # aion-lpg — the (temporal) labeled property graph data model
//!
//! This crate implements Section 3 of *Aion: Efficient Temporal Graph Data
//! Management* (EDBT 2024): the labeled property graph (LPG) model, the
//! universe of graph updates ordered by commit timestamp, the temporal LPG
//! whose entities carry `[τ_s, τ_e)` validity intervals, and the consistency
//! constraints every update sequence must satisfy.
//!
//! The types here are shared by every other crate in the workspace:
//!
//! * [`ids`] — strongly-typed identifiers (`NodeId`, `RelId`, `Timestamp`, …).
//! * [`value`] — property values (primitives, strings via the interner,
//!   primitive arrays).
//! * [`interner`] — the string store mapping labels / property keys / string
//!   values to 4-byte references (paper Sec. 4.2).
//! * [`interval`] — `[start, end)` interval algebra and the four temporal
//!   range specifiers of temporal Cypher (`AS OF`, `FROM..TO`, `BETWEEN..AND`,
//!   `CONTAINED IN`).
//! * [`entity`] — node / relationship snapshots and their versioned temporal
//!   counterparts.
//! * [`update`] — the update universe `U` and timestamped update tuples.
//! * [`delta`] — compact diffs between entity versions (paper Fig. 3 "Diff"
//!   records), including merge and apply.
//! * [`graph`] — a simple hash-map reference graph used as the correctness
//!   oracle in tests and as the materialization target for snapshots.
//! * [`error`] — the crate error type covering the constraint violations of
//!   Sec. 3 ("A graph entity g can be added only if g ∉ G", etc.).

pub mod delta;
pub mod entity;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod interval;
pub mod temporal;
pub mod update;
pub mod value;

pub use delta::{EntityDelta, PropChange};
pub use entity::{
    prop_get, prop_remove, prop_set, Node, Props, Relationship, TemporalNode, TemporalRel, Version,
};
pub use error::{GraphError, Result};
pub use graph::Graph;
pub use ids::{Direction, EntityId, NodeId, RelId, StrId, Timestamp, TS_MAX, TS_MIN};
pub use interner::Interner;
pub use interval::{Interval, TimeRange};
pub use temporal::TemporalGraph;
pub use update::{TimestampedUpdate, Update};
pub use value::PropertyValue;
