//! Temporal LPG views: per-entity version histories over a query window.
//!
//! A range query (`FROM`/`BETWEEN`/`CONTAINED IN`) returns a *temporal LPG*
//! (Sec. 3): entities annotated with `[τ_s, τ_e)` validity intervals, where
//! the same identifier may recur with non-overlapping intervals. This module
//! materializes that view by replaying updates over a base graph — it also
//! serves as the reference implementation ("naive replay") that the storage
//! engines are property-tested against.
//!
//! Version intervals are *clipped to the queried window*: a node created
//! before the window starts gets `τ_s = window.start`, mirroring what any
//! store can know without scanning unbounded history.

use crate::entity::{Node, Relationship, Version};
use crate::graph::Graph;
use crate::ids::{NodeId, RelId, Timestamp, TS_MAX};
use crate::interval::Interval;
use crate::update::{TimestampedUpdate, Update};
use std::collections::HashMap;

/// A temporal LPG over a window: full version histories per entity.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    /// Window covered by this view.
    pub window: Interval,
    /// Node version chains, ordered by start time.
    pub nodes: HashMap<NodeId, Vec<Version<Node>>>,
    /// Relationship version chains, ordered by start time.
    pub rels: HashMap<RelId, Vec<Version<Relationship>>>,
}

impl TemporalGraph {
    /// Builds the temporal view of `[window.start, window.end)` from the
    /// graph state at `window.start` plus the updates inside the window
    /// (which must be timestamp-ordered).
    pub fn build(base: &Graph, window: Interval, updates: &[TimestampedUpdate]) -> TemporalGraph {
        let mut tg = TemporalGraph {
            window,
            nodes: HashMap::new(),
            rels: HashMap::new(),
        };
        // Open a version for everything alive at the window start.
        let mut live = base.clone();
        for n in live.nodes() {
            tg.nodes
                .entry(n.id)
                .or_default()
                .push(Version::new(window.start, TS_MAX, n.clone()));
        }
        for r in live.rels() {
            tg.rels
                .entry(r.id)
                .or_default()
                .push(Version::new(window.start, TS_MAX, r.clone()));
        }
        for u in updates {
            debug_assert!(window.contains(u.ts), "update outside window");
            tg.step(&mut live, u);
        }
        tg.clip_open_versions();
        tg
    }

    fn step(&mut self, live: &mut Graph, u: &TimestampedUpdate) {
        // Close the current version of the touched entity (if any), apply the
        // update to the live graph, then open the new version.
        match &u.op {
            Update::DeleteNode { id } => {
                if live.apply(&u.op).is_ok() {
                    close_version(self.nodes.get_mut(id), u.ts);
                }
            }
            Update::DeleteRel { id } => {
                if live.apply(&u.op).is_ok() {
                    close_version(self.rels.get_mut(id), u.ts);
                }
            }
            op => {
                if live.apply(op).is_err() {
                    return;
                }
                match op.entity() {
                    crate::ids::EntityId::Node(id) => {
                        let chain = self.nodes.entry(id).or_default();
                        close_version(Some(chain), u.ts);
                        let node = live.node(id).expect("just applied").clone();
                        chain.push(Version::new(u.ts, TS_MAX, node));
                    }
                    crate::ids::EntityId::Rel(id) => {
                        let chain = self.rels.entry(id).or_default();
                        close_version(Some(chain), u.ts);
                        let rel = live.rel(id).expect("just applied").clone();
                        chain.push(Version::new(u.ts, TS_MAX, rel));
                    }
                }
            }
        }
    }

    /// Clamps still-open intervals to the window end.
    fn clip_open_versions(&mut self) {
        let end = self.window.end;
        if end == TS_MAX {
            return;
        }
        for chain in self.nodes.values_mut() {
            for v in chain.iter_mut() {
                if v.valid.end > end {
                    v.valid.end = end;
                }
            }
            chain.retain(|v| v.valid.start < v.valid.end);
        }
        for chain in self.rels.values_mut() {
            for v in chain.iter_mut() {
                if v.valid.end > end {
                    v.valid.end = end;
                }
            }
            chain.retain(|v| v.valid.start < v.valid.end);
        }
        self.nodes.retain(|_, c| !c.is_empty());
        self.rels.retain(|_, c| !c.is_empty());
    }

    /// The regular LPG valid at `ts` (must lie inside the window).
    pub fn graph_at(&self, ts: Timestamp) -> Graph {
        let mut g = Graph::new();
        for chain in self.nodes.values() {
            if let Some(v) = chain.iter().find(|v| v.valid.contains(ts)) {
                g.apply(&Update::AddNode {
                    id: v.data.id,
                    labels: v.data.labels.clone(),
                    props: v.data.props.clone(),
                })
                .expect("node chains are disjoint");
            }
        }
        for chain in self.rels.values() {
            if let Some(v) = chain.iter().find(|v| v.valid.contains(ts)) {
                g.apply(&Update::AddRel {
                    id: v.data.id,
                    src: v.data.src,
                    tgt: v.data.tgt,
                    label: v.data.label,
                    props: v.data.props.clone(),
                })
                .expect("endpoints of a valid rel are valid");
            }
        }
        g
    }

    /// Total versions stored (nodes + relationships).
    pub fn version_count(&self) -> usize {
        self.nodes.values().map(Vec::len).sum::<usize>()
            + self.rels.values().map(Vec::len).sum::<usize>()
    }

    /// Relationship versions overlapping `iv`, for temporal path algorithms
    /// (Fig. 2).
    pub fn rels_overlapping(&self, iv: Interval) -> Vec<&Version<Relationship>> {
        self.rels
            .values()
            .flat_map(|c| c.iter().filter(|v| v.valid.overlaps(&iv)))
            .collect()
    }
}

fn close_version<T>(chain: Option<&mut Vec<Version<T>>>, ts: Timestamp) {
    if let Some(chain) = chain {
        if let Some(last) = chain.last_mut() {
            if last.valid.end == TS_MAX {
                if last.valid.start >= ts {
                    // Same-timestamp rewrite: drop the zero-length version.
                    chain.pop();
                } else {
                    last.valid.end = ts;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StrId;
    use crate::value::PropertyValue;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    fn rid(i: u64) -> RelId {
        RelId::new(i)
    }
    fn tu(ts: u64, op: Update) -> TimestampedUpdate {
        TimestampedUpdate::new(ts, op)
    }

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: nid(i),
            labels: vec![],
            props: vec![],
        }
    }

    #[test]
    fn version_chains_from_scratch() {
        let base = Graph::new();
        let updates = vec![
            tu(1, add_node(1)),
            tu(2, add_node(2)),
            tu(
                3,
                Update::AddRel {
                    id: rid(1),
                    src: nid(1),
                    tgt: nid(2),
                    label: None,
                    props: vec![],
                },
            ),
            tu(
                5,
                Update::SetNodeProp {
                    id: nid(1),
                    key: StrId::new(0),
                    value: PropertyValue::Int(7),
                },
            ),
            tu(8, Update::DeleteRel { id: rid(1) }),
        ];
        let tg = TemporalGraph::build(&base, Interval::new(0, 10), &updates);
        let n1 = &tg.nodes[&nid(1)];
        assert_eq!(n1.len(), 2);
        assert_eq!(n1[0].valid, Interval::new(1, 5));
        assert_eq!(n1[1].valid, Interval::new(5, 10)); // clipped to window end
        assert_eq!(n1[1].data.prop(StrId::new(0)), Some(&PropertyValue::Int(7)));
        let r1 = &tg.rels[&rid(1)];
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].valid, Interval::new(3, 8));
    }

    #[test]
    fn graph_at_reconstructs_states() {
        let base = Graph::new();
        let updates = vec![
            tu(1, add_node(1)),
            tu(2, add_node(2)),
            tu(
                3,
                Update::AddRel {
                    id: rid(1),
                    src: nid(1),
                    tgt: nid(2),
                    label: None,
                    props: vec![],
                },
            ),
            tu(6, Update::DeleteRel { id: rid(1) }),
        ];
        let tg = TemporalGraph::build(&base, Interval::new(0, 10), &updates);
        assert_eq!(tg.graph_at(0).node_count(), 0);
        assert_eq!(tg.graph_at(2).node_count(), 2);
        assert_eq!(tg.graph_at(4).rel_count(), 1);
        let g8 = tg.graph_at(8);
        assert_eq!(g8.rel_count(), 0);
        assert_eq!(g8.node_count(), 2);
        g8.check_consistency().unwrap();
    }

    #[test]
    fn base_graph_versions_start_at_window() {
        let mut base = Graph::new();
        base.apply(&add_node(1)).unwrap();
        let tg = TemporalGraph::build(&base, Interval::new(100, 200), &[]);
        assert_eq!(tg.nodes[&nid(1)][0].valid, Interval::new(100, 200));
        assert_eq!(tg.version_count(), 1);
    }

    #[test]
    fn reinsertion_after_delete_gets_disjoint_intervals() {
        let base = Graph::new();
        let updates = vec![
            tu(1, add_node(1)),
            tu(3, Update::DeleteNode { id: nid(1) }),
            tu(7, add_node(1)),
        ];
        let tg = TemporalGraph::build(&base, Interval::new(0, 10), &updates);
        let chain = &tg.nodes[&nid(1)];
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].valid, Interval::new(1, 3));
        assert_eq!(chain[1].valid, Interval::new(7, 10));
        assert!(crate::entity::versions_well_formed(chain));
    }

    #[test]
    fn rels_overlapping_filters_by_interval() {
        let base = Graph::new();
        let updates = vec![
            tu(1, add_node(1)),
            tu(
                2,
                Update::AddRel {
                    id: rid(1),
                    src: nid(1),
                    tgt: nid(1),
                    label: None,
                    props: vec![],
                },
            ),
            tu(4, Update::DeleteRel { id: rid(1) }),
            tu(
                6,
                Update::AddRel {
                    id: rid(2),
                    src: nid(1),
                    tgt: nid(1),
                    label: None,
                    props: vec![],
                },
            ),
        ];
        let tg = TemporalGraph::build(&base, Interval::new(0, 10), &updates);
        assert_eq!(tg.rels_overlapping(Interval::new(2, 4)).len(), 1);
        assert_eq!(tg.rels_overlapping(Interval::new(0, 10)).len(), 2);
        assert_eq!(tg.rels_overlapping(Interval::new(4, 6)).len(), 0);
    }
}
