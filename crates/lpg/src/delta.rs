//! Entity deltas — the "Diff" record of Fig. 3.
//!
//! LineageStore and the TimeStore log may store an update either as a fully
//! materialized entity or as a *delta from the last update* (Sec. 4.2). A
//! delta records label additions/removals and property sets/removals; the
//! most significant bit of a label reference and the three MSBs of a property
//! reference carry the present/deleted state on disk (handled by the
//! `encoding` crate). Here we keep the logical form plus `apply`/`merge`.

use crate::entity::{prop_remove, prop_set, Node, Relationship};
use crate::ids::StrId;
use crate::update::Update;
use crate::value::PropertyValue;

/// One property change inside a delta.
#[derive(Clone, PartialEq, Debug)]
pub enum PropChange {
    /// Set `key` to `value`.
    Set(StrId, PropertyValue),
    /// Remove `key`.
    Remove(StrId),
}

impl PropChange {
    /// The key this change touches.
    pub fn key(&self) -> StrId {
        match self {
            PropChange::Set(k, _) | PropChange::Remove(k) => *k,
        }
    }
}

/// A compact diff between two consecutive versions of one entity.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EntityDelta {
    /// Labels added (nodes only).
    pub labels_added: Vec<StrId>,
    /// Labels removed (nodes only).
    pub labels_removed: Vec<StrId>,
    /// Property changes in application order.
    pub props: Vec<PropChange>,
}

impl EntityDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.labels_added.is_empty() && self.labels_removed.is_empty() && self.props.is_empty()
    }

    /// Builds the delta corresponding to a single modify [`Update`].
    /// Returns `None` for inserts/deletes, which are not deltas.
    pub fn from_update(op: &Update) -> Option<EntityDelta> {
        let mut d = EntityDelta::new();
        match op {
            Update::SetNodeProp { key, value, .. } | Update::SetRelProp { key, value, .. } => {
                d.props.push(PropChange::Set(*key, value.clone()));
            }
            Update::RemoveNodeProp { key, .. } | Update::RemoveRelProp { key, .. } => {
                d.props.push(PropChange::Remove(*key));
            }
            Update::AddLabel { label, .. } => d.labels_added.push(*label),
            Update::RemoveLabel { label, .. } => d.labels_removed.push(*label),
            _ => return None,
        }
        Some(d)
    }

    /// Merges `later` into `self` so that `self.apply*` is equivalent to
    /// applying `self` then `later`. Used when collapsing delta chains
    /// (Sec. 6.5 materialization strategy).
    pub fn merge(&mut self, later: &EntityDelta) {
        for l in &later.labels_added {
            self.labels_removed.retain(|x| x != l);
            if !self.labels_added.contains(l) {
                self.labels_added.push(*l);
            }
        }
        for l in &later.labels_removed {
            self.labels_added.retain(|x| x != l);
            if !self.labels_removed.contains(l) {
                self.labels_removed.push(*l);
            }
        }
        for p in &later.props {
            // A later change to the same key supersedes the earlier one.
            self.props.retain(|c| c.key() != p.key());
            self.props.push(p.clone());
        }
    }

    /// Applies this delta to a node snapshot in place.
    pub fn apply_to_node(&self, node: &mut Node) {
        for l in &self.labels_removed {
            if let Ok(i) = node.labels.binary_search(l) {
                node.labels.remove(i);
            }
        }
        for l in &self.labels_added {
            if let Err(i) = node.labels.binary_search(l) {
                node.labels.insert(i, *l);
            }
        }
        for p in &self.props {
            match p {
                PropChange::Set(k, v) => prop_set(&mut node.props, *k, v.clone()),
                PropChange::Remove(k) => {
                    prop_remove(&mut node.props, *k);
                }
            }
        }
    }

    /// Applies this delta to a relationship snapshot in place (label changes
    /// are ignored — relationship types are immutable in the model).
    pub fn apply_to_rel(&self, rel: &mut Relationship) {
        for p in &self.props {
            match p {
                PropChange::Set(k, v) => prop_set(&mut rel.props, *k, v.clone()),
                PropChange::Remove(k) => {
                    prop_remove(&mut rel.props, *k);
                }
            }
        }
    }

    /// Number of individual changes carried.
    pub fn len(&self) -> usize {
        self.labels_added.len() + self.labels_removed.len() + self.props.len()
    }

    /// A delta is *canonical* when no label appears in both the added and
    /// removed sets and no property key appears twice. [`from_update`]
    /// produces canonical deltas and [`merge`] preserves canonicity; apply
    /// semantics are only order-insensitive for canonical deltas.
    ///
    /// [`from_update`]: EntityDelta::from_update
    /// [`merge`]: EntityDelta::merge
    pub fn is_canonical(&self) -> bool {
        if self
            .labels_added
            .iter()
            .any(|l| self.labels_removed.contains(l))
        {
            return false;
        }
        let mut keys: Vec<StrId> = self.props.iter().map(PropChange::key).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        keys.len() == before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn sid(i: u32) -> StrId {
        StrId::new(i)
    }

    #[test]
    fn from_update_covers_modifies_only() {
        let set = Update::SetNodeProp {
            id: NodeId::new(1),
            key: sid(1),
            value: PropertyValue::Int(5),
        };
        let d = EntityDelta::from_update(&set).unwrap();
        assert_eq!(
            d.props,
            vec![PropChange::Set(sid(1), PropertyValue::Int(5))]
        );
        let add = Update::AddNode {
            id: NodeId::new(1),
            labels: vec![],
            props: vec![],
        };
        assert!(EntityDelta::from_update(&add).is_none());
    }

    #[test]
    fn apply_to_node_changes_labels_and_props() {
        let mut n = Node::new(
            NodeId::new(1),
            vec![sid(1), sid(2)],
            vec![(sid(10), PropertyValue::Int(1))],
        );
        let d = EntityDelta {
            labels_added: vec![sid(3)],
            labels_removed: vec![sid(1)],
            props: vec![
                PropChange::Set(sid(10), PropertyValue::Int(2)),
                PropChange::Set(sid(11), PropertyValue::Bool(true)),
                PropChange::Remove(sid(99)),
            ],
        };
        d.apply_to_node(&mut n);
        assert_eq!(n.labels, vec![sid(2), sid(3)]);
        assert_eq!(n.prop(sid(10)), Some(&PropertyValue::Int(2)));
        assert_eq!(n.prop(sid(11)), Some(&PropertyValue::Bool(true)));
    }

    #[test]
    fn merge_collapses_same_key_changes() {
        let mut a = EntityDelta {
            labels_added: vec![sid(1)],
            labels_removed: vec![],
            props: vec![PropChange::Set(sid(5), PropertyValue::Int(1))],
        };
        let b = EntityDelta {
            labels_added: vec![],
            labels_removed: vec![sid(1)],
            props: vec![
                PropChange::Set(sid(5), PropertyValue::Int(2)),
                PropChange::Remove(sid(6)),
            ],
        };
        a.merge(&b);
        assert!(a.labels_added.is_empty());
        assert_eq!(a.labels_removed, vec![sid(1)]);
        assert_eq!(
            a.props,
            vec![
                PropChange::Set(sid(5), PropertyValue::Int(2)),
                PropChange::Remove(sid(6)),
            ]
        );
    }

    #[test]
    fn merge_then_apply_equals_sequential_apply() {
        let base = Node::new(NodeId::new(1), vec![sid(0)], vec![]);
        let d1 = EntityDelta {
            labels_added: vec![sid(1)],
            labels_removed: vec![],
            props: vec![PropChange::Set(sid(2), PropertyValue::Int(1))],
        };
        let d2 = EntityDelta {
            labels_added: vec![],
            labels_removed: vec![sid(0)],
            props: vec![PropChange::Remove(sid(2))],
        };
        let mut seq = base.clone();
        d1.apply_to_node(&mut seq);
        d2.apply_to_node(&mut seq);
        let mut merged = d1.clone();
        merged.merge(&d2);
        let mut at_once = base;
        merged.apply_to_node(&mut at_once);
        assert_eq!(seq, at_once);
    }

    #[test]
    fn empties() {
        let d = EntityDelta::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
