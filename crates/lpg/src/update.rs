//! The universe of graph updates `U` (Sec. 3).
//!
//! Each committed transaction yields a batch of [`Update`]s tagged with the
//! transaction's commit timestamp, forming the infinite ordered sequence
//! `S = ⟨u₁, u₂, …⟩`. "A property/label modification is considered as a
//! deletion followed by an insertion" at the temporal-LPG level; at the update
//! level we keep fine-grained operations so stores can encode them as deltas
//! (Fig. 3).

use crate::entity::Props;
use crate::ids::{EntityId, NodeId, RelId, StrId, Timestamp};
use crate::value::PropertyValue;

/// A single update operation `op` on one graph entity.
#[derive(Clone, PartialEq, Debug)]
pub enum Update {
    /// Insert a node (`g ∉ G` required).
    AddNode {
        /// New node id.
        id: NodeId,
        /// Initial labels.
        labels: Vec<StrId>,
        /// Initial properties.
        props: Props,
    },
    /// Delete a node (`g ∈ G` and no incident relationships required).
    DeleteNode {
        /// Node to delete.
        id: NodeId,
    },
    /// Insert a relationship (`src`/`tgt` must exist).
    AddRel {
        /// New relationship id.
        id: RelId,
        /// Source node.
        src: NodeId,
        /// Target node.
        tgt: NodeId,
        /// Optional type label.
        label: Option<StrId>,
        /// Initial properties.
        props: Props,
    },
    /// Delete a relationship.
    DeleteRel {
        /// Relationship to delete.
        id: RelId,
    },
    /// Set (insert or overwrite) a node property.
    SetNodeProp {
        /// Target node.
        id: NodeId,
        /// Property key.
        key: StrId,
        /// New value.
        value: PropertyValue,
    },
    /// Remove a node property.
    RemoveNodeProp {
        /// Target node.
        id: NodeId,
        /// Property key.
        key: StrId,
    },
    /// Add a label to a node.
    AddLabel {
        /// Target node.
        id: NodeId,
        /// Label to add.
        label: StrId,
    },
    /// Remove a label from a node.
    RemoveLabel {
        /// Target node.
        id: NodeId,
        /// Label to remove.
        label: StrId,
    },
    /// Set (insert or overwrite) a relationship property.
    SetRelProp {
        /// Target relationship.
        id: RelId,
        /// Property key.
        key: StrId,
        /// New value.
        value: PropertyValue,
    },
    /// Remove a relationship property.
    RemoveRelProp {
        /// Target relationship.
        id: RelId,
        /// Property key.
        key: StrId,
    },
}

impl Update {
    /// The entity this update targets.
    pub fn entity(&self) -> EntityId {
        match self {
            Update::AddNode { id, .. }
            | Update::DeleteNode { id }
            | Update::SetNodeProp { id, .. }
            | Update::RemoveNodeProp { id, .. }
            | Update::AddLabel { id, .. }
            | Update::RemoveLabel { id, .. } => EntityId::Node(*id),
            Update::AddRel { id, .. }
            | Update::DeleteRel { id }
            | Update::SetRelProp { id, .. }
            | Update::RemoveRelProp { id, .. } => EntityId::Rel(*id),
        }
    }

    /// `true` for entity insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::AddNode { .. } | Update::AddRel { .. })
    }

    /// `true` for entity deletions.
    pub fn is_delete(&self) -> bool {
        matches!(self, Update::DeleteNode { .. } | Update::DeleteRel { .. })
    }

    /// `true` for in-place modifications (property/label changes).
    pub fn is_modify(&self) -> bool {
        !self.is_insert() && !self.is_delete()
    }

    /// `true` when the update touches a relationship.
    pub fn is_rel(&self) -> bool {
        matches!(self.entity(), EntityId::Rel(_))
    }
}

/// An update tuple `u = (τ, id, op)` with its commit timestamp.
#[derive(Clone, PartialEq, Debug)]
pub struct TimestampedUpdate {
    /// Commit (system) timestamp `τ`.
    pub ts: Timestamp,
    /// The operation.
    pub op: Update,
}

impl TimestampedUpdate {
    /// Tags `op` with commit time `ts`.
    pub fn new(ts: Timestamp, op: Update) -> Self {
        TimestampedUpdate { ts, op }
    }
}

/// Checks that an update sequence is ordered by non-decreasing timestamps
/// ("all updates are ordered by their timestamps", Sec. 3). Multiple updates
/// may share a timestamp when they commit in the same transaction.
pub fn updates_ordered(seq: &[TimestampedUpdate]) -> bool {
    seq.windows(2).all(|w| w[0].ts <= w[1].ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn update_classification() {
        let add = Update::AddNode {
            id: nid(1),
            labels: vec![],
            props: vec![],
        };
        let del = Update::DeleteRel { id: RelId::new(2) };
        let set = Update::SetNodeProp {
            id: nid(1),
            key: StrId::new(0),
            value: PropertyValue::Int(1),
        };
        assert!(add.is_insert() && !add.is_delete() && !add.is_modify());
        assert!(del.is_delete() && del.is_rel());
        assert!(set.is_modify() && !set.is_rel());
        assert_eq!(add.entity(), EntityId::Node(nid(1)));
        assert_eq!(del.entity(), EntityId::Rel(RelId::new(2)));
    }

    #[test]
    fn ordering_check() {
        let mk = |ts| TimestampedUpdate::new(ts, Update::DeleteNode { id: nid(ts) });
        assert!(updates_ordered(&[mk(1), mk(1), mk(2)]));
        assert!(!updates_ordered(&[mk(2), mk(1)]));
        assert!(updates_ordered(&[]));
    }
}
