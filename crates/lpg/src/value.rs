//! Property values.
//!
//! The paper (Sec. 3) allows property values to be "a string, a primitive
//! data type, or an array type". Strings are stored as 4-byte references
//! into the string store (Sec. 4.2), which here is [`crate::Interner`]; the
//! variants therefore carry [`StrId`]s rather than owned strings.

use crate::ids::StrId;
use std::fmt;

/// A property value attached to a node or relationship.
#[derive(Clone, PartialEq, Debug)]
pub enum PropertyValue {
    /// 64-bit signed integer (covers the paper's int/long).
    Int(i64),
    /// 64-bit IEEE float (covers the paper's float/double).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Interned string value.
    Str(StrId),
    /// Array of integers.
    IntArray(Vec<i64>),
    /// Array of floats.
    FloatArray(Vec<f64>),
}

/// Discriminant tags used by the on-disk property encoding (Sec. 4.2 reserves
/// "the three most significant bits of a property's reference" for state and
/// data type; we expose the data-type part here).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ValueTag {
    /// [`PropertyValue::Int`]
    Int = 0,
    /// [`PropertyValue::Float`]
    Float = 1,
    /// [`PropertyValue::Bool`]
    Bool = 2,
    /// [`PropertyValue::Str`]
    Str = 3,
    /// [`PropertyValue::IntArray`]
    IntArray = 4,
    /// [`PropertyValue::FloatArray`]
    FloatArray = 5,
}

impl ValueTag {
    /// Decodes a tag byte, if valid.
    pub fn from_u8(b: u8) -> Option<ValueTag> {
        Some(match b {
            0 => ValueTag::Int,
            1 => ValueTag::Float,
            2 => ValueTag::Bool,
            3 => ValueTag::Str,
            4 => ValueTag::IntArray,
            5 => ValueTag::FloatArray,
            _ => return None,
        })
    }
}

impl PropertyValue {
    /// The on-disk type tag of this value.
    pub fn tag(&self) -> ValueTag {
        match self {
            PropertyValue::Int(_) => ValueTag::Int,
            PropertyValue::Float(_) => ValueTag::Float,
            PropertyValue::Bool(_) => ValueTag::Bool,
            PropertyValue::Str(_) => ValueTag::Str,
            PropertyValue::IntArray(_) => ValueTag::IntArray,
            PropertyValue::FloatArray(_) => ValueTag::FloatArray,
        }
    }

    /// Integer accessor; `None` when the value is not an [`PropertyValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float accessor, also coercing integers (useful for aggregations).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropertyValue::Float(v) => Some(*v),
            PropertyValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropertyValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interned-string accessor.
    pub fn as_str_id(&self) -> Option<StrId> {
        match self {
            PropertyValue::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// The in-memory footprint estimate in bytes, used for Table 3-style
    /// memory accounting and GraphStore eviction sizing.
    pub fn heap_size(&self) -> usize {
        match self {
            PropertyValue::IntArray(v) => v.len() * 8,
            PropertyValue::FloatArray(v) => v.len() * 8,
            _ => 0,
        }
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Int(v) => write!(f, "{v}"),
            PropertyValue::Float(v) => write!(f, "{v}"),
            PropertyValue::Bool(v) => write!(f, "{v}"),
            PropertyValue::Str(s) => write!(f, "str#{}", s.raw()),
            PropertyValue::IntArray(v) => write!(f, "{v:?}"),
            PropertyValue::FloatArray(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::Int(v)
    }
}

impl From<f64> for PropertyValue {
    fn from(v: f64) -> Self {
        PropertyValue::Float(v)
    }
}

impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

impl From<StrId> for PropertyValue {
    fn from(v: StrId) -> Self {
        PropertyValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_coercion() {
        assert_eq!(PropertyValue::Int(4).as_int(), Some(4));
        assert_eq!(PropertyValue::Int(4).as_float(), Some(4.0));
        assert_eq!(PropertyValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(PropertyValue::Float(2.5).as_int(), None);
        assert_eq!(PropertyValue::Bool(true).as_bool(), Some(true));
        assert_eq!(
            PropertyValue::Str(StrId::new(9)).as_str_id(),
            Some(StrId::new(9))
        );
    }

    #[test]
    fn tags_roundtrip() {
        for v in [
            PropertyValue::Int(1),
            PropertyValue::Float(1.0),
            PropertyValue::Bool(false),
            PropertyValue::Str(StrId::new(0)),
            PropertyValue::IntArray(vec![1, 2]),
            PropertyValue::FloatArray(vec![0.5]),
        ] {
            let tag = v.tag();
            assert_eq!(ValueTag::from_u8(tag as u8), Some(tag));
        }
        assert_eq!(ValueTag::from_u8(200), None);
    }

    #[test]
    fn heap_size_counts_arrays_only() {
        assert_eq!(PropertyValue::Int(1).heap_size(), 0);
        assert_eq!(PropertyValue::IntArray(vec![1, 2, 3]).heap_size(), 24);
    }
}
