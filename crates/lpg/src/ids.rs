//! Strongly-typed identifiers and the discrete time domain `T`.
//!
//! The paper models time as "an ordered time domain of discrete positive
//! integer values" (Sec. 3). We use `u64` transaction timestamps; `0` is the
//! origin (`TS_MIN`) and `u64::MAX` stands for `∞` (`TS_MAX`), the end time of
//! a live entity.

use std::fmt;

/// A transaction (system) timestamp from the ordered time domain `T`.
pub type Timestamp = u64;

/// The beginning of time.
pub const TS_MIN: Timestamp = 0;

/// `∞` — the end timestamp of an entity that has not been deleted.
pub const TS_MAX: Timestamp = u64::MAX;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw `u64` identifier.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw `u64` value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the identifier as a `usize` index (for dense vectors).
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Unique identifier of a node (`nid` in the paper).
    NodeId
);
id_type!(
    /// Unique identifier of a relationship (`rid` in the paper).
    RelId
);

/// A 4-byte reference into the string store (paper Sec. 4.2).
///
/// Labels, property keys and string property values are all stored as
/// `StrId`s; the actual bytes live once in the [`crate::Interner`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StrId(pub u32);

impl StrId {
    /// Wraps a raw interner slot.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw slot number.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for StrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrId({})", self.0)
    }
}

/// Identifier of either kind of graph entity.
///
/// The update log stores nodes and relationships interleaved, so log entries
/// and diffs address entities with this sum type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EntityId {
    /// A node entity.
    Node(NodeId),
    /// A relationship entity.
    Rel(RelId),
}

impl EntityId {
    /// `true` if this identifies a node.
    #[inline]
    pub const fn is_node(self) -> bool {
        matches!(self, EntityId::Node(_))
    }

    /// The raw 64-bit id regardless of kind.
    #[inline]
    pub const fn raw(self) -> u64 {
        match self {
            EntityId::Node(n) => n.0,
            EntityId::Rel(r) => r.0,
        }
    }
}

impl From<NodeId> for EntityId {
    fn from(n: NodeId) -> Self {
        EntityId::Node(n)
    }
}

impl From<RelId> for EntityId {
    fn from(r: RelId) -> Self {
        EntityId::Rel(r)
    }
}

/// Traversal direction for relationship / neighbourhood queries (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Direction {
    /// Follow relationships from source to target.
    #[default]
    Outgoing,
    /// Follow relationships from target to source.
    Incoming,
    /// Follow relationships in both directions.
    Both,
}

impl Direction {
    /// Whether outgoing relationships participate.
    #[inline]
    pub const fn includes_out(self) -> bool {
        matches!(self, Direction::Outgoing | Direction::Both)
    }

    /// Whether incoming relationships participate.
    #[inline]
    pub const fn includes_in(self) -> bool {
        matches!(self, Direction::Incoming | Direction::Both)
    }

    /// The opposite direction (`Both` is its own reverse).
    #[inline]
    pub const fn reverse(self) -> Self {
        match self {
            Direction::Outgoing => Direction::Incoming,
            Direction::Incoming => Direction::Outgoing,
            Direction::Both => Direction::Both,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_ordering() {
        let a = NodeId::new(3);
        let b = NodeId::from(7u64);
        assert!(a < b);
        assert_eq!(u64::from(b), 7);
        assert_eq!(b.index(), 7);
        assert_eq!(format!("{a:?}"), "NodeId(3)");
        assert_eq!(format!("{a}"), "3");
    }

    #[test]
    fn entity_id_kinds() {
        let n: EntityId = NodeId::new(1).into();
        let r: EntityId = RelId::new(1).into();
        assert!(n.is_node());
        assert!(!r.is_node());
        assert_eq!(n.raw(), 1);
        assert_ne!(n, r);
    }

    #[test]
    fn direction_predicates() {
        assert!(Direction::Outgoing.includes_out());
        assert!(!Direction::Outgoing.includes_in());
        assert!(Direction::Incoming.includes_in());
        assert!(Direction::Both.includes_out() && Direction::Both.includes_in());
        assert_eq!(Direction::Outgoing.reverse(), Direction::Incoming);
        assert_eq!(Direction::Both.reverse(), Direction::Both);
    }

    #[test]
    fn timestamp_domain_bounds() {
        assert_eq!(TS_MIN, 0);
        assert_eq!(TS_MAX, u64::MAX);
        const { assert!(TS_MIN < TS_MAX) }
    }
}
