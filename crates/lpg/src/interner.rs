//! The string store (paper Sec. 4.2).
//!
//! "Instead of storing the strings directly in disk records, we replace them
//! with a reference (4 bytes) to a string store, substantially lowering the
//! size of labels and properties."
//!
//! [`Interner`] is a concurrent append-only string table. Interning the same
//! string twice returns the same [`StrId`]; ids are dense so the table can be
//! persisted and reloaded as a plain ordered list.

use crate::ids::StrId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    strings: Vec<Arc<str>>,
    lookup: HashMap<Arc<str>, StrId>,
}

/// Concurrent, append-only string interner backing labels, property keys and
/// string property values.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable 4-byte reference.
    pub fn intern(&self, s: &str) -> StrId {
        if let Some(id) = self.inner.read().lookup.get(s) {
            return *id;
        }
        let mut inner = self.inner.write();
        // Double-checked: another thread may have interned between locks.
        if let Some(id) = inner.lookup.get(s) {
            return *id;
        }
        let id = StrId::new(u32::try_from(inner.strings.len()).expect("string store overflow"));
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(arc.clone());
        inner.lookup.insert(arc, id);
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<StrId> {
        self.inner.read().lookup.get(s).copied()
    }

    /// Resolves a reference back to its string.
    pub fn resolve(&self, id: StrId) -> Option<Arc<str>> {
        self.inner.read().strings.get(id.raw() as usize).cloned()
    }

    /// Number of distinct strings stored.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dumps all strings in id order, e.g. for persistence.
    pub fn export(&self) -> Vec<Arc<str>> {
        self.inner.read().strings.clone()
    }

    /// Rebuilds an interner from an id-ordered dump produced by [`export`].
    ///
    /// [`export`]: Interner::export
    pub fn import<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let it = Interner::new();
        for s in strings {
            it.intern(s.as_ref());
        }
        it
    }

    /// Approximate heap usage in bytes (Table 3 style accounting).
    pub fn heap_size(&self) -> usize {
        let inner = self.inner.read();
        inner
            .strings
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Arc<str>>() * 2)
            .sum()
    }
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let it = Interner::new();
        let a = it.intern("Person");
        let b = it.intern("KNOWS");
        let a2 = it.intern("Person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a).as_deref(), Some("Person"));
        assert_eq!(it.resolve(StrId::new(99)), None);
    }

    #[test]
    fn get_does_not_insert() {
        let it = Interner::new();
        assert_eq!(it.get("nope"), None);
        assert!(it.is_empty());
        it.intern("yes");
        assert_eq!(it.get("yes"), Some(StrId::new(0)));
    }

    #[test]
    fn export_import_roundtrip() {
        let it = Interner::new();
        for s in ["a", "b", "c"] {
            it.intern(s);
        }
        let dump = it.export();
        let it2 = Interner::import(dump.iter().map(|s| s.to_string()));
        assert_eq!(it2.len(), 3);
        assert_eq!(it2.get("b"), Some(StrId::new(1)));
    }

    #[test]
    fn concurrent_interning_yields_consistent_ids() {
        let it = std::sync::Arc::new(Interner::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let it = it.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|i| it.intern(&format!("s{}", i % 10))).count()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(it.len(), 10);
    }
}
