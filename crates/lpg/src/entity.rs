//! Graph entities: nodes, relationships, and their temporal (versioned)
//! counterparts.
//!
//! A plain [`Node`] / [`Relationship`] is a snapshot of one entity at a point
//! in time — the shape returned by `AS OF` queries. [`TemporalNode`] /
//! [`TemporalRel`] carry a list of [`Version`]s with non-overlapping
//! `[τ_s, τ_e)` intervals — the shape returned by range queries (Sec. 3:
//! "a temporal LPG can include entities with the same identifier and
//! non-overlapping time intervals").

use crate::ids::{NodeId, RelId, StrId, Timestamp};
use crate::interval::Interval;
use crate::value::PropertyValue;

/// The key-value property bag of an entity.
///
/// Kept as a sorted `Vec` of `(key, value)` pairs: entities typically carry
/// few properties, and a sorted vector beats a hash map for footprint and
/// scan speed (perf-book: handle small collections specially).
pub type Props = Vec<(StrId, PropertyValue)>;

/// Looks up a property by key in a sorted property bag.
pub fn prop_get(props: &Props, key: StrId) -> Option<&PropertyValue> {
    props
        .binary_search_by_key(&key, |(k, _)| *k)
        .ok()
        .map(|i| &props[i].1)
}

/// Inserts or replaces a property, keeping the bag sorted.
pub fn prop_set(props: &mut Props, key: StrId, value: PropertyValue) {
    match props.binary_search_by_key(&key, |(k, _)| *k) {
        Ok(i) => props[i].1 = value,
        Err(i) => props.insert(i, (key, value)),
    }
}

/// Removes a property by key; returns the old value if present.
pub fn prop_remove(props: &mut Props, key: StrId) -> Option<PropertyValue> {
    props
        .binary_search_by_key(&key, |(k, _)| *k)
        .ok()
        .map(|i| props.remove(i).1)
}

/// A node snapshot: `v = (nid, l, p)` (Sec. 3).
#[derive(Clone, PartialEq, Debug)]
pub struct Node {
    /// Unique node identifier.
    pub id: NodeId,
    /// Sorted set of labels.
    pub labels: Vec<StrId>,
    /// Sorted property bag.
    pub props: Props,
}

impl Node {
    /// A new node with sorted, deduplicated labels and sorted properties.
    pub fn new(id: NodeId, mut labels: Vec<StrId>, mut props: Props) -> Self {
        labels.sort_unstable();
        labels.dedup();
        props.sort_unstable_by_key(|(k, _)| *k);
        Node { id, labels, props }
    }

    /// Whether the node carries `label`.
    pub fn has_label(&self, label: StrId) -> bool {
        self.labels.binary_search(&label).is_ok()
    }

    /// Property lookup.
    pub fn prop(&self, key: StrId) -> Option<&PropertyValue> {
        prop_get(&self.props, key)
    }

    /// Estimated in-memory footprint in bytes (Table 3 accounting: ~60 B per
    /// node plus label/property payload).
    pub fn heap_size(&self) -> usize {
        let base = std::mem::size_of::<Node>();
        let labels = self.labels.len() * std::mem::size_of::<StrId>();
        let props: usize = self
            .props
            .iter()
            .map(|(_, v)| std::mem::size_of::<(StrId, PropertyValue)>() + v.heap_size())
            .sum();
        base + labels + props
    }
}

/// A relationship snapshot: `e = (rid, src, tgt, l, p)` (Sec. 3). The label
/// is "a single (or empty) label".
#[derive(Clone, PartialEq, Debug)]
pub struct Relationship {
    /// Unique relationship identifier.
    pub id: RelId,
    /// Source node (direction is src → tgt).
    pub src: NodeId,
    /// Target node.
    pub tgt: NodeId,
    /// Optional relationship type.
    pub label: Option<StrId>,
    /// Sorted property bag.
    pub props: Props,
}

impl Relationship {
    /// A new relationship with sorted properties.
    pub fn new(
        id: RelId,
        src: NodeId,
        tgt: NodeId,
        label: Option<StrId>,
        mut props: Props,
    ) -> Self {
        props.sort_unstable_by_key(|(k, _)| *k);
        Relationship {
            id,
            src,
            tgt,
            label,
            props,
        }
    }

    /// Property lookup.
    pub fn prop(&self, key: StrId) -> Option<&PropertyValue> {
        prop_get(&self.props, key)
    }

    /// Given one endpoint, returns the other (`None` if `node` is neither).
    /// For self-loops the answer is the node itself.
    pub fn other_end(&self, node: NodeId) -> Option<NodeId> {
        if node == self.src {
            Some(self.tgt)
        } else if node == self.tgt {
            Some(self.src)
        } else {
            None
        }
    }

    /// Estimated in-memory footprint in bytes (Table 3 accounting: ~68 B per
    /// relationship plus property payload).
    pub fn heap_size(&self) -> usize {
        let base = std::mem::size_of::<Relationship>();
        let props: usize = self
            .props
            .iter()
            .map(|(_, v)| std::mem::size_of::<(StrId, PropertyValue)>() + v.heap_size())
            .sum();
        base + props
    }
}

/// One version of an entity's payload, valid over a `[τ_s, τ_e)` interval.
#[derive(Clone, PartialEq, Debug)]
pub struct Version<T> {
    /// Validity interval of this version.
    pub valid: Interval,
    /// The entity state during the interval.
    pub data: T,
}

impl<T> Version<T> {
    /// A version valid over `[start, end)`.
    pub fn new(start: Timestamp, end: Timestamp, data: T) -> Self {
        Version {
            valid: Interval::new(start, end),
            data,
        }
    }
}

/// The full history of one node: timestamp-ordered, non-overlapping versions.
pub type TemporalNode = Vec<Version<Node>>;

/// The full history of one relationship.
pub type TemporalRel = Vec<Version<Relationship>>;

/// Checks the temporal-LPG invariant: versions are ordered by start time and
/// their intervals do not overlap.
pub fn versions_well_formed<T>(versions: &[Version<T>]) -> bool {
    versions
        .windows(2)
        .all(|w| w[0].valid.end <= w[1].valid.start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> StrId {
        StrId::new(i)
    }

    #[test]
    fn node_normalizes_labels_and_props() {
        let n = Node::new(
            NodeId::new(1),
            vec![sid(3), sid(1), sid(3)],
            vec![
                (sid(9), PropertyValue::Int(9)),
                (sid(2), PropertyValue::Int(2)),
            ],
        );
        assert_eq!(n.labels, vec![sid(1), sid(3)]);
        assert!(n.has_label(sid(3)));
        assert!(!n.has_label(sid(2)));
        assert_eq!(n.prop(sid(2)), Some(&PropertyValue::Int(2)));
        assert_eq!(n.prop(sid(5)), None);
    }

    #[test]
    fn prop_bag_operations() {
        let mut p: Props = Vec::new();
        prop_set(&mut p, sid(5), PropertyValue::Int(1));
        prop_set(&mut p, sid(1), PropertyValue::Int(2));
        prop_set(&mut p, sid(5), PropertyValue::Int(3));
        assert_eq!(p.len(), 2);
        assert_eq!(prop_get(&p, sid(5)), Some(&PropertyValue::Int(3)));
        assert_eq!(prop_remove(&mut p, sid(1)), Some(PropertyValue::Int(2)));
        assert_eq!(prop_remove(&mut p, sid(1)), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn relationship_other_end_and_self_loop() {
        let r = Relationship::new(RelId::new(1), NodeId::new(2), NodeId::new(3), None, vec![]);
        assert_eq!(r.other_end(NodeId::new(2)), Some(NodeId::new(3)));
        assert_eq!(r.other_end(NodeId::new(3)), Some(NodeId::new(2)));
        assert_eq!(r.other_end(NodeId::new(9)), None);
        let loop_rel =
            Relationship::new(RelId::new(2), NodeId::new(4), NodeId::new(4), None, vec![]);
        assert_eq!(loop_rel.other_end(NodeId::new(4)), Some(NodeId::new(4)));
    }

    #[test]
    fn version_well_formedness() {
        let n = Node::new(NodeId::new(1), vec![], vec![]);
        let good = vec![
            Version::new(0, 5, n.clone()),
            Version::new(5, 9, n.clone()),
            Version::new(12, 20, n.clone()),
        ];
        assert!(versions_well_formed(&good));
        let bad = vec![Version::new(0, 6, n.clone()), Version::new(5, 9, n)];
        assert!(!versions_well_formed(&bad));
    }

    #[test]
    fn heap_sizes_are_plausible() {
        let n = Node::new(NodeId::new(1), vec![sid(0)], vec![]);
        assert!(n.heap_size() >= std::mem::size_of::<Node>());
        let r = Relationship::new(
            RelId::new(1),
            NodeId::new(1),
            NodeId::new(2),
            Some(sid(0)),
            vec![(sid(1), PropertyValue::IntArray(vec![1, 2, 3, 4]))],
        );
        assert!(r.heap_size() > std::mem::size_of::<Relationship>() + 24);
    }
}
