//! A straightforward in-memory LPG used as (i) the materialization target for
//! snapshots, (ii) the correctness oracle in property tests, and (iii) the
//! validator that enforces the Sec. 3 constraints on update sequences.
//!
//! This is deliberately the *simple* representation; the compute-efficient
//! Sortledton-style structure of Sec. 5.2 lives in the `dyngraph` crate.

use crate::entity::{prop_remove, prop_set, Node, Relationship};
use crate::error::{GraphError, Result};
use crate::ids::{Direction, NodeId, RelId};
use crate::update::Update;
use std::collections::HashMap;

/// A consistent labeled property graph `G = (V, E)`.
#[derive(Clone, Default, Debug)]
pub struct Graph {
    nodes: HashMap<NodeId, Node>,
    rels: HashMap<RelId, Relationship>,
    /// Outgoing adjacency: src → rel ids.
    out_adj: HashMap<NodeId, Vec<RelId>>,
    /// Incoming adjacency: tgt → rel ids.
    in_adj: HashMap<NodeId, Vec<RelId>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relationships `|E|`.
    pub fn rel_count(&self) -> usize {
        self.rels.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Relationship lookup.
    pub fn rel(&self, id: RelId) -> Option<&Relationship> {
        self.rels.get(&id)
    }

    /// Whether `id` is present.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Whether `id` is present.
    pub fn has_rel(&self, id: RelId) -> bool {
        self.rels.contains_key(&id)
    }

    /// Iterates over all nodes in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Iterates over all relationships in unspecified order.
    pub fn rels(&self) -> impl Iterator<Item = &Relationship> {
        self.rels.values()
    }

    /// The relationship ids incident to `node` in the given direction.
    /// For `Both`, self-loops appear twice (once per direction), matching the
    /// degree semantics used by the evaluation datasets.
    pub fn relationships(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
        let mut out = Vec::new();
        if dir.includes_out() {
            if let Some(v) = self.out_adj.get(&node) {
                out.extend_from_slice(v);
            }
        }
        if dir.includes_in() {
            if let Some(v) = self.in_adj.get(&node) {
                out.extend_from_slice(v);
            }
        }
        out
    }

    /// The degree of `node` in the given direction.
    pub fn degree(&self, node: NodeId, dir: Direction) -> usize {
        let mut d = 0;
        if dir.includes_out() {
            d += self.out_adj.get(&node).map_or(0, Vec::len);
        }
        if dir.includes_in() {
            d += self.in_adj.get(&node).map_or(0, Vec::len);
        }
        d
    }

    /// Neighbour node ids (deduplicated) of `node`.
    pub fn neighbours(&self, node: NodeId, dir: Direction) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .relationships(node, dir)
            .into_iter()
            .filter_map(|rid| self.rels.get(&rid))
            .filter_map(|r| r.other_end(node))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Applies one update, enforcing every Sec. 3 constraint. On error the
    /// graph is unchanged.
    pub fn apply(&mut self, op: &Update) -> Result<()> {
        match op {
            Update::AddNode { id, labels, props } => {
                if self.nodes.contains_key(id) {
                    return Err(GraphError::NodeExists(*id));
                }
                self.nodes
                    .insert(*id, Node::new(*id, labels.clone(), props.clone()));
            }
            Update::DeleteNode { id } => {
                if !self.nodes.contains_key(id) {
                    return Err(GraphError::NodeNotFound(*id));
                }
                let has_rels = self.out_adj.get(id).is_some_and(|v| !v.is_empty())
                    || self.in_adj.get(id).is_some_and(|v| !v.is_empty());
                if has_rels {
                    return Err(GraphError::NodeHasRelationships(*id));
                }
                self.nodes.remove(id);
                self.out_adj.remove(id);
                self.in_adj.remove(id);
            }
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                if self.rels.contains_key(id) {
                    return Err(GraphError::RelExists(*id));
                }
                if !self.nodes.contains_key(src) {
                    return Err(GraphError::EndpointMissing {
                        rel: *id,
                        node: *src,
                    });
                }
                if !self.nodes.contains_key(tgt) {
                    return Err(GraphError::EndpointMissing {
                        rel: *id,
                        node: *tgt,
                    });
                }
                self.rels.insert(
                    *id,
                    Relationship::new(*id, *src, *tgt, *label, props.clone()),
                );
                self.out_adj.entry(*src).or_default().push(*id);
                self.in_adj.entry(*tgt).or_default().push(*id);
            }
            Update::DeleteRel { id } => {
                let rel = self.rels.remove(id).ok_or(GraphError::RelNotFound(*id))?;
                if let Some(v) = self.out_adj.get_mut(&rel.src) {
                    v.retain(|r| r != id);
                }
                if let Some(v) = self.in_adj.get_mut(&rel.tgt) {
                    v.retain(|r| r != id);
                }
            }
            Update::SetNodeProp { id, key, value } => {
                let n = self
                    .nodes
                    .get_mut(id)
                    .ok_or(GraphError::NodeNotFound(*id))?;
                prop_set(&mut n.props, *key, value.clone());
            }
            Update::RemoveNodeProp { id, key } => {
                let n = self
                    .nodes
                    .get_mut(id)
                    .ok_or(GraphError::NodeNotFound(*id))?;
                prop_remove(&mut n.props, *key);
            }
            Update::AddLabel { id, label } => {
                let n = self
                    .nodes
                    .get_mut(id)
                    .ok_or(GraphError::NodeNotFound(*id))?;
                if let Err(i) = n.labels.binary_search(label) {
                    n.labels.insert(i, *label);
                }
            }
            Update::RemoveLabel { id, label } => {
                let n = self
                    .nodes
                    .get_mut(id)
                    .ok_or(GraphError::NodeNotFound(*id))?;
                if let Ok(i) = n.labels.binary_search(label) {
                    n.labels.remove(i);
                }
            }
            Update::SetRelProp { id, key, value } => {
                let r = self.rels.get_mut(id).ok_or(GraphError::RelNotFound(*id))?;
                prop_set(&mut r.props, *key, value.clone());
            }
            Update::RemoveRelProp { id, key } => {
                let r = self.rels.get_mut(id).ok_or(GraphError::RelNotFound(*id))?;
                prop_remove(&mut r.props, *key);
            }
        }
        Ok(())
    }

    /// Applies a batch of updates, stopping at the first error.
    pub fn apply_all<'a, I>(&mut self, ops: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a Update>,
    {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Verifies structural consistency: every relationship endpoint exists
    /// and adjacency lists mirror the relationship table. Used in tests and
    /// after recovery.
    pub fn check_consistency(&self) -> Result<()> {
        for r in self.rels.values() {
            if !self.nodes.contains_key(&r.src) {
                return Err(GraphError::EndpointMissing {
                    rel: r.id,
                    node: r.src,
                });
            }
            if !self.nodes.contains_key(&r.tgt) {
                return Err(GraphError::EndpointMissing {
                    rel: r.id,
                    node: r.tgt,
                });
            }
            let out_ok = self.out_adj.get(&r.src).is_some_and(|v| v.contains(&r.id));
            let in_ok = self.in_adj.get(&r.tgt).is_some_and(|v| v.contains(&r.id));
            if !out_ok || !in_ok {
                return Err(GraphError::Storage(format!(
                    "adjacency desync for relationship {}",
                    r.id
                )));
            }
        }
        let adj_total: usize = self.out_adj.values().map(Vec::len).sum();
        if adj_total != self.rels.len() {
            return Err(GraphError::Storage("dangling adjacency entries".into()));
        }
        Ok(())
    }

    /// Estimated in-memory footprint in bytes (Table 3 accounting).
    pub fn heap_size(&self) -> usize {
        let nodes: usize = self.nodes.values().map(Node::heap_size).sum();
        let rels: usize = self.rels.values().map(Relationship::heap_size).sum();
        let adj = (self.out_adj.len() + self.in_adj.len()) * 48
            + self.rels.len() * 2 * std::mem::size_of::<RelId>();
        nodes + rels + adj
    }

    /// Structural equality ignoring internal ordering; used by tests that
    /// compare store reconstructions against this oracle.
    pub fn same_as(&self, other: &Graph) -> bool {
        if self.node_count() != other.node_count() || self.rel_count() != other.rel_count() {
            return false;
        }
        self.nodes
            .iter()
            .all(|(id, n)| other.nodes.get(id) == Some(n))
            && self
                .rels
                .iter()
                .all(|(id, r)| other.rels.get(id) == Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StrId;
    use crate::value::PropertyValue;

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    fn rid(i: u64) -> RelId {
        RelId::new(i)
    }

    fn add_node(id: u64) -> Update {
        Update::AddNode {
            id: nid(id),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, src: u64, tgt: u64) -> Update {
        Update::AddRel {
            id: rid(id),
            src: nid(src),
            tgt: nid(tgt),
            label: None,
            props: vec![],
        }
    }

    #[test]
    fn insert_constraints() {
        let mut g = Graph::new();
        g.apply(&add_node(1)).unwrap();
        assert_eq!(g.apply(&add_node(1)), Err(GraphError::NodeExists(nid(1))));
        assert!(matches!(
            g.apply(&add_rel(1, 1, 2)),
            Err(GraphError::EndpointMissing { .. })
        ));
        g.apply(&add_node(2)).unwrap();
        g.apply(&add_rel(1, 1, 2)).unwrap();
        assert_eq!(
            g.apply(&add_rel(1, 1, 2)),
            Err(GraphError::RelExists(rid(1)))
        );
        g.check_consistency().unwrap();
    }

    #[test]
    fn delete_constraints() {
        let mut g = Graph::new();
        g.apply_all([&add_node(1), &add_node(2), &add_rel(1, 1, 2)])
            .unwrap();
        // Cannot delete a node with incident relationships.
        assert_eq!(
            g.apply(&Update::DeleteNode { id: nid(1) }),
            Err(GraphError::NodeHasRelationships(nid(1)))
        );
        g.apply(&Update::DeleteRel { id: rid(1) }).unwrap();
        g.apply(&Update::DeleteNode { id: nid(1) }).unwrap();
        assert_eq!(
            g.apply(&Update::DeleteNode { id: nid(1) }),
            Err(GraphError::NodeNotFound(nid(1)))
        );
        g.check_consistency().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.rel_count(), 0);
    }

    #[test]
    fn adjacency_and_neighbours() {
        let mut g = Graph::new();
        g.apply_all([
            &add_node(1),
            &add_node(2),
            &add_node(3),
            &add_rel(10, 1, 2),
            &add_rel(11, 1, 3),
            &add_rel(12, 3, 1),
        ])
        .unwrap();
        assert_eq!(g.degree(nid(1), Direction::Outgoing), 2);
        assert_eq!(g.degree(nid(1), Direction::Incoming), 1);
        assert_eq!(g.degree(nid(1), Direction::Both), 3);
        assert_eq!(g.neighbours(nid(1), Direction::Both), vec![nid(2), nid(3)]);
        assert_eq!(g.neighbours(nid(2), Direction::Outgoing), vec![]);
        assert_eq!(g.neighbours(nid(2), Direction::Incoming), vec![nid(1)]);
    }

    #[test]
    fn self_loop_counts_twice_in_both() {
        let mut g = Graph::new();
        g.apply_all([&add_node(1), &add_rel(5, 1, 1)]).unwrap();
        assert_eq!(g.degree(nid(1), Direction::Both), 2);
        assert_eq!(g.neighbours(nid(1), Direction::Both), vec![nid(1)]);
    }

    #[test]
    fn property_and_label_updates() {
        let mut g = Graph::new();
        g.apply(&add_node(1)).unwrap();
        g.apply(&Update::SetNodeProp {
            id: nid(1),
            key: StrId::new(0),
            value: PropertyValue::Int(42),
        })
        .unwrap();
        g.apply(&Update::AddLabel {
            id: nid(1),
            label: StrId::new(1),
        })
        .unwrap();
        let n = g.node(nid(1)).unwrap();
        assert_eq!(n.prop(StrId::new(0)), Some(&PropertyValue::Int(42)));
        assert!(n.has_label(StrId::new(1)));
        g.apply(&Update::RemoveNodeProp {
            id: nid(1),
            key: StrId::new(0),
        })
        .unwrap();
        g.apply(&Update::RemoveLabel {
            id: nid(1),
            label: StrId::new(1),
        })
        .unwrap();
        let n = g.node(nid(1)).unwrap();
        assert_eq!(n.prop(StrId::new(0)), None);
        assert!(!n.has_label(StrId::new(1)));
    }

    #[test]
    fn same_as_detects_differences() {
        let mut a = Graph::new();
        let mut b = Graph::new();
        a.apply(&add_node(1)).unwrap();
        b.apply(&add_node(1)).unwrap();
        assert!(a.same_as(&b));
        b.apply(&Update::SetNodeProp {
            id: nid(1),
            key: StrId::new(0),
            value: PropertyValue::Int(1),
        })
        .unwrap();
        assert!(!a.same_as(&b));
    }
}
