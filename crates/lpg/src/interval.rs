//! `[start, end)` validity intervals and temporal Cypher range specifiers.
//!
//! A temporal LPG entity is valid over `[τ_s, τ_e)` with `τ_s < τ_e`
//! (Sec. 3). Temporal Cypher offers four interval specifiers (Sec. 3,
//! "Temporal Cypher"):
//!
//! * `AS OF t`            — the valid graph at `t` (a single point);
//! * `FROM t_i TO t_j`    — the open interval `(t_i, t_j)`;
//! * `BETWEEN t_i AND t_j`— the half-open interval `[t_i, t_j)`;
//! * `CONTAINED IN (t_i, t_j)` — the closed interval `[t_i, t_j]`.

use crate::ids::{Timestamp, TS_MAX};
use std::fmt;

/// A half-open validity interval `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start time `τ_s`.
    pub start: Timestamp,
    /// Exclusive end time `τ_e` (`TS_MAX` = still alive).
    pub end: Timestamp,
}

impl Interval {
    /// Builds `[start, end)`. Panics (debug) if `start >= end`, mirroring the
    /// model constraint `τ_s(g) < τ_e(g)`.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        debug_assert!(start < end, "interval must satisfy start < end");
        Interval { start, end }
    }

    /// `[start, ∞)` — an entity inserted at `start` and never deleted.
    #[inline]
    pub fn open_ended(start: Timestamp) -> Self {
        Interval { start, end: TS_MAX }
    }

    /// Whether the point `t` lies inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether two intervals share at least one time point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// `true` when the entity was never deleted.
    #[inline]
    pub fn is_open_ended(&self) -> bool {
        self.end == TS_MAX
    }

    /// Interval duration; `None` for open-ended intervals.
    pub fn duration(&self) -> Option<u64> {
        (!self.is_open_ended()).then(|| self.end - self.start)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_open_ended() {
            write!(f, "[{}, ∞)", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

/// One of the four temporal Cypher interval specifiers, normalized to a
/// half-open query window plus a point/range distinction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimeRange {
    /// `AS OF t` — the graph state at exactly `t`.
    AsOf(Timestamp),
    /// `FROM t_i TO t_j` — history over the open interval `(t_i, t_j)`.
    FromTo(Timestamp, Timestamp),
    /// `BETWEEN t_i AND t_j` — history over `[t_i, t_j)`.
    Between(Timestamp, Timestamp),
    /// `CONTAINED IN (t_i, t_j)` — history over the closed `[t_i, t_j]`.
    ContainedIn(Timestamp, Timestamp),
}

impl TimeRange {
    /// Normalizes the specifier to a half-open window `[lo, hi)` over the
    /// discrete integer time domain.
    ///
    /// * `AS OF t`            → `[t, t+1)`
    /// * `FROM a TO b`        → `[a+1, b)`  (both bounds exclusive)
    /// * `BETWEEN a AND b`    → `[a, b)`
    /// * `CONTAINED IN (a,b)` → `[a, b+1)`  (both bounds inclusive)
    pub fn to_half_open(&self) -> Interval {
        match *self {
            TimeRange::AsOf(t) => {
                // Clamp so AS OF ∞ still yields a valid one-tick window.
                let t = t.min(TS_MAX - 1);
                Interval::new(t, t + 1)
            }
            TimeRange::FromTo(a, b) => Interval {
                start: a.saturating_add(1),
                end: b,
            },
            TimeRange::Between(a, b) => Interval { start: a, end: b },
            TimeRange::ContainedIn(a, b) => Interval {
                start: a,
                end: b.saturating_add(1),
            },
        }
    }

    /// `true` for point (`AS OF`) queries that return a regular LPG rather
    /// than a temporal LPG.
    pub fn is_point(&self) -> bool {
        matches!(self, TimeRange::AsOf(_))
    }

    /// The query window is empty (e.g. `FROM 5 TO 5`).
    pub fn is_empty(&self) -> bool {
        let w = self.to_half_open();
        w.start >= w.end
    }

    /// Whether an entity valid over `valid` is visible to this range.
    pub fn matches(&self, valid: &Interval) -> bool {
        let w = self.to_half_open();
        w.start < w.end && valid.overlaps(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let i = Interval::new(2, 5);
        assert!(!i.contains(1));
        assert!(i.contains(2));
        assert!(i.contains(4));
        assert!(!i.contains(5));
    }

    #[test]
    fn open_ended_contains_everything_after_start() {
        let i = Interval::open_ended(10);
        assert!(i.contains(10));
        assert!(i.contains(u64::MAX - 1));
        assert!(i.is_open_ended());
        assert_eq!(i.duration(), None);
        assert_eq!(Interval::new(2, 7).duration(), Some(5));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Interval::new(0, 4);
        let b = Interval::new(3, 8);
        let c = Interval::new(4, 8);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
        assert_eq!(a.intersect(&b), Some(Interval::new(3, 4)));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn range_normalization_matches_paper_semantics() {
        // AS OF t = point query at t.
        assert_eq!(TimeRange::AsOf(5).to_half_open(), Interval::new(5, 6));
        // FROM a TO b excludes both bounds.
        assert_eq!(TimeRange::FromTo(2, 6).to_half_open(), Interval::new(3, 6));
        // BETWEEN a AND b: [a, b).
        assert_eq!(TimeRange::Between(2, 6).to_half_open(), Interval::new(2, 6));
        // CONTAINED IN (a, b): [a, b].
        assert_eq!(
            TimeRange::ContainedIn(2, 6).to_half_open(),
            Interval::new(2, 7)
        );
    }

    #[test]
    fn empty_ranges() {
        assert!(TimeRange::Between(5, 5).is_empty());
        assert!(TimeRange::FromTo(5, 6).is_empty());
        assert!(!TimeRange::ContainedIn(5, 5).is_empty());
        assert!(TimeRange::AsOf(5).is_point());
    }

    #[test]
    fn matches_visibility() {
        let lived = Interval::new(3, 9);
        assert!(TimeRange::AsOf(3).matches(&lived));
        assert!(TimeRange::AsOf(8).matches(&lived));
        assert!(!TimeRange::AsOf(9).matches(&lived));
        assert!(TimeRange::Between(0, 4).matches(&lived));
        assert!(!TimeRange::Between(0, 3).matches(&lived));
        assert!(TimeRange::ContainedIn(9, 12).matches(&Interval::open_ended(9)));
    }
}
