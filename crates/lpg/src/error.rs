//! Errors covering the LPG consistency constraints (Sec. 3) and storage
//! failures raised further up the stack.

use crate::ids::{NodeId, RelId};
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Everything that can go wrong while mutating or reading a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// "A graph entity g can be added to a graph G only if g ∉ G."
    NodeExists(NodeId),
    /// Same constraint for relationships.
    RelExists(RelId),
    /// "A graph entity g can be deleted if g ∈ G during deletion."
    NodeNotFound(NodeId),
    /// Relationship lookup failed.
    RelNotFound(RelId),
    /// "Relationships also require their src and tgt to exist."
    EndpointMissing {
        /// The relationship being inserted.
        rel: RelId,
        /// The endpoint that does not exist.
        node: NodeId,
    },
    /// "When a node is deleted, we must first delete its relationships."
    NodeHasRelationships(NodeId),
    /// Application time constraint: start must be less than end.
    InvalidApplicationTime,
    /// A query used an empty or inverted time range.
    InvalidTimeRange,
    /// Attempted to commit at or before an already-committed timestamp
    /// ("no further changes are allowed on past updates").
    NonMonotonicCommit {
        /// The attempted commit timestamp.
        attempted: u64,
        /// The latest already-committed timestamp.
        latest: u64,
    },
    /// Underlying storage failure (I/O, …).
    Storage(String),
    /// A stored record failed to decode or violated a structural
    /// invariant: on-disk corruption surfaced as a typed error instead
    /// of a panic, so `aion-fsck` can report it and reads can degrade
    /// gracefully.
    CorruptRecord(String),
    /// A query-execution invariant was violated (malformed plan reached
    /// the executor).
    ExecError(String),
    /// The request's execution budget expired (per-request deadline
    /// passed or the server cancelled it during drain); execution stopped
    /// cooperatively at a check point, never mid-commit.
    DeadlineExceeded,
    /// The request exceeded its row or byte result budget. Distinct from
    /// [`GraphError::DeadlineExceeded`]: the query was not slow, it was
    /// too big. Deterministic for a given query and dataset, so clients
    /// should page or narrow the query rather than retry.
    BudgetExceeded,
    /// A pagination cursor failed revalidation: corrupted or truncated
    /// token, a cursor minted for a different query, or an anchor that no
    /// longer resolves at its pinned snapshot. Resuming would risk
    /// skipped or duplicated rows, so the request is refused instead.
    CursorInvalid(String),
    /// The node was fenced off the write path by a newer replication
    /// epoch: it holds epoch `held` but has observed `seen > held`,
    /// meaning another node was promoted to primary. Accepting the
    /// write would fork history — the commit is refused before anything
    /// reaches the log. Route the write to the current primary.
    Fenced {
        /// The highest epoch this node ever held as primary.
        held: u64,
        /// The higher epoch it has observed from the cluster.
        seen: u64,
    },
    /// The query referenced an unknown label, key, or parameter.
    Unknown(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeExists(id) => write!(f, "node {id} already exists"),
            GraphError::RelExists(id) => write!(f, "relationship {id} already exists"),
            GraphError::NodeNotFound(id) => write!(f, "node {id} does not exist"),
            GraphError::RelNotFound(id) => write!(f, "relationship {id} does not exist"),
            GraphError::EndpointMissing { rel, node } => {
                write!(f, "relationship {rel} references missing node {node}")
            }
            GraphError::NodeHasRelationships(id) => {
                write!(f, "node {id} still has incident relationships")
            }
            GraphError::InvalidApplicationTime => {
                write!(f, "application start time must be less than end time")
            }
            GraphError::InvalidTimeRange => write!(f, "empty or inverted time range"),
            GraphError::NonMonotonicCommit { attempted, latest } => write!(
                f,
                "commit timestamp {attempted} is not after latest {latest}"
            ),
            GraphError::Storage(msg) => write!(f, "storage error: {msg}"),
            GraphError::CorruptRecord(msg) => write!(f, "corrupt record: {msg}"),
            GraphError::ExecError(msg) => write!(f, "execution error: {msg}"),
            GraphError::DeadlineExceeded => {
                write!(f, "deadline exceeded: query aborted by execution budget")
            }
            GraphError::BudgetExceeded => {
                write!(f, "budget exceeded: result larger than the row/byte budget")
            }
            GraphError::CursorInvalid(msg) => write!(f, "invalid cursor: {msg}"),
            GraphError::Fenced { held, seen } => write!(
                f,
                "write fenced: this node holds epoch {held} but epoch {seen} \
                 exists; route writes to the current primary"
            ),
            GraphError::Unknown(what) => write!(f, "unknown reference: {what}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::EndpointMissing {
            rel: RelId::new(7),
            node: NodeId::new(3),
        };
        assert!(e.to_string().contains("missing node 3"));
        let io = std::io::Error::other("boom");
        let g: GraphError = io.into();
        assert!(matches!(g, GraphError::Storage(_)));
    }
}
