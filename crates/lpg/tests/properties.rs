//! Property tests on the data-model invariants: interval algebra, delta
//! merge/apply equivalence, and temporal-graph well-formedness under
//! arbitrary replay.

use lpg::{
    EntityDelta, Graph, Interval, Node, NodeId, PropChange, PropertyValue, StrId, TemporalGraph,
    TimeRange, TimestampedUpdate, Update,
};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0u64..1_000, 1u64..1_000).prop_map(|(s, len)| Interval::new(s, s + len))
}

/// Canonical deltas only: the system never produces a delta with the same
/// label both added and removed, or the same property key twice
/// (`EntityDelta::is_canonical`).
fn delta_strategy() -> impl Strategy<Value = EntityDelta> {
    (
        proptest::collection::btree_map(0u32..6, any::<bool>(), 0..4),
        proptest::collection::btree_map(0u32..6, (any::<i64>(), any::<bool>()), 0..4),
    )
        .prop_map(|(labels, props)| {
            let mut d = EntityDelta::new();
            for (l, added) in labels {
                if added {
                    d.labels_added.push(StrId::new(l));
                } else {
                    d.labels_removed.push(StrId::new(l));
                }
            }
            for (k, (v, set)) in props {
                d.props.push(if set {
                    PropChange::Set(StrId::new(k), PropertyValue::Int(v))
                } else {
                    PropChange::Remove(StrId::new(k))
                });
            }
            assert!(d.is_canonical());
            d
        })
}

proptest! {
    #[test]
    fn interval_intersection_is_commutative_and_sound(
        a in interval_strategy(),
        b in interval_strategy(),
    ) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.intersect(&b).is_some(), a.overlaps(&b));
        if let Some(i) = a.intersect(&b) {
            // Every point of the intersection lies in both.
            for t in [i.start, i.start + (i.end - i.start) / 2, i.end - 1] {
                prop_assert!(a.contains(t) && b.contains(t));
            }
        }
    }

    #[test]
    fn timerange_window_matches_membership(
        range in prop_oneof![
            (0u64..100).prop_map(TimeRange::AsOf),
            (0u64..100, 0u64..100).prop_map(|(a, b)| TimeRange::Between(a.min(b), a.max(b) + 1)),
            (0u64..100, 0u64..100).prop_map(|(a, b)| TimeRange::ContainedIn(a.min(b), a.max(b))),
        ],
        valid in interval_strategy(),
    ) {
        // `matches` must agree with the normalized half-open window overlap.
        let window = range.to_half_open();
        prop_assert_eq!(range.matches(&valid), valid.overlaps(&window));
    }

    #[test]
    fn delta_merge_equals_sequential_apply(
        d1 in delta_strategy(),
        d2 in delta_strategy(),
        labels in proptest::collection::vec(0u32..6, 0..4),
        props in proptest::collection::vec((0u32..6, any::<i64>()), 0..4),
    ) {
        let base = Node::new(
            NodeId::new(1),
            labels.into_iter().map(StrId::new).collect(),
            props
                .into_iter()
                .map(|(k, v)| (StrId::new(k), PropertyValue::Int(v)))
                .collect(),
        );
        let mut sequential = base.clone();
        d1.apply_to_node(&mut sequential);
        d2.apply_to_node(&mut sequential);
        let mut merged_delta = d1.clone();
        merged_delta.merge(&d2);
        prop_assert!(merged_delta.is_canonical(), "merge preserves canonicity");
        let mut merged = base;
        merged_delta.apply_to_node(&mut merged);
        prop_assert_eq!(sequential, merged);
    }

    #[test]
    fn temporal_graph_versions_are_well_formed(
        n_nodes in 1u64..6,
        steps in proptest::collection::vec((0u64..6, any::<i64>()), 1..40),
    ) {
        let mut updates = Vec::new();
        let mut ts = 0u64;
        for i in 0..n_nodes {
            ts += 1;
            updates.push(TimestampedUpdate::new(ts, Update::AddNode {
                id: NodeId::new(i),
                labels: vec![],
                props: vec![],
            }));
        }
        for (node, v) in steps {
            if node >= n_nodes { continue; }
            ts += 1;
            updates.push(TimestampedUpdate::new(ts, Update::SetNodeProp {
                id: NodeId::new(node),
                key: StrId::new(0),
                value: PropertyValue::Int(v),
            }));
        }
        let tg = TemporalGraph::build(&Graph::new(), Interval::new(0, ts + 1), &updates);
        for (id, chain) in &tg.nodes {
            prop_assert!(
                lpg::entity::versions_well_formed(chain),
                "overlapping versions for node {}", id
            );
            // Exactly one version is valid at any probed instant.
            for t in [1, ts / 2, ts] {
                let live = chain.iter().filter(|c| c.valid.contains(t)).count();
                prop_assert!(live <= 1);
            }
        }
    }
}
