//! Fig. 9 — ingestion overhead of the temporal stores, normalized to a
//! plain (non-temporal) baseline.
//!
//! Paper shape: synchronously updating both stores (TS+LS) costs ~40 % of
//! throughput; LineageStore alone is the expensive part (composite-key
//! B+Trees); TimeStore alone costs < 15 % — which is why production Aion
//! updates TimeStore synchronously and LineageStore in the background.

use crate::common::{banner, BenchConfig, Timer};
use baselines::{ClassicStore, TemporalBackend};
use lineagestore::{LineageStore, LineageStoreConfig};
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStore, TimeStoreConfig};

/// Datasets measured.
pub const DATASETS: [&str; 4] = ["DBLP", "WikiTalk", "Pokec", "LiveJournal"];

/// One measured row of normalized throughputs (baseline = 1.0).
pub struct IngestRow {
    /// Dataset name.
    pub dataset: String,
    /// TimeStore + LineageStore, both synchronous.
    pub ts_ls: f64,
    /// LineageStore only.
    pub ls_only: f64,
    /// TimeStore only.
    pub ts_only: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<IngestRow> {
    banner(
        "Fig. 9 — ingestion overhead (normalized to non-temporal baseline)",
        "paper: TS+LS ~0.6, LS-only ~0.6-0.7, TS-only >0.85",
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10}   (paper: ~0.60 ~0.65 ~0.87)",
        "dataset", "TS+LS", "LS only", "TS only"
    );
    let mut out = Vec::new();
    for name in DATASETS {
        let w = cfg.workload(name);
        let batches: Vec<(u64, Vec<lpg::Update>)> = w.batches(1_000).collect();

        // Baseline: latest-only store plus a write-ahead log — a plain
        // transactional store is durable too, so its ingestion includes a
        // per-commit log append (like Neo4j's transaction log).
        let base_dir = tempdir().expect("tempdir");
        let wal = timestore::ChangeLog::open(base_dir.path().join("wal.log")).expect("wal");
        let mut classic = ClassicStore::new();
        let t = Timer::start();
        for (ts, ops) in &batches {
            wal.append(&timestore::CommitFrame::from_updates(*ts, ops))
                .expect("wal append");
            for op in ops {
                classic.apply(*ts, op);
            }
        }
        let base_rate = t.ops_per_sec(w.updates.len());

        // TimeStore only.
        let dir = tempdir().expect("tempdir");
        let ts_store = TimeStore::open(
            dir.path().join("ts"),
            TimeStoreConfig {
                cache_pages: 4096,
                policy: SnapshotPolicy::EveryNOps(5_000),
                graphstore_bytes: 64 << 20,
                ..Default::default()
            },
        )
        .expect("open");
        let t = Timer::start();
        for (ts, ops) in &batches {
            ts_store.append_commit(*ts, ops).expect("append");
        }
        let ts_rate = t.ops_per_sec(w.updates.len());

        // LineageStore only.
        let ls_store = LineageStore::open(
            dir.path().join("ls.db"),
            LineageStoreConfig {
                cache_pages: 4096,
                chain_threshold: Some(4),
                ..Default::default()
            },
        )
        .expect("open");
        let t = Timer::start();
        for (ts, ops) in &batches {
            ls_store.apply_commit(*ts, ops).expect("apply");
        }
        let ls_rate = t.ops_per_sec(w.updates.len());

        // Both, synchronously (the Fig. 9 TS+LS configuration).
        let dir2 = tempdir().expect("tempdir");
        let ts2 = TimeStore::open(
            dir2.path().join("ts"),
            TimeStoreConfig {
                cache_pages: 4096,
                policy: SnapshotPolicy::EveryNOps(5_000),
                graphstore_bytes: 64 << 20,
                ..Default::default()
            },
        )
        .expect("open");
        let ls2 = LineageStore::open(
            dir2.path().join("ls.db"),
            LineageStoreConfig {
                cache_pages: 4096,
                chain_threshold: Some(4),
                ..Default::default()
            },
        )
        .expect("open");
        let t = Timer::start();
        for (ts, ops) in &batches {
            ts2.append_commit(*ts, ops).expect("append");
            ls2.apply_commit(*ts, ops).expect("apply");
        }
        let both_rate = t.ops_per_sec(w.updates.len());

        let row = IngestRow {
            dataset: name.to_string(),
            ts_ls: both_rate / base_rate,
            ls_only: ls_rate / base_rate,
            ts_only: ts_rate / base_rate,
        };
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2}",
            name, row.ts_ls, row.ls_only, row.ts_only
        );
        out.push(row);
    }
    println!("(normalized: 1.0 = plain non-temporal ingestion)");
    out
}
