//! Fig. 14 — incremental speedups when invoked as *temporal procedures*
//! (the server-side path with dedicated worker state, Sec. 6.7).
//!
//! Compared to Fig. 12, the procedure path removes repeated query
//! compilation and task scheduling, so the paper measures even higher
//! speedups: AVG 9–61×, BFS 3.5–12×. In this reproduction the procedure
//! path reuses one in-memory dynamic graph and its engine state across the
//! entire series (the GraphStore result-caching of Sec. 5.2), while the
//! classic path pays full projection per snapshot — the same contrast.

use crate::common::{banner, ingest_aion, open_aion, BenchConfig, Timer};
use algo::aggregate::IncrementalAvg;
use algo::bfs::{bfs_levels, IncrementalBfs};
use dyngraph::DynGraph;
use lpg::StrId;
use tempfile::tempdir;

/// Datasets measured.
pub const DATASETS: [&str; 4] = ["DBLP", "WikiTalk", "Pokec", "LiveJournal"];

/// One measured row.
pub struct ProcRow {
    /// Dataset.
    pub dataset: String,
    /// Algorithm label.
    pub algo: &'static str,
    /// Snapshot count.
    pub snapshots: usize,
    /// Speedup over classic recomputation.
    pub speedup: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<ProcRow> {
    banner(
        "Fig. 14 — incremental speedup via temporal procedures",
        "paper: AVG 9-61x, BFS 3.5-12x (higher than Fig. 12: no per-query overheads)",
    );
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "dataset/algo(snaps)", "classic(s)", "proc(s)", "speedup"
    );
    let weight = StrId::new(2);
    let mut out = Vec::new();
    for name in DATASETS {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        let half = w.max_ts / 2;
        let end = w.max_ts + 1;
        for snapshots in [10usize, 100] {
            let step = ((end - half) / snapshots as u64).max(1);
            let times: Vec<u64> = (0..snapshots as u64)
                .map(|i| half + i * step)
                .filter(|t| *t < end)
                .collect();

            // --- AVG ---
            // Classic: re-project and re-scan per snapshot.
            let t = Timer::start();
            for &ts in &times {
                let g = db.project_at(ts).expect("project");
                std::hint::black_box(algo::aggregate::avg_rel_property(&g, weight));
            }
            let classic_s = t.secs();
            // Procedure: one resident graph + running aggregate.
            let t = Timer::start();
            {
                let mut g = db.project_at(times[0]).expect("project");
                let mut agg = IncrementalAvg::from_graph(&g, weight);
                std::hint::black_box(agg.value());
                for pair in times.windows(2) {
                    let diff = db.get_diff(pair[0] + 1, pair[1] + 1).expect("diff");
                    for u in &diff {
                        let _ = g.apply(&u.op);
                    }
                    agg.apply_diff(&diff);
                    std::hint::black_box(agg.value());
                }
            }
            let proc_s = t.secs();
            report(&mut out, name, "AVG", snapshots, classic_s, proc_s);

            // --- BFS ---
            let src = lpg::NodeId::new(0);
            let t = Timer::start();
            for &ts in &times {
                let g = db.project_at(ts).expect("project");
                std::hint::black_box(bfs_levels(&g, src).len());
            }
            let classic_s = t.secs();
            let t = Timer::start();
            {
                let mut g: DynGraph = db.project_at(times[0]).expect("project");
                let mut engine = IncrementalBfs::new(&g, src);
                std::hint::black_box(engine.levels().len());
                for pair in times.windows(2) {
                    let diff = db.get_diff(pair[0] + 1, pair[1] + 1).expect("diff");
                    for u in &diff {
                        let _ = g.apply(&u.op);
                    }
                    engine.apply_diff(&g, &diff);
                    std::hint::black_box(engine.levels().len());
                }
            }
            let proc_s = t.secs();
            report(&mut out, name, "BFS", snapshots, classic_s, proc_s);
        }
    }
    out
}

fn report(
    out: &mut Vec<ProcRow>,
    dataset: &str,
    algo: &'static str,
    snapshots: usize,
    classic_s: f64,
    proc_s: f64,
) {
    let speedup = classic_s / proc_s.max(1e-9);
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>9.1}x",
        format!("{dataset}/{algo}({snapshots})"),
        classic_s,
        proc_s,
        speedup
    );
    out.push(ProcRow {
        dataset: dataset.to_string(),
        algo,
        snapshots,
        speedup,
    });
}
