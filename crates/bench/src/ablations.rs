//! Ablations for the design decisions DESIGN.md §5 calls out:
//!
//! 1. **GraphStore cache** — snapshot retrieval with a warm in-memory
//!    snapshot cache versus a cold (1-byte budget) one. The paper observes
//!    the large-graph regime where "the GraphStore cannot cache multiple
//!    snapshots" costs Aion most of its Fig. 7 lead.
//! 2. **Sync vs async LineageStore** — end-to-end ingestion throughput with
//!    the cascade on the critical path vs in the background (the Sec. 5.1
//!    design decision that Fig. 9 motivates).
//! 3. **Planner threshold** — how the store choice for n-hop expansions
//!    flips as the threshold moves, validating 30 % as a sensible default
//!    against the measured Fig. 8 crossover.

use crate::common::{banner, fmt_rate, ingest_aion, BenchConfig, Timer};
use aion::planner::{AccessPattern, Planner};
use aion::{Aion, AionConfig};
use lineagestore::LineageStoreConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStoreConfig};

fn open_with(dir: &std::path::Path, graphstore_bytes: usize, sync_lineage: bool) -> Aion {
    let mut cfg = AionConfig::new(dir);
    cfg.sync_lineage = sync_lineage;
    cfg.timestore = TimeStoreConfig {
        cache_pages: 4096,
        // Dense snapshots keep forward replay short, so the base-snapshot
        // acquisition cost (cache hit vs disk read + decode) dominates.
        policy: SnapshotPolicy::EveryNOps(1_000),
        graphstore_bytes,
        ..Default::default()
    };
    cfg.lineage = LineageStoreConfig {
        cache_pages: 4096,
        chain_threshold: Some(4),
        ..Default::default()
    };
    Aion::open(cfg).expect("open")
}

/// Runs all three ablations.
pub fn run(cfg: &BenchConfig) {
    graphstore_cache(cfg);
    sync_vs_async(cfg);
    planner_threshold(cfg);
}

/// Ablation 1: GraphStore warm vs cold.
pub fn graphstore_cache(cfg: &BenchConfig) {
    banner(
        "Ablation — GraphStore snapshot cache (warm vs cold)",
        "cold cache forces disk snapshot reads + full replay per retrieval",
    );
    let w = cfg.workload("WikiTalk");
    println!("{:<22} {:>16}", "configuration", "snapshot time");
    for (budget, label) in [(256usize << 20, "warm (256 MiB)"), (1, "cold (disabled)")] {
        let dir = tempdir().expect("tempdir");
        let db = open_with(dir.path(), budget, true);
        ingest_aion(&db, &w);
        db.sync().expect("sync");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let probes: Vec<u64> = (0..cfg.snapshot_runs)
            .map(|_| w.random_ts(&mut rng))
            .collect();
        let t = Timer::start();
        for &ts in &probes {
            std::hint::black_box(db.get_graph_at(ts).expect("snapshot").node_count());
        }
        println!(
            "{:<22} {:>13.3} ms",
            label,
            t.secs() / probes.len() as f64 * 1e3
        );
    }
}

/// Ablation 2: synchronous vs asynchronous LineageStore updates.
pub fn sync_vs_async(cfg: &BenchConfig) {
    banner(
        "Ablation — LineageStore on vs off the write critical path",
        "async cascade keeps commit latency at TimeStore-only cost (Sec. 5.1)",
    );
    let w = cfg.workload("WikiTalk");
    println!("{:<22} {:>16}", "configuration", "ingest rate");
    let mut rates = Vec::new();
    for (sync, label) in [(true, "synchronous (TS+LS)"), (false, "async cascade")] {
        let dir = tempdir().expect("tempdir");
        let db = open_with(dir.path(), 64 << 20, sync);
        let t = Timer::start();
        ingest_aion(&db, &w); // barriers on the cascade at the end
        let commit_rate = t.ops_per_sec(w.updates.len());
        println!("{:<22} {:>16}", label, fmt_rate(commit_rate));
        rates.push(commit_rate);
    }
    println!(
        "(async includes the final catch-up barrier; its win shows up in\n\
         commit latency, which the synchronous path pays on every txn)"
    );
}

/// Ablation 3: planner threshold sweep against the measured crossover.
pub fn planner_threshold(cfg: &BenchConfig) {
    banner(
        "Ablation — planner threshold sweep",
        "store chosen for 1..8-hop expansions as the threshold moves around 30%",
    );
    let w = cfg.workload("WikiTalk");
    let dir = tempdir().expect("tempdir");
    let db = open_with(dir.path(), 64 << 20, true);
    ingest_aion(&db, &w);
    let stats = db.statistics();
    print!("{:<12}", "threshold");
    for hops in [1u32, 2, 4, 8] {
        print!(" {:>10}", format!("{hops}-hop"));
    }
    println!();
    for threshold in [0.1f64, 0.2, 0.3, 0.5, 0.8] {
        let planner = Planner::with_threshold(threshold);
        print!("{:<12}", format!("{:.0}%", threshold * 100.0));
        for hops in [1u32, 2, 4, 8] {
            let choice = planner.choose(stats, AccessPattern::Expand { seeds: 1, hops });
            print!(" {:>10}", format!("{choice:?}"));
        }
        println!();
    }
    println!(
        "(the paper's 30% keeps 1-2 hop queries on the LineageStore and sends\n\
              deep expansions to the TimeStore — matching the Fig. 8 crossover)"
    );
}
