//! Table 4 — storage and retrieval complexity validation.
//!
//! The table's claims are asymptotic; we validate them empirically by
//! doubling the history size |U| and checking how each system's cost
//! scales:
//!
//! * Aion relationship retrieval is `log(|U_R|)` — near-flat under 2×;
//! * Raphtory retrieval is `2·|U_R^n|` — grows with endpoint history;
//! * Gradoop retrieval is `|U_R|` — roughly doubles;
//! * snapshot retrieval grows linearly (`|U|`) for Raphtory/Gradoop while
//!   Aion pays `|G| + δ(|U|)` (snapshot copy + bounded replay).

use crate::common::{
    banner, build_gradoop, build_raphtory, ingest_aion, open_aion, BenchConfig, Timer,
};
use baselines::TemporalBackend;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;

/// Per-system measured scaling factors (cost at 2|U| / cost at |U|).
pub struct ComplexityRow {
    /// System name.
    pub system: &'static str,
    /// Point-query scaling under 2× history.
    pub point_scaling: f64,
    /// Snapshot-query scaling under 2× history.
    pub snapshot_scaling: f64,
}

fn measure(cfg: &BenchConfig, edges: u64) -> (f64, f64, f64, f64, f64, f64) {
    let spec = {
        let mut c = cfg.clone();
        c.target_edges = edges;
        c.spec("WikiTalk")
    };
    let w = workload::generate(spec, cfg.seed);
    let dir = tempdir().expect("tempdir");
    let db = open_aion(dir.path(), true);
    ingest_aion(&db, &w);
    let raph = build_raphtory(&w);
    let grad = build_gradoop(&w);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let probes: Vec<(lpg::RelId, u64)> = (0..cfg.point_ops.min(2_000))
        .map(|_| (w.random_rel(&mut rng), w.random_ts(&mut rng)))
        .collect();

    let t = Timer::start();
    for (r, ts) in &probes {
        std::hint::black_box(db.lineagestore().rel_at(*r, *ts).expect("aion"));
    }
    let aion_pt = t.secs() / probes.len() as f64;
    let t = Timer::start();
    for (r, ts) in &probes {
        std::hint::black_box(raph.rel_at(*r, *ts));
    }
    let raph_pt = t.secs() / probes.len() as f64;
    let point_probes = &probes[..probes.len().min(100)];
    let t = Timer::start();
    for (r, ts) in point_probes {
        std::hint::black_box(grad.rel_at(*r, *ts));
    }
    let grad_pt = t.secs() / point_probes.len() as f64;

    let snaps: Vec<u64> = (0..5).map(|_| w.random_ts(&mut rng)).collect();
    let t = Timer::start();
    for &ts in &snaps {
        std::hint::black_box(db.get_graph_at(ts).expect("snap").node_count());
    }
    let aion_sn = t.secs() / snaps.len() as f64;
    let t = Timer::start();
    for &ts in &snaps {
        std::hint::black_box(raph.snapshot_at(ts).node_count());
    }
    let raph_sn = t.secs() / snaps.len() as f64;
    let t = Timer::start();
    for &ts in &snaps {
        std::hint::black_box(grad.snapshot_at(ts).node_count());
    }
    let grad_sn = t.secs() / snaps.len() as f64;
    (aion_pt, raph_pt, grad_pt, aion_sn, raph_sn, grad_sn)
}

/// Runs the validation.
pub fn run(cfg: &BenchConfig) -> Vec<ComplexityRow> {
    banner(
        "Table 4 — complexity validation: cost scaling when |U| doubles",
        "expected: Aion point ~1x (log), Gradoop point ~2x (linear); snapshots ~2x for R/G",
    );
    let base = cfg.target_edges.max(4_000);
    let (a1, r1, g1, as1, rs1, gs1) = measure(cfg, base);
    let (a2, r2, g2, as2, rs2, gs2) = measure(cfg, base * 2);
    println!(
        "{:<10} {:>18} {:>20}",
        "system", "point cost x (2|U|)", "snapshot cost x (2|U|)"
    );
    let rows = vec![
        ComplexityRow {
            system: "Aion",
            point_scaling: a2 / a1,
            snapshot_scaling: as2 / as1,
        },
        ComplexityRow {
            system: "Raphtory",
            point_scaling: r2 / r1,
            snapshot_scaling: rs2 / rs1,
        },
        ComplexityRow {
            system: "Gradoop",
            point_scaling: g2 / g1,
            snapshot_scaling: gs2 / gs1,
        },
    ];
    for row in &rows {
        println!(
            "{:<10} {:>17.2}x {:>19.2}x",
            row.system, row.point_scaling, row.snapshot_scaling
        );
    }
    println!(
        "(Aion point lookups are O(log|U|): the factor should sit well below the linear systems')"
    );
    rows
}
