//! Fig. 8 — n-hop graph accesses (1/2/4/8 hops) from random start nodes:
//! Raphtory vs LineageStore vs TimeStore.
//!
//! Paper shape: LineageStore and Raphtory are 2–3 orders of magnitude
//! faster than TimeStore at 1–2 hops; around 4 hops (≈30 % of the graph
//! accessed) TimeStore catches up; at 8 hops the fine-grained stores are
//! up to 12× slower or time out. This crossover is where the planner's
//! 30 % threshold comes from (Sec. 6.3).

use crate::common::{banner, build_raphtory, fmt_rate, ingest_aion, open_aion, BenchConfig, Timer};
use lpg::Direction;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;

/// Datasets measured (paper uses these four for Fig. 8).
pub const DATASETS: [&str; 4] = ["DBLP", "WikiTalk", "Pokec", "LiveJournal"];

/// Hop counts measured.
pub const HOPS: [u32; 4] = [1, 2, 4, 8];

/// One measured row.
pub struct NHopRow {
    /// Dataset name.
    pub dataset: String,
    /// Hop count.
    pub hops: u32,
    /// Raphtory-style expansion ops/s (in-memory adjacency replay).
    pub raphtory: f64,
    /// LineageStore Alg. 1 ops/s.
    pub lineage: f64,
    /// TimeStore (full snapshot + traversal) ops/s.
    pub timestore: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<NHopRow> {
    banner(
        "Fig. 8 — n-hop accesses: Raphtory vs LineageStore vs TimeStore",
        "paper: LS/Raphtory win 1-2 hops by 100-1000x; TimeStore wins at 8 hops",
    );
    println!(
        "{:<18} {:>14} {:>14} {:>14}   winner",
        "dataset(hops)", "Raphtory", "LineageStore", "TimeStore"
    );
    let mut out = Vec::new();
    for name in DATASETS {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        let raphtory = build_raphtory(&w);
        let end_ts = w.max_ts;
        // Raphtory expansion = BFS over its snapshot-reconstructed adjacency;
        // the paper's point is that its per-entity validity checks make deep
        // expansion expensive. We reuse its snapshot for a fair "in-memory
        // fine-grained" expansion cost.
        let raph_graph = baselines::TemporalBackend::snapshot_at(&raphtory, end_ts);

        for hops in HOPS {
            let ops = (cfg.point_ops / (hops as usize * hops as usize)).clamp(3, 200);
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ u64::from(hops));
            // Random start nodes at random historical time points — probing
            // only the latest timestamp would let TimeStore serve every
            // query from the resident latest graph, hiding the snapshot
            // materialization cost the paper measures.
            let starts: Vec<(lpg::NodeId, u64)> = (0..ops)
                .map(|_| (w.random_node(&mut rng), w.random_ts(&mut rng)))
                .collect();

            // LineageStore: Alg. 1.
            let t = Timer::start();
            for (s, at) in &starts {
                let _ = db.lineagestore().expand(*s, Direction::Outgoing, hops, *at);
            }
            let ls_rate = t.ops_per_sec(starts.len());

            // TimeStore: "point or subgraph queries require the creation
            // of a snapshot" (Sec. 4.3) — charge the |G| materialization
            // (the GraphStore may cache the reconstructed state, but the
            // query still copies a working snapshot) plus the traversal.
            let t = Timer::start();
            for (s, at) in &starts {
                let snap = (*db.get_graph_at(*at).expect("snapshot")).clone();
                std::hint::black_box(bfs_hops(&snap, *s, hops));
            }
            let ts_rate = t.ops_per_sec(starts.len());

            // Raphtory-like: BFS on its reconstructed graph, paying a
            // visibility re-check per touched node (the |U_R^n| scans).
            let t = Timer::start();
            for (s, _) in &starts {
                raphtory_expand(&raphtory, &raph_graph, *s, hops, end_ts);
            }
            let raph_rate = t.ops_per_sec(starts.len());

            let winner = if ls_rate >= ts_rate && ls_rate >= raph_rate {
                "LineageStore"
            } else if ts_rate >= raph_rate {
                "TimeStore"
            } else {
                "Raphtory"
            };
            println!(
                "{:<18} {:>14} {:>14} {:>14}   {winner}",
                format!("{name}({hops})"),
                fmt_rate(raph_rate),
                fmt_rate(ls_rate),
                fmt_rate(ts_rate),
            );
            out.push(NHopRow {
                dataset: name.to_string(),
                hops,
                raphtory: raph_rate,
                lineage: ls_rate,
                timestore: ts_rate,
            });
        }
    }
    out
}

/// BFS over a materialized snapshot, bounded by `hops`.
fn bfs_hops(g: &lpg::Graph, start: lpg::NodeId, hops: u32) -> usize {
    use std::collections::{HashSet, VecDeque};
    if !g.has_node(start) {
        return 0;
    }
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, 0u32));
    let mut reached = 0;
    while let Some((cur, hop)) = queue.pop_front() {
        if hop == hops {
            continue;
        }
        for rid in g.relationships(cur, Direction::Outgoing) {
            let Some(rel) = g.rel(rid) else { continue };
            if seen.insert(rel.tgt) {
                reached += 1;
                queue.push_back((rel.tgt, hop + 1));
            }
        }
    }
    reached
}

/// Raphtory-style expansion: BFS over the live graph but re-validating
/// every traversed relationship against the per-entity history (the cost
/// the paper attributes to deep Raphtory expansions).
fn raphtory_expand(
    store: &baselines::RaphtoryLike,
    graph: &lpg::Graph,
    start: lpg::NodeId,
    hops: u32,
    ts: u64,
) -> usize {
    use std::collections::{HashSet, VecDeque};
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    let mut reached = 0;
    if !graph.has_node(start) {
        return 0;
    }
    seen.insert(start);
    queue.push_back((start, 0u32));
    while let Some((cur, hop)) = queue.pop_front() {
        if hop == hops {
            continue;
        }
        for rid in graph.relationships(cur, Direction::Outgoing) {
            // The expensive per-edge validity check.
            let Some(rel) = baselines::TemporalBackend::rel_at(store, rid, ts) else {
                continue;
            };
            if seen.insert(rel.tgt) {
                reached += 1;
                queue.push_back((rel.tgt, hop + 1));
            }
        }
    }
    reached
}
