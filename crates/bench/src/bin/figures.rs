//! `figures` — regenerates every table and figure of the paper's
//! evaluation (Sec. 6) at a configurable scale.
//!
//! ```text
//! figures <experiment|all> [--edges N] [--ops N] [--runs N] [--seed N]
//!         [--metrics-dir DIR]
//!
//! experiments: table3 table4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!              fig14 writes
//! ```
//!
//! With `--metrics-dir DIR`, the harness drops one
//! `BENCH_<experiment>_metrics.json` sidecar per experiment: the
//! process-wide metrics snapshot (cumulative across the run, so diff
//! successive sidecars for per-experiment deltas).

use aion_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    let mut which: Vec<String> = Vec::new();
    let mut metrics_dir: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--edges" => {
                cfg.target_edges = args[i + 1].parse().expect("--edges N");
                i += 2;
            }
            "--ops" => {
                cfg.point_ops = args[i + 1].parse().expect("--ops N");
                i += 2;
            }
            "--runs" => {
                cfg.snapshot_runs = args[i + 1].parse().expect("--runs N");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--metrics-dir" => {
                metrics_dir = Some(std::path::PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                which.push(other.to_lowercase());
                i += 1;
            }
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = vec![
            "table3".into(),
            "table4".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "fig9".into(),
            "fig10".into(),
            "fig11".into(),
            "fig12".into(),
            "fig13".into(),
            "fig14".into(),
            "writes".into(),
            "ablations".into(),
        ];
    }
    println!(
        "aion-bench: target |E| = {}, point ops = {}, snapshot runs = {}, seed = {}",
        cfg.target_edges, cfg.point_ops, cfg.snapshot_runs, cfg.seed
    );
    for exp in which {
        match exp.as_str() {
            "table3" => {
                table3_datasets::run(&cfg);
            }
            "table4" => {
                table4_complexity::run(&cfg);
            }
            "fig6" => {
                fig06_point_queries::run(&cfg);
            }
            "fig7" => {
                fig07_snapshots::run(&cfg);
            }
            "fig8" => {
                fig08_nhop::run(&cfg);
            }
            "fig9" => {
                fig09_ingest::run(&cfg);
            }
            "fig10" => {
                fig10_storage::run(&cfg);
            }
            "fig11" => {
                fig11_materialize::run(&cfg);
            }
            "fig12" => {
                fig12_incremental::run(&cfg);
            }
            "fig13" => {
                fig13_bolt::run(&cfg);
            }
            "fig14" => {
                fig14_procedures::run(&cfg);
            }
            "writes" => {
                write_throughput::run(&write_throughput::WriteThroughputConfig {
                    seed: cfg.seed,
                    ..Default::default()
                });
            }
            "ablations" => {
                ablations::run(&cfg);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                continue;
            }
        }
        if let Some(dir) = &metrics_dir {
            write_metrics_sidecar(dir, &exp);
        }
    }
}

/// Dumps the cumulative metrics snapshot next to the experiment output so
/// perf investigations can correlate figures with storage-layer behaviour
/// (cache hit rates, replay counts, commit latency) without a rerun.
fn write_metrics_sidecar(dir: &std::path::Path, exp: &str) {
    let path = dir.join(format!("BENCH_{exp}_metrics.json"));
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, obs::snapshot().to_json()))
    {
        eprintln!("aion-bench: cannot write {}: {e}", path.display());
    } else {
        println!("metrics sidecar: {}", path.display());
    }
}
