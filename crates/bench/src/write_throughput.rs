//! Write-path throughput under group commit (Fig. 13-style).
//!
//! Measures durable commit throughput through the full `Aion` write path
//! (`sync_on_commit`: every acknowledgement implies an fsync) in two
//! configurations:
//!
//! * **single_writer** — one thread, zero latency budget: every commit is
//!   its own group, so throughput is bounded by one fsync per commit.
//! * **group_N_writers** — N concurrent committers with a small latency
//!   budget: the log-writer thread coalesces them, and N commits share
//!   one fsync.
//!
//! Two machine-portable ratios are reported (and gated by
//! `cargo xtask bench-gate`):
//!
//! * `commits_per_fsync` — histogram `core.group_commit.size` sum/count
//!   delta: ~1.0 single-writer, approaching N for the group run. This is
//!   the direct evidence that group commit coalesces.
//! * `rel_throughput` — durable commits/sec relative to the
//!   single-writer run. How much of the coalescing turns into end-to-end
//!   throughput depends on how expensive fsync is on the machine, which
//!   is exactly why the baseline records the machine's own ratio.

use crate::common::banner;
use aion::{Aion, AionConfig};
use lpg::NodeId;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;

/// Knobs for the write-throughput experiment. Separate from
/// [`crate::BenchConfig`]: this experiment drives the commit pipeline,
/// not the dataset-shaped read workloads.
#[derive(Clone, Debug)]
pub struct WriteThroughputConfig {
    /// Total commits per configuration (split evenly across writers).
    pub commits: u64,
    /// Concurrent committers in the group run.
    pub writers: u64,
    /// Seed spread into node ids so runs do not collide.
    pub seed: u64,
    /// Latency budget for the group run, in microseconds.
    pub budget_us: u64,
}

impl Default for WriteThroughputConfig {
    fn default() -> Self {
        WriteThroughputConfig {
            commits: 2_000,
            writers: 8,
            seed: 7,
            budget_us: 500,
        }
    }
}

/// One measured configuration.
pub struct WriteRow {
    /// Configuration name: `single_writer` or `group_<N>_writers`.
    pub metric: String,
    /// Mean commits per durability point (fsync) — histogram delta.
    pub commits_per_fsync: f64,
    /// Durable commits/sec relative to the single-writer run.
    pub rel_throughput: f64,
    /// Absolute durable commits/sec (printed, machine-specific, ungated).
    pub commits_per_sec: f64,
}

/// Runs `commits` durable commits across `writers` threads and returns
/// `(elapsed_secs, fsync_groups, grouped_commits)`; the last two are
/// deltas of the process-global `core.group_commit.size` histogram.
fn run_writers(cfg: &WriteThroughputConfig, writers: u64, budget: Duration) -> (f64, u64, u64) {
    let dir = tempdir().expect("tempdir");
    let mut acfg = AionConfig::new(dir.path());
    acfg.sync_on_commit = true;
    acfg.commit_latency_budget = budget;
    let db = Arc::new(Aion::open(acfg).expect("open"));

    let hist = |snap: &obs::MetricsSnapshot| {
        snap.histogram("core.group_commit.size")
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0))
    };
    let (groups0, sum0) = hist(&obs::snapshot());
    let per_writer = cfg.commits / writers;
    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = db.clone();
            let base = cfg.seed * 1_000_000_000 + w * 1_000_000;
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    db.write(|txn| txn.add_node(NodeId::new(base + i), vec![], vec![]))
                        .expect("durable commit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let (groups1, sum1) = hist(&obs::snapshot());
    (elapsed, groups1 - groups0, sum1 - sum0)
}

/// Runs the experiment.
pub fn run(cfg: &WriteThroughputConfig) -> Vec<WriteRow> {
    banner(
        "Write throughput — group commit vs per-commit fsync",
        "one fsync per group: commits_per_fsync ~1 single-writer, >1 grouped",
    );
    println!(
        "{:<18} {:>16} {:>16} {:>14}",
        "config", "commits/fsync", "rel throughput", "commits/sec"
    );

    let (single_secs, single_groups, single_commits) = run_writers(cfg, 1, Duration::ZERO);
    let single_rate = single_commits as f64 / single_secs.max(1e-9);
    let single = WriteRow {
        metric: "single_writer".to_string(),
        commits_per_fsync: single_commits as f64 / (single_groups.max(1)) as f64,
        rel_throughput: 1.0,
        commits_per_sec: single_rate,
    };

    let budget = Duration::from_micros(cfg.budget_us);
    let (group_secs, group_groups, group_commits) = run_writers(cfg, cfg.writers, budget);
    let group_rate = group_commits as f64 / group_secs.max(1e-9);
    let group = WriteRow {
        metric: format!("group_{}_writers", cfg.writers),
        commits_per_fsync: group_commits as f64 / (group_groups.max(1)) as f64,
        rel_throughput: group_rate / single_rate.max(1e-9),
        commits_per_sec: group_rate,
    };

    let rows = vec![single, group];
    for r in &rows {
        println!(
            "{:<18} {:>16.2} {:>16.2} {:>14.0}",
            r.metric, r.commits_per_fsync, r.rel_throughput, r.commits_per_sec
        );
    }
    println!("(rel throughput: 1.0 = the single-writer per-commit-fsync run)");
    rows
}
