//! Shared harness plumbing: workload construction, ingestion into every
//! system, and wall-clock timing.

use aion::{Aion, AionConfig};
use baselines::{GradoopLike, RaphtoryLike, TemporalBackend};
use lineagestore::LineageStoreConfig;
use std::path::Path;
use std::time::Instant;
use timestore::{SnapshotPolicy, TimeStoreConfig};
use workload::{datasets, generator, GeneratedWorkload};

/// Harness-wide knobs (from the `figures` CLI).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Target |E| per dataset after scaling (keeps every dataset tractable
    /// on the benchmark machine while preserving its |E|/|V| shape).
    pub target_edges: u64,
    /// Operations per point-query measurement.
    pub point_ops: usize,
    /// Runs per global-query measurement.
    pub snapshot_runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            target_edges: 20_000,
            point_ops: 5_000,
            snapshot_runs: 15,
            seed: 42,
        }
    }
}

impl BenchConfig {
    /// The Table 3 dataset scaled so |E| ≈ `target_edges`.
    pub fn spec(&self, name: &str) -> workload::Dataset {
        let d = datasets::by_name(name).expect("known dataset");
        let scale = self.target_edges as f64 / d.rels as f64;
        d.scaled(scale.min(1.0))
    }

    /// Generates the update stream for a dataset.
    pub fn workload(&self, name: &str) -> GeneratedWorkload {
        generator::generate(self.spec(name), self.seed)
    }
}

/// Simple wall-clock timer.
pub struct Timer(Instant);

impl Timer {
    /// Starts timing.
    pub fn start() -> Timer {
        Timer(Instant::now())
    }

    /// Elapsed seconds.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Operations per second for `ops` operations.
    pub fn ops_per_sec(&self, ops: usize) -> f64 {
        ops as f64 / self.secs().max(1e-9)
    }
}

/// Opens an Aion instance in `dir` tuned for benchmarking (synchronous
/// lineage so reads never race the cascade; snapshot every 5 k updates).
pub fn open_aion(dir: &Path, sync_lineage: bool) -> Aion {
    let mut cfg = AionConfig::new(dir);
    cfg.sync_lineage = sync_lineage;
    cfg.timestore = TimeStoreConfig {
        cache_pages: 4096,
        policy: SnapshotPolicy::EveryNOps(5_000),
        graphstore_bytes: 128 << 20,
        ..Default::default()
    };
    cfg.lineage = LineageStoreConfig {
        cache_pages: 4096,
        chain_threshold: Some(4),
        ..Default::default()
    };
    Aion::open(cfg).expect("open aion")
}

/// Ingests a workload into Aion in paper-style batches of 1000 updates.
///
/// Commits via [`Aion::write_at`] with each batch's last workload tick so
/// Aion's system-time domain matches the baselines' — random-timestamp
/// probes then hit the same history distribution in every system.
pub fn ingest_aion(db: &Aion, w: &GeneratedWorkload) {
    for (ts, ops) in w.batches(1_000) {
        db.write_at(ts, |txn| apply_batch(txn, &ops))
            .expect("ingest");
    }
    db.lineage_barrier(db.latest_ts());
}

fn apply_batch(txn: &mut aion::WriteTxn<'_>, batch: &[lpg::Update]) -> lpg::Result<()> {
    for op in batch {
        match op {
            lpg::Update::AddNode { id, labels, props } => {
                txn.add_node(*id, labels.clone(), props.clone())?
            }
            lpg::Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => txn.add_rel(*id, *src, *tgt, *label, props.clone())?,
            lpg::Update::DeleteRel { id } => txn.delete_rel(*id)?,
            lpg::Update::DeleteNode { id } => txn.delete_node(*id)?,
            lpg::Update::SetNodeProp { id, key, value } => {
                txn.set_node_prop(*id, *key, value.clone())?
            }
            lpg::Update::SetRelProp { id, key, value } => {
                txn.set_rel_prop(*id, *key, value.clone())?
            }
            lpg::Update::RemoveNodeProp { id, key } => txn.remove_node_prop(*id, *key)?,
            lpg::Update::RemoveRelProp { id, key } => txn.remove_rel_prop(*id, *key)?,
            lpg::Update::AddLabel { id, label } => txn.add_label(*id, *label)?,
            lpg::Update::RemoveLabel { id, label } => txn.remove_label(*id, *label)?,
        }
    }
    Ok(())
}

/// Ingests a workload into a baseline backend (stream-style, as Raphtory
/// and Gradoop ingest).
pub fn ingest_backend(backend: &mut dyn TemporalBackend, w: &GeneratedWorkload) {
    for u in &w.updates {
        backend.apply(u.ts, &u.op);
    }
}

/// Builds a Raphtory-like store from a workload.
pub fn build_raphtory(w: &GeneratedWorkload) -> RaphtoryLike {
    let mut r = RaphtoryLike::new();
    ingest_backend(&mut r, w);
    r
}

/// Builds a Gradoop-like store from a workload.
pub fn build_gradoop(w: &GeneratedWorkload) -> GradoopLike {
    let mut g = GradoopLike::new();
    ingest_backend(&mut g, w);
    g
}

/// Prints a header for one experiment.
pub fn banner(title: &str, note: &str) {
    println!("\n=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
}

/// Formats ops/s in the paper's 10^x conventions.
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M ops/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k ops/s", rate / 1e3)
    } else {
        format!("{rate:.1} ops/s")
    }
}
