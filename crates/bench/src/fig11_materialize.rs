//! Fig. 11 — the delta-materialization strategy (Sec. 6.5): history chains
//! of length 32 → 1 on DBLP relationships, measuring read throughput and
//! storage overhead.
//!
//! Paper shape: never materializing (32) costs up to 40 % read throughput;
//! materializing every update (1) costs up to 80 % extra storage; every 4
//! updates is the sweet spot (~16 % storage increase), which Aion adopts.

use crate::common::{banner, fmt_rate, BenchConfig, Timer};
use lineagestore::{LineageStore, LineageStoreConfig};
use lpg::{NodeId, PropertyValue, RelId, StrId, Update};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tempfile::tempdir;

/// Chain-length thresholds swept, in paper order (32 = never materialize).
pub const THRESHOLDS: [(u32, &str); 6] = [
    (32, "32"),
    (16, "16"),
    (8, "8"),
    (4, "4"),
    (2, "2"),
    (1, "1"),
];

/// One measured row.
pub struct MaterializeRow {
    /// Chain threshold (history length of deltas).
    pub threshold: u32,
    /// Random version-read throughput (ops/s).
    pub read_rate: f64,
    /// Storage relative to the threshold-32 (pure deltas) run.
    pub storage_ratio: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<MaterializeRow> {
    banner(
        "Fig. 11 — materialization strategy (DBLP, 32 property updates per rel)",
        "paper: pure deltas lose up to 40% throughput; every-update costs +80% storage; 4 is best",
    );
    // DBLP with history chains: 32 property updates per relationship.
    let spec = cfg.spec("DBLP").scaled(0.05); // smaller: 32x updates follow
    let nodes = spec.nodes.min(500);
    let rels = nodes * 4;
    println!(
        "workload: {nodes} nodes, {rels} rels, 32 updates each ⇒ {} updates",
        rels * 32
    );
    println!(
        "{:<10} {:>16} {:>18} {:>14}",
        "chain", "read throughput", "vs chain=32", "storage"
    );
    let mut out = Vec::new();
    let mut base_rate = None;
    let mut base_storage = None;
    for (threshold, label) in THRESHOLDS {
        let dir = tempdir().expect("tempdir");
        let store = LineageStore::open(
            dir.path().join("l.db"),
            LineageStoreConfig {
                cache_pages: 4096,
                chain_threshold: Some(threshold),
                ..Default::default()
            },
        )
        .expect("open");
        // Build the history: nodes, rels, then 32 rounds of property sets.
        let mut ts = 0u64;
        for i in 0..nodes {
            ts += 1;
            store
                .apply_update(
                    ts,
                    &Update::AddNode {
                        id: NodeId::new(i),
                        labels: vec![],
                        props: vec![],
                    },
                )
                .expect("node");
        }
        for i in 0..rels {
            ts += 1;
            store
                .apply_update(
                    ts,
                    &Update::AddRel {
                        id: RelId::new(i),
                        src: NodeId::new(i % nodes),
                        tgt: NodeId::new((i * 7 + 1) % nodes),
                        label: None,
                        props: vec![],
                    },
                )
                .expect("rel");
        }
        // Paper protocol: "create history chains for its relationships by
        // adding thirty-two NEW properties" — each round adds a distinct
        // key, so fully materialized versions grow with the chain while
        // deltas stay constant-size. This is what makes materialize-every-
        // update pay up to +80% storage.
        for round in 0..32u64 {
            for i in 0..rels {
                ts += 1;
                store
                    .apply_update(
                        ts,
                        &Update::SetRelProp {
                            id: RelId::new(i),
                            key: StrId::new(10 + round as u32),
                            value: PropertyValue::Int((round * 1000 + i) as i64),
                        },
                    )
                    .expect("set");
            }
        }
        store.sync().expect("sync");
        // Measure random version reads across the whole history.
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let probes: Vec<(RelId, u64)> = (0..cfg.point_ops)
            .map(|_| (RelId::new(rng.gen_range(0..rels)), rng.gen_range(1..=ts)))
            .collect();
        let t = Timer::start();
        for (rel, at) in &probes {
            std::hint::black_box(store.rel_at(*rel, *at).expect("read"));
        }
        let read_rate = t.ops_per_sec(probes.len());
        let storage = store.size_bytes();
        let base_r = *base_rate.get_or_insert(read_rate);
        let base_s = *base_storage.get_or_insert(storage);
        let row = MaterializeRow {
            threshold,
            read_rate,
            storage_ratio: storage as f64 / base_s as f64,
        };
        println!(
            "{:<10} {:>16} {:>17.2}x {:>13.2}x",
            label,
            fmt_rate(read_rate),
            read_rate / base_r,
            row.storage_ratio,
        );
        out.push(row);
    }
    out
}
