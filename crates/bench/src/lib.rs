//! # aion-bench — the experiment harness (paper Sec. 6)
//!
//! One module per table/figure of the evaluation. Each experiment builds a
//! scaled-down workload with the Table 3 shape, runs the same measurement
//! protocol as the paper, and prints measured numbers next to the paper's
//! reported values so the *shape* of every result (who wins, by roughly
//! what factor, where the crossovers fall) can be compared directly.
//!
//! Run via the `figures` binary:
//!
//! ```text
//! cargo run -p aion-bench --release --bin figures -- all --edges 20000
//! cargo run -p aion-bench --release --bin figures -- fig8 --edges 50000
//! ```
//!
//! Absolute numbers will differ from the paper (different hardware, scaled
//! datasets, a reimplementation); `EXPERIMENTS.md` records a full run.

pub mod ablations;
pub mod common;
pub mod fig06_point_queries;
pub mod fig07_snapshots;
pub mod fig08_nhop;
pub mod fig09_ingest;
pub mod fig10_storage;
pub mod fig11_materialize;
pub mod fig12_incremental;
pub mod fig13_bolt;
pub mod fig14_procedures;
pub mod scan_paged;
pub mod table3_datasets;
pub mod table4_complexity;
pub mod write_throughput;

pub use common::{BenchConfig, Timer};
