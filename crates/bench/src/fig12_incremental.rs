//! Fig. 12 — speedup of incremental graph computations over per-snapshot
//! recomputation, for 10 and 100 consecutive snapshots (embedded mode).
//!
//! Protocol (Sec. 6.6): load half of each graph's relationships into the
//! first snapshot, split the rest into 100 increments, then evaluate AVG /
//! BFS / PageRank over the snapshot series.
//!
//! Paper shape: AVG up to 9× (10 snapshots) and 46.5× (100); BFS and
//! PageRank between 2.3–12× and 3.5–8.3×.

use crate::common::{banner, ingest_aion, open_aion, BenchConfig, Timer};
use aion::procedures::ExecMode;
use algo::pagerank::PageRankConfig;
use lpg::StrId;
use tempfile::tempdir;

/// Datasets measured.
pub const DATASETS: [&str; 4] = ["DBLP", "WikiTalk", "Pokec", "LiveJournal"];

/// One measured row.
pub struct IncrementalRow {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm label (`AVG`, `BFS`, `PR`).
    pub algo: &'static str,
    /// Snapshot count (10 or 100).
    pub snapshots: usize,
    /// Wall-clock speedup of incremental over classic.
    pub speedup: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<IncrementalRow> {
    banner(
        "Fig. 12 — incremental execution speedup (10 and 100 snapshots)",
        "paper: AVG ≤9x/46.5x, BFS 2.3-12x, PR 3.5-8.3x; more snapshots ⇒ more reuse",
    );
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "dataset/algo(snaps)", "classic(s)", "incr(s)", "speedup"
    );
    let weight = StrId::new(2);
    let mut out = Vec::new();
    for name in DATASETS {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        // Sec. 6.6 protocol: series starts at the half-way timestamp.
        let half = w.max_ts / 2;
        let end = w.max_ts + 1;
        for snapshots in [10usize, 100] {
            let step = ((end - half) / snapshots as u64).max(1);
            // AVG.
            let t = Timer::start();
            let classic = db
                .proc_avg_series(weight, half, end, step, ExecMode::Classic)
                .expect("avg classic");
            let classic_s = t.secs();
            let t = Timer::start();
            let incr = db
                .proc_avg_series(weight, half, end, step, ExecMode::Incremental)
                .expect("avg incr");
            let incr_s = t.secs();
            debug_assert_eq!(classic.points.len(), incr.points.len());
            report(&mut out, name, "AVG", snapshots, classic_s, incr_s);

            // BFS from node 0 (a hub under the skewed generator).
            let src = lpg::NodeId::new(0);
            let t = Timer::start();
            let _ = db
                .proc_bfs_series(src, half, end, step, ExecMode::Classic)
                .expect("bfs classic");
            let classic_s = t.secs();
            let t = Timer::start();
            let _ = db
                .proc_bfs_series(src, half, end, step, ExecMode::Incremental)
                .expect("bfs incr");
            let incr_s = t.secs();
            report(&mut out, name, "BFS", snapshots, classic_s, incr_s);

            // PageRank (ε = 0.01, ≤100 iterations, as in the paper).
            let pr = PageRankConfig {
                damping: 0.85,
                max_iters: 100,
                epsilon: 0.01,
            };
            let t = Timer::start();
            let _ = db
                .proc_pagerank_series(pr, half, end, step, ExecMode::Classic)
                .expect("pr classic");
            let classic_s = t.secs();
            let t = Timer::start();
            let _ = db
                .proc_pagerank_series(pr, half, end, step, ExecMode::Incremental)
                .expect("pr incr");
            let incr_s = t.secs();
            report(&mut out, name, "PR", snapshots, classic_s, incr_s);
        }
    }
    out
}

fn report(
    out: &mut Vec<IncrementalRow>,
    dataset: &str,
    algo: &'static str,
    snapshots: usize,
    classic_s: f64,
    incr_s: f64,
) {
    let speedup = classic_s / incr_s.max(1e-9);
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>9.1}x",
        format!("{dataset}/{algo}({snapshots})"),
        classic_s,
        incr_s,
        speedup
    );
    out.push(IncrementalRow {
        dataset: dataset.to_string(),
        algo,
        snapshots,
        speedup,
    });
}
