//! Fig. 6 — point-query throughput: fetching random relationships at
//! arbitrary time points, Aion (LineageStore) vs Raphtory.
//!
//! Paper shape: Raphtory ≈ 30 % faster on small graphs (DBLP, WikiTalk),
//! gap < 7 % on larger graphs; Aion is "comparable".

use crate::common::{banner, build_raphtory, fmt_rate, ingest_aion, open_aion, BenchConfig, Timer};
use baselines::TemporalBackend;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;

/// Datasets measured, in paper order.
pub const DATASETS: [&str; 6] = [
    "DBLP",
    "WikiTalk",
    "Pokec",
    "LiveJournal",
    "DBPedia",
    "Orkut",
];

/// Paper shape hint per dataset: Raphtory-over-Aion throughput ratio.
const PAPER_RATIO: [f64; 6] = [1.30, 1.30, 1.07, 1.07, 1.07, 1.07];

/// Runs the experiment and returns `(dataset, aion ops/s, raphtory ops/s)`.
pub fn run(cfg: &BenchConfig) -> Vec<(String, f64, f64)> {
    banner(
        "Fig. 6 — point queries: random relationship fetches at random timestamps",
        "paper: Raphtory ~1.3x on small graphs, <1.07x on large ones",
    );
    println!(
        "{:<12} {:>16} {:>16} {:>10} {:>12}",
        "dataset", "Aion", "Raphtory", "R/A", "paper R/A"
    );
    let mut out = Vec::new();
    for (i, name) in DATASETS.iter().enumerate() {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        let raphtory = build_raphtory(&w);

        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let probes: Vec<(lpg::RelId, u64)> = (0..cfg.point_ops)
            .map(|_| (w.random_rel(&mut rng), w.random_ts(&mut rng)))
            .collect();

        // Aion point path: LineageStore B+Tree lookups.
        let t = Timer::start();
        let mut hits = 0usize;
        for (rel, ts) in &probes {
            if db
                .lineagestore()
                .rel_at(*rel, *ts)
                .expect("lookup")
                .is_some()
            {
                hits += 1;
            }
        }
        let aion_rate = t.ops_per_sec(probes.len());

        // Raphtory point path: linear endpoint-history scans.
        let t = Timer::start();
        let mut rhits = 0usize;
        for (rel, ts) in &probes {
            if raphtory.rel_at(*rel, *ts).is_some() {
                rhits += 1;
            }
        }
        let raph_rate = t.ops_per_sec(probes.len());

        println!(
            "{:<12} {:>16} {:>16} {:>9.2}x {:>11.2}x   (hits {}/{})",
            name,
            fmt_rate(aion_rate),
            fmt_rate(raph_rate),
            raph_rate / aion_rate,
            PAPER_RATIO[i],
            hits,
            rhits,
        );
        out.push((name.to_string(), aion_rate, raph_rate));
    }
    out
}
