//! Fig. 7 — global queries: fetching full graph snapshots at random
//! timestamps, Aion (TimeStore + GraphStore) vs Raphtory vs Gradoop.
//!
//! Paper shape: Aion 7.3× / 4.5× / 3.5× / 3× faster than Raphtory on
//! DBLP / WikiTalk / Pokec / LiveJournal, 30–50 % on the biggest graphs,
//! and 6.6–52.2× faster than Gradoop.

use crate::common::{
    banner, build_gradoop, build_raphtory, ingest_aion, open_aion, BenchConfig, Timer,
};
use baselines::TemporalBackend;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;

/// Datasets measured.
pub const DATASETS: [&str; 6] = [
    "DBLP",
    "WikiTalk",
    "Pokec",
    "LiveJournal",
    "DBPedia",
    "Orkut",
];

/// Paper Aion-over-Raphtory speedups per dataset.
const PAPER_VS_RAPHTORY: [f64; 6] = [7.3, 4.5, 3.5, 3.0, 1.4, 1.4];

/// Runs the experiment; returns `(dataset, aion s, raphtory s, gradoop s)`.
pub fn run(cfg: &BenchConfig) -> Vec<(String, f64, f64, f64)> {
    banner(
        "Fig. 7 — global queries: full snapshots at random timestamps",
        "paper: Aion 3-7.3x vs Raphtory (small), 1.3-1.5x (large); 6.6-52.2x vs Gradoop",
    );
    println!(
        "{:<12} {:>10} {:>11} {:>10} {:>8} {:>10} {:>8}",
        "dataset", "Aion (ms)", "Raphtory", "Gradoop", "A/R", "paper", "A/G"
    );
    let mut out = Vec::new();
    for (i, name) in DATASETS.iter().enumerate() {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        let raphtory = build_raphtory(&w);
        let gradoop = build_gradoop(&w);

        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5555);
        let probes: Vec<u64> = (0..cfg.snapshot_runs)
            .map(|_| w.random_ts(&mut rng))
            .collect();

        let t = Timer::start();
        for &ts in &probes {
            // Include the |G| materialization cost (the paper's snapshot
            // retrieval copies the snapshot out of the GraphStore).
            let g = db.get_graph_at(ts).expect("snapshot");
            std::hint::black_box((*g).clone().node_count());
        }
        let aion_s = t.secs() / probes.len() as f64;

        let t = Timer::start();
        for &ts in &probes {
            std::hint::black_box(raphtory.snapshot_at(ts).node_count());
        }
        let raph_s = t.secs() / probes.len() as f64;

        let t = Timer::start();
        for &ts in &probes {
            std::hint::black_box(gradoop.snapshot_at(ts).node_count());
        }
        let grad_s = t.secs() / probes.len() as f64;

        println!(
            "{:<12} {:>10.3} {:>11.3} {:>10.3} {:>7.1}x {:>9.1}x {:>7.1}x",
            name,
            aion_s * 1e3,
            raph_s * 1e3,
            grad_s * 1e3,
            raph_s / aion_s,
            PAPER_VS_RAPHTORY[i],
            grad_s / aion_s,
        );
        out.push((name.to_string(), aion_s, raph_s, grad_s));
    }
    out
}
