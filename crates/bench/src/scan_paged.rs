//! Paged-scan materialization footprint (PR 9's streaming executor).
//!
//! Runs the same full temporal scan twice — one-shot and paged — and
//! reports *rows-materialized* proxies rather than wall-clock numbers,
//! so the gate is deterministic across machines:
//!
//! * `peak_rows` — the largest row batch held in memory at once: the
//!   whole result for the one-shot run, at most one page for the paged
//!   run. This is the direct evidence that the paged executor streams
//!   instead of materializing.
//! * `streamed_ratio` — rows streamed through the scan (counter
//!   `query.rows_streamed` delta) divided by the result cardinality:
//!   ~1.0 for both runs, proving paging re-reads nothing and skips
//!   nothing.

use crate::common::banner;
use aion::{Aion, AionConfig};
use lpg::NodeId;
use query::{execute, execute_paged, ExecBudget, Params};
use tempfile::tempdir;

/// Knobs for the paged-scan experiment.
#[derive(Clone, Debug)]
pub struct ScanPagedConfig {
    /// Nodes in the scanned graph (also the scan's result cardinality).
    pub nodes: u64,
    /// Page size for the paged run.
    pub page_size: usize,
    /// Seed spread into node ids so runs do not collide.
    pub seed: u64,
}

impl Default for ScanPagedConfig {
    fn default() -> Self {
        ScanPagedConfig {
            nodes: 8_000,
            page_size: 64,
            seed: 11,
        }
    }
}

/// One measured configuration.
pub struct ScanPagedRow {
    /// Configuration name: `one_shot` or `paged_<N>`.
    pub metric: String,
    /// Largest row batch materialized at once.
    pub peak_rows: f64,
    /// Rows streamed through the executor relative to the result size.
    pub streamed_ratio: f64,
}

/// Runs the experiment.
pub fn run(cfg: &ScanPagedConfig) -> Vec<ScanPagedRow> {
    banner(
        "Paged scan — rows materialized per request",
        "one-shot holds the whole result; paging holds at most one page",
    );
    let dir = tempdir().expect("tempdir");
    let db = Aion::open(AionConfig::new(dir.path())).expect("open");
    let ids: Vec<u64> = (0..cfg.nodes).map(|i| cfg.seed * 1_000_000 + i).collect();
    for chunk in ids.chunks(1_000) {
        let chunk = chunk.to_vec();
        db.write(|txn| {
            for id in &chunk {
                txn.add_node(NodeId::new(*id), vec![], vec![])?;
            }
            Ok(())
        })
        .expect("seed commit");
    }
    db.lineage_barrier(db.latest_ts());

    let streamed = obs::counter("query.rows_streamed");
    let params = Params::new();
    let q = "MATCH (n) RETURN id(n)";
    let total = cfg.nodes as f64;

    let before = streamed.get();
    let full = execute(&db, q, &params).expect("one-shot scan");
    let one_shot = ScanPagedRow {
        metric: "one_shot".to_string(),
        peak_rows: full.rows.len() as f64,
        streamed_ratio: (streamed.get() - before) as f64 / total,
    };

    let before = streamed.get();
    let mut peak = 0usize;
    let mut drained = 0usize;
    let mut cursor: Option<Vec<u8>> = None;
    let mut started = false;
    while !started || cursor.is_some() {
        started = true;
        let page = execute_paged(
            &db,
            q,
            &params,
            ExecBudget::unlimited(),
            cfg.page_size,
            cursor.take().as_deref(),
        )
        .expect("paged scan");
        peak = peak.max(page.result.rows.len());
        drained += page.result.rows.len();
        cursor = page.cursor;
    }
    assert_eq!(drained, full.rows.len(), "paged drain must match one-shot");
    let paged = ScanPagedRow {
        metric: format!("paged_{}", cfg.page_size),
        peak_rows: peak as f64,
        streamed_ratio: (streamed.get() - before) as f64 / total,
    };

    let rows = vec![one_shot, paged];
    println!(
        "{:<12} {:>12} {:>16}",
        "config", "peak rows", "streamed ratio"
    );
    for r in &rows {
        println!(
            "{:<12} {:>12.0} {:>16.4}",
            r.metric, r.peak_rows, r.streamed_ratio
        );
    }
    println!("(peak rows: the paged run holds at most one page in memory)");
    rows
}
