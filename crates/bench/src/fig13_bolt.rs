//! Fig. 13 — end-to-end transactions over the Bolt-style protocol:
//! read-only, 10 % writes and 20 % writes, with concurrent client threads.
//!
//! Paper shape: read-only saturates around 37 k queries/s (32 cores);
//! 10 % writes cost ~20 % of throughput, 20 % writes ~35 %. Our absolute
//! numbers are single-core, but the *relative drop* is the reproducible
//! shape.

use crate::common::{banner, fmt_rate, ingest_aion, open_aion, BenchConfig, Timer};
use aion_server::{Client, Server};
use query::Value;
use std::sync::Arc;
use tempfile::tempdir;
use workload::{ClientOp, TxMix};

/// Write fractions measured.
pub const MIXES: [(f64, &str); 3] = [(0.0, "read-only"), (0.1, "10% writes"), (0.2, "20% writes")];

/// One measured row.
pub struct BoltRow {
    /// Mix label.
    pub mix: &'static str,
    /// End-to-end queries per second.
    pub rate: f64,
    /// Throughput relative to read-only.
    pub relative: f64,
}

/// Runs the experiment with `threads` concurrent clients over the DBLP
/// workload.
pub fn run(cfg: &BenchConfig) -> Vec<BoltRow> {
    banner(
        "Fig. 13 — Cypher over Bolt: mixed read/write transaction throughput",
        "paper: 10% writes ⇒ -20%, 20% writes ⇒ -35% vs read-only",
    );
    let threads = 4usize;
    let ops_per_thread = (cfg.point_ops / 2).max(200);
    let w = cfg.workload("DBLP");
    let dir = tempdir().expect("tempdir");
    let db = Arc::new(open_aion(dir.path(), false));
    ingest_aion(&db, &w);
    let server = Server::start(db.clone()).expect("server");
    let addr = server.addr();

    println!(
        "{:<12} {:>14} {:>12}   ({} client threads x {} ops)",
        "mix", "throughput", "vs read-only", threads, ops_per_thread
    );
    let mut out = Vec::new();
    let mut read_only_rate = None;
    for (write_fraction, label) in MIXES {
        let t = Timer::start();
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let nodes = w.node_count;
                let rels = w.rel_ids.len() as u64;
                let max_ts = w.max_ts;
                let seed = cfg.seed ^ (tid as u64) ^ (write_fraction * 100.0) as u64;
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut mix = TxMix::new(seed, write_fraction, nodes, rels, max_ts);
                    // Disambiguate created ids across threads.
                    let id_stride = 10_000_000 * (tid as u64 + 1);
                    for i in 0..ops_per_thread {
                        match mix.next_op() {
                            ClientOp::ReadNode(id, ts) => {
                                let _ = client.run(
                                    &format!(
                                        "USE GDB FOR SYSTEM_TIME AS OF {ts} MATCH (n) WHERE id(n) = $id RETURN n"
                                    ),
                                    vec![("id".into(), Value::Int(id.raw() as i64))],
                                );
                            }
                            ClientOp::ReadRel(id, ts) => {
                                let _ = client.run(
                                    &format!(
                                        "USE GDB FOR SYSTEM_TIME AS OF {ts} MATCH ()-[r]->() WHERE id(r) = $id RETURN r"
                                    ),
                                    vec![("id".into(), Value::Int(id.raw() as i64))],
                                );
                            }
                            ClientOp::CreateNode(id) => {
                                let fresh = id.raw() + id_stride + i as u64;
                                let _ = client.run(
                                    &format!("CREATE (n:Client {{_id: {fresh}}})"),
                                    vec![],
                                );
                            }
                            ClientOp::UpdateNode(id) => {
                                let _ = client.run(
                                    &format!(
                                        "MATCH (n) WHERE id(n) = {} SET n.touched = {i}",
                                        id.raw()
                                    ),
                                    vec![],
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let total_ops = threads * ops_per_thread;
        let rate = t.ops_per_sec(total_ops);
        let base = *read_only_rate.get_or_insert(rate);
        let row = BoltRow {
            mix: label,
            rate,
            relative: rate / base,
        };
        println!(
            "{:<12} {:>14} {:>11.2}x",
            label,
            fmt_rate(rate),
            row.relative
        );
        out.push(row);
    }
    out
}
