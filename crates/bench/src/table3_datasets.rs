//! Table 3 — the evaluation datasets: shape parameters and in-memory
//! sizes of the dynamic representation vs the hash-map baseline.
//!
//! The paper compares Neo4j's in-memory size against Aion's Fig. 5
//! four-vector layout and finds Aion consistently slightly smaller; here
//! the analogous comparison is the reference `lpg::Graph` (hash maps,
//! Neo4j-style general-purpose structures) vs `dyngraph::DynGraph`.

use crate::common::{banner, BenchConfig};
use dyngraph::DynGraph;
use lpg::Graph;
use workload::DATASETS;

/// One measured row.
pub struct DatasetRow {
    /// Dataset name.
    pub name: String,
    /// Scaled |V|.
    pub nodes: u64,
    /// Scaled |E|.
    pub rels: u64,
    /// |E| / |V|.
    pub avg_degree: f64,
    /// Hash-map graph bytes.
    pub graph_bytes: usize,
    /// Dynamic four-vector representation bytes.
    pub dyn_bytes: usize,
}

/// Runs the accounting.
pub fn run(cfg: &BenchConfig) -> Vec<DatasetRow> {
    banner(
        "Table 3 — datasets (scaled) and in-memory representation sizes",
        "paper: Aion's four-vector layout is consistently ~3-5% smaller than Neo4j's",
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>6} {:>14} {:>14} {:>8}",
        "dataset", "|V|", "|E|", "|E|/|V|", "dir", "map-graph", "dyn-graph", "ratio"
    );
    let mut out = Vec::new();
    for d in DATASETS {
        let spec = cfg.spec(d.name);
        let w = workload::generate(spec, cfg.seed);
        let mut g = Graph::new();
        for u in &w.updates {
            g.apply(&u.op).expect("consistent stream");
        }
        let dynamic = DynGraph::from_graph(&g);
        let row = DatasetRow {
            name: d.name.to_string(),
            nodes: spec.nodes,
            rels: w.rel_ids.len() as u64,
            avg_degree: d.avg_degree(),
            graph_bytes: g.heap_size(),
            dyn_bytes: dynamic.heap_size(),
        };
        println!(
            "{:<12} {:>10} {:>10} {:>8.1} {:>6} {:>11} KiB {:>11} KiB {:>7.2}",
            row.name,
            row.nodes,
            row.rels,
            row.avg_degree,
            if d.directed { "yes" } else { "no" },
            row.graph_bytes / 1024,
            row.dyn_bytes / 1024,
            row.dyn_bytes as f64 / row.graph_bytes as f64,
        );
        out.push(row);
    }
    out
}
