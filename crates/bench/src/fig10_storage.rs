//! Fig. 10 — on-disk storage footprint: the base store versus the two
//! temporal stores.
//!
//! Paper shape: relative to the full Neo4j footprint (data + indexes +
//! transaction logs), Aion's hybrid store adds 29–41 %, roughly a quarter
//! of which is serialized snapshots — despite indexing every update twice,
//! thanks to the variable-size record format.

use crate::common::{banner, ingest_aion, open_aion, BenchConfig};
use tempfile::tempdir;

/// Datasets measured.
pub const DATASETS: [&str; 4] = ["DBLP", "WikiTalk", "Pokec", "LiveJournal"];

/// One measured row (bytes).
pub struct StorageRow {
    /// Dataset name.
    pub dataset: String,
    /// TimeStore bytes (log + index + snapshots).
    pub timestore: u64,
    /// LineageStore bytes (four B+Tree indexes).
    pub lineagestore: u64,
    /// Base graph bytes (the snapshot-file equivalent of the data).
    pub base: u64,
    /// Temporal overhead relative to base.
    pub overhead: f64,
}

/// Runs the experiment.
pub fn run(cfg: &BenchConfig) -> Vec<StorageRow> {
    banner(
        "Fig. 10 — storage footprint of the temporal stores",
        "paper: +29-41% over the full Neo4j footprint; log dominates, ~25% snapshots",
    );
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12} {:>10}",
        "dataset", "base (KiB)", "TimeStore", "LineageStore", "total", "overhead"
    );
    let mut out = Vec::new();
    for name in DATASETS {
        let w = cfg.workload(name);
        let dir = tempdir().expect("tempdir");
        let db = open_aion(dir.path(), true);
        ingest_aion(&db, &w);
        db.sync().expect("sync");

        let ts_stats = db.timestore().stats();
        let timestore = ts_stats.log_bytes + ts_stats.index_bytes + ts_stats.snapshot_bytes;
        let lineagestore = db.lineagestore().size_bytes();
        // Base cost: one serialized snapshot of the final graph — the
        // "graph data" a non-temporal store must hold anyway. The paper's
        // Neo4j baseline additionally keeps indexes and retained txn logs
        // (6-9× the raw data), which makes its reported relative overhead
        // smaller; we report against raw data, the conservative comparison.
        let base = encoding::snapshot::encode_graph(&db.latest_graph()).len() as u64;
        let overhead = (timestore + lineagestore) as f64 / base as f64;
        println!(
            "{:<12} {:>12} {:>14} {:>14} {:>12} {:>9.1}x",
            name,
            base / 1024,
            format!("{} KiB", timestore / 1024),
            format!("{} KiB", lineagestore / 1024),
            format!("{} KiB", (timestore + lineagestore) / 1024),
            overhead,
        );
        out.push(StorageRow {
            dataset: name.to_string(),
            timestore,
            lineagestore,
            base,
            overhead,
        });
    }
    println!(
        "(paper's +29-41% is vs the FULL Neo4j footprint incl. retained txn logs,\n\
         i.e. 6-9x the raw data; against raw data the same hybrid store measures\n\
         a few x, dominated by the no-retention change log — same shape as here)"
    );
    out
}
