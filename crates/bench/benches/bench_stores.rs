//! Micro-benchmarks of the two temporal stores and the baselines on the
//! paper's three access classes: point queries (Fig. 6), snapshots
//! (Fig. 7) and n-hop expansion (Fig. 8).

use aion_bench::common::{build_gradoop, build_raphtory, ingest_aion, open_aion, BenchConfig};
use baselines::TemporalBackend;
use criterion::{criterion_group, criterion_main, Criterion};
use lpg::Direction;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tempfile::tempdir;

fn bench(c: &mut Criterion) {
    let cfg = BenchConfig {
        target_edges: 10_000,
        ..Default::default()
    };
    let w = cfg.workload("WikiTalk");
    let dir = tempdir().unwrap();
    let db = open_aion(dir.path(), true);
    ingest_aion(&db, &w);
    let raphtory = build_raphtory(&w);
    let gradoop = build_gradoop(&w);
    let mut rng = SmallRng::seed_from_u64(7);

    let mut g = c.benchmark_group("point_queries");
    g.bench_function("aion_lineage_rel_at", |b| {
        b.iter(|| {
            let rel = w.random_rel(&mut rng);
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(db.lineagestore().rel_at(rel, ts).unwrap())
        })
    });
    g.bench_function("raphtory_rel_at", |b| {
        b.iter(|| {
            let rel = w.random_rel(&mut rng);
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(raphtory.rel_at(rel, ts))
        })
    });
    g.sample_size(10);
    g.bench_function("gradoop_rel_at", |b| {
        b.iter(|| {
            let rel = w.random_rel(&mut rng);
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(gradoop.rel_at(rel, ts))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("snapshots");
    g.sample_size(10);
    g.bench_function("aion_timestore", |b| {
        b.iter(|| {
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(db.get_graph_at(ts).unwrap().node_count())
        })
    });
    g.bench_function("raphtory_all_history_scan", |b| {
        b.iter(|| {
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(raphtory.snapshot_at(ts).node_count())
        })
    });
    g.bench_function("gradoop_scan_and_join", |b| {
        b.iter(|| {
            let ts = w.random_ts(&mut rng);
            std::hint::black_box(gradoop.snapshot_at(ts).node_count())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("expand");
    g.sample_size(10);
    let end = w.max_ts;
    for hops in [1u32, 2, 4] {
        g.bench_function(format!("lineage_{hops}hop"), |b| {
            b.iter(|| {
                let n = w.random_node(&mut rng);
                std::hint::black_box(
                    db.lineagestore()
                        .expand(n, Direction::Outgoing, hops, end)
                        .map(|h| h.len())
                        .unwrap_or(0),
                )
            })
        });
        g.bench_function(format!("timestore_{hops}hop"), |b| {
            b.iter(|| {
                let n = w.random_node(&mut rng);
                std::hint::black_box(
                    db.expand_via_snapshot(n, Direction::Outgoing, hops, end)
                        .map(|h| h.len())
                        .unwrap_or(0),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
