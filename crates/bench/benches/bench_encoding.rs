//! Micro-benchmarks of the variable-size record codec (Fig. 3) and the
//! snapshot serializer.

use criterion::{criterion_group, criterion_main, Criterion};
use encoding::{snapshot, RecordBody};
use lpg::{Graph, NodeId, PropertyValue, RelId, StrId, Update};

fn sample_body() -> RecordBody {
    RecordBody::NodeFull {
        labels: vec![StrId::new(1), StrId::new(2)],
        props: vec![
            (StrId::new(0), PropertyValue::Int(42)),
            (StrId::new(1), PropertyValue::Float(2.5)),
            (StrId::new(2), PropertyValue::Str(StrId::new(99))),
        ],
    }
}

fn sample_graph(n: u64) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        g.apply(&Update::AddNode {
            id: NodeId::new(i),
            labels: vec![StrId::new((i % 4) as u32)],
            props: vec![(StrId::new(0), PropertyValue::Int(i as i64))],
        })
        .unwrap();
    }
    for i in 0..n * 4 {
        g.apply(&Update::AddRel {
            id: RelId::new(i),
            src: NodeId::new(i % n),
            tgt: NodeId::new((i * 13 + 1) % n),
            label: Some(StrId::new(9)),
            props: vec![(StrId::new(1), PropertyValue::Float(i as f64))],
        })
        .unwrap();
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");

    let body = sample_body();
    g.bench_function("record_encode", |b| {
        b.iter(|| std::hint::black_box(body.to_bytes()))
    });

    let bytes = body.to_bytes();
    g.bench_function("record_decode", |b| {
        b.iter(|| std::hint::black_box(RecordBody::from_bytes(&bytes).unwrap()))
    });

    g.bench_function("composite_key", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(encoding::keys::neigh_key(
                NodeId::new(i),
                NodeId::new(i * 3),
                RelId::new(i),
                i,
            ))
        })
    });

    let graph = sample_graph(2_000);
    g.bench_function("snapshot_encode_10k_entities", |b| {
        b.iter(|| std::hint::black_box(snapshot::encode_graph(&graph).len()))
    });

    let blob = snapshot::encode_graph(&graph);
    g.bench_function("snapshot_decode_10k_entities", |b| {
        b.iter(|| std::hint::black_box(snapshot::decode_graph(&blob).unwrap().node_count()))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
