//! Algorithm micro-benchmarks (Fig. 12 shape): static vs incremental
//! execution on a snapshot step.

use algo::aggregate::{avg_rel_property, IncrementalAvg};
use algo::bfs::{bfs_levels, IncrementalBfs};
use algo::pagerank::{pagerank, IncrementalPageRank, PageRankConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use dyngraph::{Csr, DynGraph};
use lpg::{Direction, NodeId, StrId, TimestampedUpdate};
use workload::datasets;

fn bench(c: &mut Criterion) {
    let spec = datasets::by_name("Pokec").unwrap().scaled(0.0005);
    let w = workload::generate(spec, 5);
    let half = w.updates.len() / 2;
    let mut graph = DynGraph::new();
    for u in &w.updates[..half] {
        graph.apply(&u.op).unwrap();
    }
    // One increment: the next 1% of updates.
    let inc: Vec<TimestampedUpdate> = w.updates[half..half + w.updates.len() / 100].to_vec();
    let mut after = graph.clone();
    for u in &inc {
        after.apply(&u.op).unwrap();
    }
    let weight = StrId::new(2);
    let src = NodeId::new(0);

    let mut g = c.benchmark_group("algorithms");
    g.sample_size(10);

    g.bench_function("avg_scratch", |b| {
        b.iter(|| std::hint::black_box(avg_rel_property(&after, weight)))
    });
    g.bench_function("avg_incremental_step", |b| {
        let base = IncrementalAvg::from_graph(&graph, weight);
        b.iter(|| {
            let mut agg = base.clone();
            agg.apply_diff(&inc);
            std::hint::black_box(agg.value())
        })
    });

    g.bench_function("bfs_scratch", |b| {
        b.iter(|| std::hint::black_box(bfs_levels(&after, src).len()))
    });
    g.bench_function("bfs_incremental_step", |b| {
        b.iter(|| {
            let mut engine = IncrementalBfs::new(&graph, src);
            engine.apply_diff(&after, &inc);
            std::hint::black_box(engine.levels().len())
        })
    });

    let pr_cfg = PageRankConfig::default();
    g.bench_function("pagerank_scratch", |b| {
        let csr = Csr::project(&after, Direction::Outgoing, None);
        b.iter(|| std::hint::black_box(pagerank(&csr, pr_cfg).iterations))
    });
    g.bench_function("pagerank_incremental_step", |b| {
        b.iter(|| {
            let mut engine = IncrementalPageRank::new(pr_cfg);
            engine.run(&graph);
            std::hint::black_box(engine.run(&after).len())
        })
    });

    g.bench_function("csr_projection", |b| {
        b.iter(|| {
            std::hint::black_box(Csr::project(&after, Direction::Outgoing, None).edge_count())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
