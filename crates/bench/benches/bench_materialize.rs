//! Delta-chain materialization micro-benchmark (Fig. 11): read cost of a
//! version at the end of a delta chain, per chain-length threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use lineagestore::{LineageStore, LineageStoreConfig};
use lpg::{NodeId, PropertyValue, RelId, StrId, Update};
use tempfile::tempdir;

fn build(threshold: Option<u32>) -> (tempfile::TempDir, LineageStore, u64) {
    let dir = tempdir().unwrap();
    let store = LineageStore::open(
        dir.path().join("l.db"),
        LineageStoreConfig {
            cache_pages: 2048,
            chain_threshold: threshold,
            ..Default::default()
        },
    )
    .unwrap();
    let rels = 200u64;
    let mut ts = 0;
    for i in 0..2 {
        ts += 1;
        store
            .apply_update(
                ts,
                &Update::AddNode {
                    id: NodeId::new(i),
                    labels: vec![],
                    props: vec![],
                },
            )
            .unwrap();
    }
    for i in 0..rels {
        ts += 1;
        store
            .apply_update(
                ts,
                &Update::AddRel {
                    id: RelId::new(i),
                    src: NodeId::new(0),
                    tgt: NodeId::new(1),
                    label: None,
                    props: vec![],
                },
            )
            .unwrap();
    }
    for round in 0..32u64 {
        for i in 0..rels {
            ts += 1;
            store
                .apply_update(
                    ts,
                    &Update::SetRelProp {
                        id: RelId::new(i),
                        key: StrId::new(0),
                        value: PropertyValue::Int((round * rels + i) as i64),
                    },
                )
                .unwrap();
        }
    }
    (dir, store, ts)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("materialization");
    g.sample_size(20);
    for (threshold, label) in [
        (None, "chain_32_pure_deltas"),
        (Some(8u32), "chain_8"),
        (Some(4), "chain_4_paper_default"),
        (Some(1), "chain_1_always_full"),
    ] {
        let (_d, store, max_ts) = build(threshold);
        let mut i = 0u64;
        g.bench_function(label, |b| {
            b.iter(|| {
                i = i.wrapping_add(7919);
                let rel = RelId::new(i % 200);
                let ts = 1 + (i % max_ts);
                std::hint::black_box(store.rel_at(rel, ts).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
