//! Micro-benchmarks of the B+Tree substrate: inserts, point lookups, floor
//! seeks and range scans over the page cache.

use btree::BTree;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pagestore::PageStore;
use std::sync::Arc;
use tempfile::tempdir;

fn key(i: u64) -> [u8; 16] {
    encoding::keys::entity_ts_key(i % 10_000, i)
}

fn populated(n: u64, cache_pages: usize) -> (tempfile::TempDir, BTree) {
    let dir = tempdir().unwrap();
    let store = Arc::new(PageStore::open(dir.path().join("b.db"), cache_pages).unwrap());
    let tree = BTree::open(store, 0).unwrap();
    for i in 0..n {
        tree.insert(&key(i), &i.to_le_bytes()).unwrap();
    }
    (dir, tree)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);

    g.bench_function("insert_50k", |b| {
        b.iter_batched(
            || {
                let dir = tempdir().unwrap();
                let store = Arc::new(PageStore::open(dir.path().join("b.db"), 1024).unwrap());
                (dir, BTree::open(store, 0).unwrap())
            },
            |(_d, tree)| {
                for i in 0..50_000u64 {
                    tree.insert(&key(i), &i.to_le_bytes()).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    let (_d, tree) = populated(100_000, 1024);
    let mut probe = 0u64;
    g.bench_function("get_warm_cache", |b| {
        b.iter(|| {
            probe = probe.wrapping_add(7919);
            std::hint::black_box(tree.get(&key(probe % 100_000)).unwrap())
        })
    });

    g.bench_function("seek_floor", |b| {
        b.iter(|| {
            probe = probe.wrapping_add(104729);
            std::hint::black_box(tree.seek_floor(&key(probe % 100_000)).unwrap())
        })
    });

    g.bench_function("scan_1k_entries", |b| {
        b.iter(|| {
            let start = key(probe % 90_000);
            let count = tree.scan(&start, &[]).unwrap().take(1_000).count();
            std::hint::black_box(count)
        })
    });

    // Out-of-core: tiny cache forces page churn.
    let (_d2, cold) = populated(100_000, 16);
    g.bench_function("get_cold_cache", |b| {
        b.iter(|| {
            probe = probe.wrapping_add(7919);
            std::hint::black_box(cold.get(&key(probe % 100_000)).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
