//! Ingestion micro-benchmarks (Fig. 9): the cost of feeding one batched
//! commit through each store configuration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lineagestore::{LineageStore, LineageStoreConfig};
use tempfile::tempdir;
use timestore::{SnapshotPolicy, TimeStore, TimeStoreConfig};
use workload::datasets;

fn bench(c: &mut Criterion) {
    let spec = datasets::by_name("WikiTalk").unwrap().scaled(0.001);
    let w = workload::generate(spec, 11);
    let batches: Vec<(u64, Vec<lpg::Update>)> = w.batches(1_000).collect();

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);

    g.bench_function("timestore_full_load", |b| {
        b.iter_batched(
            || tempdir().unwrap(),
            |dir| {
                let ts = TimeStore::open(
                    dir.path().join("ts"),
                    TimeStoreConfig {
                        cache_pages: 2048,
                        policy: SnapshotPolicy::EveryNOps(5_000),
                        graphstore_bytes: 32 << 20,
                        ..Default::default()
                    },
                )
                .unwrap();
                for (t, ops) in &batches {
                    ts.append_commit(*t, ops).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("lineagestore_full_load", |b| {
        b.iter_batched(
            || tempdir().unwrap(),
            |dir| {
                let ls = LineageStore::open(
                    dir.path().join("ls.db"),
                    LineageStoreConfig {
                        cache_pages: 2048,
                        chain_threshold: Some(4),
                        ..Default::default()
                    },
                )
                .unwrap();
                for (t, ops) in &batches {
                    ls.apply_commit(*t, ops).unwrap();
                }
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("dyngraph_full_load", |b| {
        b.iter(|| {
            let mut dg = dyngraph::DynGraph::new();
            for u in &w.updates {
                dg.apply(&u.op).unwrap();
            }
            std::hint::black_box(dg.rel_count())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
