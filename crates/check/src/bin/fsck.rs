//! `aion-fsck` — offline consistency checker for an Aion data directory.
//!
//! ```text
//! aion-fsck check <dir> [--level quick|deep|full] [--metrics]
//! aion-fsck gen <dir> [--scale F] [--seed N] [--metrics]
//! ```
//!
//! `--metrics` prints the process-wide metrics registry in Prometheus
//! text exposition format after the run — CI smoke tests parse it to
//! assert the storage layers actually recorded work.
//!
//! `<dir>` is an Aion data directory: `<dir>/timestore/` (change log,
//! index, snapshots) and `<dir>/lineage.db` (the four history indexes).
//! Exit status: 0 = clean, 1 = violations found, 2 = usage or IO error.
//!
//! The `gen` subcommand drives the two stores directly (not through the
//! `aion` facade — the checker must not depend on the system under test)
//! with a scaled Table 3 workload plus property churn and deletions, so CI
//! can round-trip "generate, then fsck" on a fresh database.

use check::{check_stores, CheckLevel};
use lineagestore::{LineageStore, LineageStoreConfig};
use lpg::{NodeId, PropertyValue, StrId, Update};
use std::process::ExitCode;
use timestore::{TimeStore, TimeStoreConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("gen") => run_gen(&args[1..]),
        _ => {
            eprintln!(
                "usage: aion-fsck check <dir> [--level quick|deep|full] [--metrics]\n       aion-fsck gen <dir> [--scale F] [--seed N] [--metrics]"
            );
            ExitCode::from(2)
        }
    }
}

/// Parses `--flag value` pairs after the positional directory argument.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Prints the metrics registry as Prometheus text exposition when the
/// `--metrics` flag is present.
fn maybe_print_metrics(args: &[String]) {
    if args.iter().any(|a| a == "--metrics") {
        print!("{}", obs::snapshot().to_prometheus());
    }
}

fn open_stores(dir: &std::path::Path) -> Result<(TimeStore, LineageStore), lpg::GraphError> {
    let ts = TimeStore::open(dir.join("timestore"), TimeStoreConfig::default())?;
    let ls = LineageStore::open(dir.join("lineage.db"), LineageStoreConfig::default())?;
    Ok((ts, ls))
}

fn run_check(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("aion-fsck check: missing <dir>");
        return ExitCode::from(2);
    };
    let level = match flag_value(args, "--level") {
        None => CheckLevel::Full,
        Some(s) => match CheckLevel::parse(s) {
            Some(l) => l,
            None => {
                eprintln!("aion-fsck check: unknown level {s:?} (quick|deep|full)");
                return ExitCode::from(2);
            }
        },
    };
    // Opening a store creates missing files, so a typo'd path would
    // otherwise audit a freshly created empty database as "clean".
    if !std::path::Path::new(dir).is_dir() {
        eprintln!("aion-fsck check: no such database directory: {dir}");
        return ExitCode::from(2);
    }
    let (ts, ls) = match open_stores(std::path::Path::new(dir)) {
        Ok(stores) => stores,
        Err(e) => {
            eprintln!("aion-fsck: cannot open {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    match check_stores(&ts, &ls, level) {
        Ok(report) => {
            print!("{report}");
            maybe_print_metrics(args);
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("aion-fsck: audit aborted: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_gen(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("aion-fsck gen: missing <dir>");
        return ExitCode::from(2);
    };
    let scale: f64 = match flag_value(args, "--scale").unwrap_or("0.001").parse() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("aion-fsck gen: --scale must be a number");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match flag_value(args, "--seed").unwrap_or("42").parse() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("aion-fsck gen: --seed must be an integer");
            return ExitCode::from(2);
        }
    };
    match generate_db(std::path::Path::new(dir), scale, seed) {
        Ok((commits, max_ts)) => {
            println!("generated {commits} commit(s) up to ts {max_ts} in {dir}");
            maybe_print_metrics(args);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aion-fsck gen: {e}");
            ExitCode::from(2)
        }
    }
}

/// Builds a workload database by driving both stores in lock-step: the
/// scaled dataset stream, then property churn (exercising delta chains and
/// materialization) and relationship deletions (exercising tombstones and
/// neighbour-index updates).
fn generate_db(
    dir: &std::path::Path,
    scale: f64,
    seed: u64,
) -> Result<(u64, u64), lpg::GraphError> {
    std::fs::create_dir_all(dir)?;
    let (ts, ls) = open_stores(dir)?;
    let dataset = workload::DATASETS[0].scaled(scale);
    let generated = workload::generate(dataset, seed);
    let mut commits = 0u64;
    // Updates sharing a timestamp form one commit (append_commit requires
    // strictly increasing timestamps).
    let mut i = 0;
    while i < generated.updates.len() {
        let batch_ts = generated.updates[i].ts;
        let mut batch = Vec::new();
        while i < generated.updates.len() && generated.updates[i].ts == batch_ts {
            batch.push(generated.updates[i].op.clone());
            i += 1;
        }
        ts.append_commit(batch_ts, &batch)?;
        ls.apply_commit(batch_ts, &batch)?;
        commits += 1;
    }
    let weight = StrId::new(2);
    let mut t = generated.max_ts;
    // Property churn: long chains on a handful of nodes cross the
    // materialization threshold several times.
    for round in 0..10u64 {
        for node in 0..generated.node_count.min(8) {
            t += 1;
            let op = Update::SetNodeProp {
                id: NodeId::new(node),
                key: weight,
                value: PropertyValue::Int((round * 100 + node) as i64),
            };
            ts.append_commit(t, std::slice::from_ref(&op))?;
            ls.apply_commit(t, std::slice::from_ref(&op))?;
            commits += 1;
        }
    }
    // Deletions: every 7th relationship gets a tombstone.
    for rel in generated.rel_ids.iter().step_by(7) {
        t += 1;
        let op = Update::DeleteRel { id: *rel };
        ts.append_commit(t, std::slice::from_ref(&op))?;
        ls.apply_commit(t, std::slice::from_ref(&op))?;
        commits += 1;
    }
    ts.write_snapshot(t)?;
    // Read back a few historical points: this exercises snapshot replay,
    // the GraphStore cache and lineage expansion, so a `--metrics` run
    // reports the read path of every layer, not just ingest.
    let mid = ts.snapshot_at(t / 2)?;
    let latest = ts.snapshot_at(t)?;
    if latest.node(NodeId::new(0)).is_none() || mid.node(NodeId::new(0)).is_none() {
        return Err(lpg::GraphError::Storage(
            "generated database lost node 0".into(),
        ));
    }
    match ls.expand(NodeId::new(0), lpg::Direction::Both, 2, t) {
        Ok(_) | Err(lpg::GraphError::NodeNotFound(_)) => {}
        Err(e) => return Err(e),
    }
    ts.sync()?;
    ls.sync()?;
    Ok((commits, t))
}
