//! # aion-check — deep consistency audits for Aion's hybrid stores
//!
//! The library behind the `aion-fsck` binary and
//! `Aion::check_consistency`. It composes the per-layer verifiers into one
//! report:
//!
//! * [`btree::BTree::verify`] — page-level structure (key order, sibling
//!   chains, overflow chains, reachability);
//! * [`timestore::TimeStore::audit`] — log ↔ index ↔ snapshot agreement
//!   and snapshot + delta replay of the live graph;
//! * [`lineagestore::LineageStore::audit`] — per-entity interval chains,
//!   delta-chain termination and neighbour-index mirroring;
//! * a cross-store differential: the graph reconstructed from the
//!   TimeStore (snapshot + forward replay) and from the LineageStore
//!   (all-entities floor scan) must agree at every sampled timestamp.

use lineagestore::LineageStore;
use lpg::Result;
use std::fmt;
use timestore::TimeStore;

/// How much work the consistency check performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CheckLevel {
    /// Structural only: B+Tree verification and page accounting.
    Quick,
    /// Structural plus the per-store deep audits (log/index/snapshot
    /// agreement, lineage chain invariants, neighbour mirroring).
    #[default]
    Deep,
    /// Everything in `Deep` plus the cross-store differential at sampled
    /// timestamps.
    Full,
}

impl CheckLevel {
    /// Parses a CLI-style level name.
    pub fn parse(s: &str) -> Option<CheckLevel> {
        match s {
            "quick" => Some(CheckLevel::Quick),
            "deep" => Some(CheckLevel::Deep),
            "full" => Some(CheckLevel::Full),
            _ => None,
        }
    }
}

impl fmt::Display for CheckLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckLevel::Quick => "quick",
            CheckLevel::Deep => "deep",
            CheckLevel::Full => "full",
        })
    }
}

/// The subsystem a finding belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Subsystem {
    /// The snapshot-based TimeStore (log, time/snapshot indexes).
    TimeStore,
    /// The entity-indexed LineageStore (four history indexes).
    LineageStore,
    /// The differential between the two stores.
    CrossStore,
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Subsystem::TimeStore => "timestore",
            Subsystem::LineageStore => "lineagestore",
            Subsystem::CrossStore => "cross-store",
        })
    }
}

/// One consistency violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which subsystem reported it.
    pub subsystem: Subsystem,
    /// Machine-matchable invariant name (e.g. `"chain/interval"`).
    pub check: String,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.subsystem, self.check, self.detail)
    }
}

/// The outcome of [`check_stores`].
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// The level the check ran at.
    pub level: CheckLevel,
    /// Every violation found, in discovery order.
    pub findings: Vec<Finding>,
    /// Timestamps the cross-store differential compared (empty below
    /// [`CheckLevel::Full`]).
    pub sampled_timestamps: Vec<u64>,
}

impl ConsistencyReport {
    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings belonging to `subsystem`.
    pub fn by_subsystem(&self, subsystem: Subsystem) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(move |f| f.subsystem == subsystem)
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "consistency check (level {}): {}",
            self.level,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.findings.len())
            }
        )?;
        if !self.sampled_timestamps.is_empty() {
            writeln!(
                f,
                "cross-store differential at {} timestamp(s)",
                self.sampled_timestamps.len()
            )?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Audits the TimeStore alone at `level`.
pub fn check_timestore(ts: &TimeStore, level: CheckLevel) -> Result<Vec<Finding>> {
    Ok(ts
        .audit(level != CheckLevel::Quick)?
        .into_iter()
        .map(|f| Finding {
            subsystem: Subsystem::TimeStore,
            check: f.check.to_string(),
            detail: f.detail,
        })
        .collect())
}

/// Audits the LineageStore alone at `level`.
pub fn check_lineagestore(ls: &LineageStore, level: CheckLevel) -> Result<Vec<Finding>> {
    Ok(ls
        .audit(level != CheckLevel::Quick)?
        .into_iter()
        .map(|f| Finding {
            subsystem: Subsystem::LineageStore,
            check: f.check.to_string(),
            detail: f.detail,
        })
        .collect())
}

/// Timestamps the cross-store differential samples: up to `max` points
/// spread evenly over `[1, upper]`, always including `upper`.
pub fn sample_timestamps(upper: u64, max: usize) -> Vec<u64> {
    if upper == 0 || max == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(max);
    let n = (max as u64).min(upper);
    for i in 1..=n {
        out.push(upper * i / n);
    }
    out.dedup();
    out
}

/// Reconstructs the graph at each sampled timestamp from both stores and
/// diffs them. Divergence at a timestamp the LineageStore has fully applied
/// means one of the stores is corrupt (the paper's design makes the two
/// stores fully redundant below the lineage watermark).
pub fn cross_store_differential(
    ts: &TimeStore,
    ls: &LineageStore,
    samples: &[u64],
) -> Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for &t in samples {
        let from_time = ts.snapshot_at(t)?;
        let from_lineage = ls.snapshot_at(t)?;
        if !from_time.same_as(&from_lineage) {
            findings.push(Finding {
                subsystem: Subsystem::CrossStore,
                check: "differential".to_string(),
                detail: format!(
                    "stores disagree at ts {t}: TimeStore has {}N/{}R, LineageStore has {}N/{}R",
                    from_time.node_count(),
                    from_time.rel_count(),
                    from_lineage.node_count(),
                    from_lineage.rel_count()
                ),
            });
        }
    }
    Ok(findings)
}

/// Runs the full consistency check over both stores at `level`.
pub fn check_stores(
    ts: &TimeStore,
    ls: &LineageStore,
    level: CheckLevel,
) -> Result<ConsistencyReport> {
    let mut findings = check_timestore(ts, level)?;
    findings.extend(check_lineagestore(ls, level)?);
    let mut sampled = Vec::new();
    if level == CheckLevel::Full {
        // Only compare below the lineage watermark: above it the
        // LineageStore legitimately lags the TimeStore.
        let upper = ts.latest_ts().min(ls.applied_ts());
        sampled = sample_timestamps(upper, 8);
        findings.extend(cross_store_differential(ts, ls, &sampled)?);
    }
    Ok(ConsistencyReport {
        level,
        findings,
        sampled_timestamps: sampled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{NodeId, RelId, StrId, Update};
    use tempfile::tempdir;

    fn seed(ts: &TimeStore, ls: &LineageStore) {
        let mut t = 0u64;
        for i in 0..30u64 {
            t += 1;
            let add = vec![Update::AddNode {
                id: NodeId::new(i),
                labels: vec![StrId::new(0)],
                props: vec![],
            }];
            ts.append_commit(t, &add).unwrap();
            ls.apply_commit(t, &add).unwrap();
            if i > 0 {
                t += 1;
                let rel = vec![Update::AddRel {
                    id: RelId::new(i),
                    src: NodeId::new(i - 1),
                    tgt: NodeId::new(i),
                    label: Some(StrId::new(1)),
                    props: vec![],
                }];
                ts.append_commit(t, &rel).unwrap();
                ls.apply_commit(t, &rel).unwrap();
            }
        }
        ts.sync().unwrap();
        ls.sync().unwrap();
    }

    fn open_stores(dir: &std::path::Path) -> (TimeStore, LineageStore) {
        let ts =
            TimeStore::open(dir.join("timestore"), timestore::TimeStoreConfig::default()).unwrap();
        let ls = LineageStore::open(
            dir.join("lineage.db"),
            lineagestore::LineageStoreConfig::default(),
        )
        .unwrap();
        (ts, ls)
    }

    #[test]
    fn consistent_stores_report_clean_at_full() {
        let dir = tempdir().unwrap();
        let (ts, ls) = open_stores(dir.path());
        seed(&ts, &ls);
        let report = check_stores(&ts, &ls, CheckLevel::Full).unwrap();
        assert!(report.is_clean(), "unexpected findings:\n{report}");
        assert!(!report.sampled_timestamps.is_empty());
    }

    #[test]
    fn lineage_only_update_detected_as_divergence() {
        let dir = tempdir().unwrap();
        let (ts, ls) = open_stores(dir.path());
        seed(&ts, &ls);
        // An update only the LineageStore sees: divergence at the watermark.
        let t = ts.latest_ts();
        ls.apply_update(
            t,
            &Update::AddNode {
                id: NodeId::new(9_999),
                labels: vec![],
                props: vec![],
            },
        )
        .unwrap();
        let report = check_stores(&ts, &ls, CheckLevel::Full).unwrap();
        assert!(report
            .by_subsystem(Subsystem::CrossStore)
            .any(|f| f.check == "differential"));
    }

    #[test]
    fn sampling_is_bounded_and_hits_the_upper_end() {
        assert!(sample_timestamps(0, 8).is_empty());
        assert_eq!(sample_timestamps(3, 8), vec![1, 2, 3]);
        let s = sample_timestamps(1_000_000, 8);
        assert_eq!(s.len(), 8);
        assert_eq!(*s.last().unwrap(), 1_000_000);
    }
}
