//! Per-rule fixture tests: each rule must fire on an injected violation
//! (positive) and stay silent on the compliant variant (negative).
//!
//! Fixtures are written as string literals into a temp workspace and
//! analyzed via `Config { root }` — embedding them as literals keeps the
//! analyzer from flagging its own test file (literals lex to opaque
//! tokens), which itself regression-tests the literal handling.

use std::path::Path;

fn ws(files: &[(&str, &str)]) -> tempfile::TempDir {
    let dir = tempfile::tempdir().unwrap();
    for (rel, body) in files {
        let p = dir.path().join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, body).unwrap();
    }
    dir
}

fn run_rules(root: &Path, rules: &[&str]) -> analyze::Report {
    let cfg = analyze::Config {
        root: root.to_path_buf(),
        only: rules.iter().map(|s| s.to_string()).collect(),
    };
    analyze::run(&cfg).unwrap()
}

// ---------------------------------------------------------------- vfs-bypass

#[test]
fn vfs_bypass_flags_std_fs_in_library_crate() {
    let dir = ws(&[(
        "crates/timestore/src/lib.rs",
        r#"
pub fn load(p: &std::path::Path) -> Vec<u8> {
    std::fs::read(p).unwrap_or_default()
}
"#,
    )]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "vfs-bypass");
    assert_eq!(r.findings[0].line, 3);
    assert!(r.findings[0].key.contains("std::fs::read"));
}

#[test]
fn vfs_bypass_flags_imported_fs_names() {
    let dir = ws(&[(
        "crates/pagestore/src/lib.rs",
        r#"
use std::fs::File;
pub fn touch(p: &std::path::Path) {
    let _ = File::open(p);
}
"#,
    )]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    assert!(
        r.findings.iter().any(|f| f.key.contains("File")),
        "{:?}",
        r.findings
    );
}

#[test]
fn vfs_bypass_exempts_the_vfs_crate_and_seam_users() {
    let dir = ws(&[
        (
            // The seam implementation itself must use std::fs.
            "crates/vfs/src/lib.rs",
            r#"
pub fn read(p: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(p)
}
"#,
        ),
        (
            // A client going through the seam is clean.
            "crates/timestore/src/lib.rs",
            r#"
pub fn load(vfs: &vfs::VfsRef, p: &std::path::Path) -> std::io::Result<Vec<u8>> {
    vfs.read(p)
}
"#,
        ),
    ]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn vfs_bypass_ignores_mentions_inside_strings_and_comments() {
    let dir = ws(&[(
        "crates/timestore/src/lib.rs",
        r##"
/* std::fs::write is /* not */ used here */
pub fn advice() -> &'static str {
    r#"never call std::fs::read directly"#
}
"##,
    )]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// ---------------------------------------------------------------- lock-order

const LOCKS_HEADER: &str = r#"
use std::sync::Mutex;
pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
"#;

#[test]
fn lock_order_catches_ab_ba_inversion_with_witness() {
    let body = format!(
        "{LOCKS_HEADER}
impl S {{
    pub fn ab(&self) -> u32 {{
        let ga = self.a.lock().ok();
        let gb = self.b.lock().ok();
        ga.is_some() as u32 + gb.is_some() as u32
    }}
    pub fn ba(&self) -> u32 {{
        let gb = self.b.lock().ok();
        let ga = self.a.lock().ok();
        ga.is_some() as u32 + gb.is_some() as u32
    }}
}}
"
    );
    let dir = ws(&[("crates/core/src/lib.rs", &body)]);
    let r = run_rules(dir.path(), &["lock-order"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.rule, "lock-order");
    assert!(f.message.contains("lock-order cycle"), "{}", f.message);
    // The witness names both edges with their acquisition sites.
    assert!(f.message.contains("core::a -> core::b"), "{}", f.message);
    assert!(f.message.contains("core::b -> core::a"), "{}", f.message);
    assert!(
        f.message.contains("crates/core/src/lib.rs"),
        "{}",
        f.message
    );
}

#[test]
fn lock_order_consistent_nesting_is_clean() {
    let body = format!(
        "{LOCKS_HEADER}
impl S {{
    pub fn ab(&self) -> u32 {{
        let ga = self.a.lock().ok();
        let gb = self.b.lock().ok();
        ga.is_some() as u32 + gb.is_some() as u32
    }}
    pub fn ab2(&self) -> u32 {{
        let ga = self.a.lock().ok();
        let gb = self.b.lock().ok();
        gb.is_some() as u32 + ga.is_some() as u32
    }}
}}
"
    );
    let dir = ws(&[("crates/core/src/lib.rs", &body)]);
    let r = run_rules(dir.path(), &["lock-order"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn lock_order_sees_inversion_through_a_call() {
    // ab() holds a and calls helper() which takes b; ba() nests b then a
    // directly. The cycle only exists through the call graph.
    let body = format!(
        "{LOCKS_HEADER}
impl S {{
    pub fn ab(&self) -> u32 {{
        let ga = self.a.lock().ok();
        let n = self.helper();
        ga.is_some() as u32 + n
    }}
    fn helper(&self) -> u32 {{
        let gb = self.b.lock().ok();
        gb.is_some() as u32
    }}
    pub fn ba(&self) -> u32 {{
        let gb = self.b.lock().ok();
        let ga = self.a.lock().ok();
        ga.is_some() as u32 + gb.is_some() as u32
    }}
}}
"
    );
    let dir = ws(&[("crates/core/src/lib.rs", &body)]);
    let r = run_rules(dir.path(), &["lock-order"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert!(
        r.findings[0].message.contains("via call"),
        "{}",
        r.findings[0].message
    );
}

#[test]
fn lock_order_dropped_guard_breaks_the_edge() {
    // The double-checked pattern: the first guard is a scrutinee
    // temporary that dies before the second acquisition.
    let body = format!(
        "{LOCKS_HEADER}
impl S {{
    pub fn ab(&self) -> u32 {{
        let ga = self.a.lock().ok();
        let gb = self.b.lock().ok();
        ga.is_some() as u32 + gb.is_some() as u32
    }}
    pub fn double_checked(&self) -> u32 {{
        if let Ok(g) = self.b.lock() {{
            if *g > 0 {{
                return *g;
            }}
        }}
        let ga = self.a.lock().ok();
        ga.is_some() as u32
    }}
}}
"
    );
    let dir = ws(&[("crates/core/src/lib.rs", &body)]);
    let r = run_rules(dir.path(), &["lock-order"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// -------------------------------------------------------------- budget-loops

#[test]
fn budget_loops_flags_unchecked_loop_on_exec_path() {
    let dir = ws(&[(
        "crates/query/src/exec.rs",
        r#"
pub fn drain(items: &[u32]) -> u32 {
    let mut total = 0;
    for _ in 0..1 {}
    while total < 100 {
        total += items.len() as u32;
    }
    total
}
"#,
    )]);
    let r = run_rules(dir.path(), &["budget-loops"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "budget-loops");
    assert_eq!(r.findings[0].line, 5);
    assert!(r.findings[0].message.contains("ExecBudget"));
}

#[test]
fn budget_loops_accepts_direct_and_transitive_checks() {
    let dir = ws(&[(
        "crates/query/src/exec.rs",
        r#"
fn check_budget() -> bool { true }
fn step() -> bool { check_budget() }
pub fn drain_direct(n: u32) -> u32 {
    let mut total = 0;
    while total < n {
        if !check_budget() { break; }
        total += 1;
    }
    total
}
pub fn drain_via_helper(n: u32) -> u32 {
    let mut total = 0;
    loop {
        if !step() { break; }
        total += 1;
        if total >= n { break; }
    }
    total
}
"#,
    )]);
    let r = run_rules(dir.path(), &["budget-loops"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn budget_loops_ignores_files_off_the_exec_path() {
    let dir = ws(&[(
        "crates/query/src/parse.rs",
        r#"
pub fn count(n: u32) -> u32 {
    let mut total = 0;
    while total < n { total += 1; }
    total
}
"#,
    )]);
    let r = run_rules(dir.path(), &["budget-loops"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// ------------------------------------------------------------ panic-freedom

#[test]
fn panic_freedom_flags_unwrap_expect_and_macros() {
    let dir = ws(&[(
        "crates/btree/src/lib.rs",
        r#"
pub fn bad(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("always");
    if a + b > 100 { panic!("overflow"); }
    a + b
}
"#,
    )]);
    let r = run_rules(dir.path(), &["panic-freedom"]);
    let keys: Vec<&str> = r.findings.iter().map(|f| f.key.as_str()).collect();
    assert_eq!(
        keys,
        vec![".unwrap()", ".expect(..)", "panic!(..)"],
        "{:?}",
        r.findings
    );
}

#[test]
fn panic_freedom_exempts_test_modules_and_other_crates() {
    let dir = ws(&[
        (
            "crates/btree/src/lib.rs",
            r#"
pub fn ok(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn uses_unwrap_freely() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
"#,
        ),
        (
            // `workload` is not a panic-free crate.
            "crates/workload/src/lib.rs",
            "pub fn gen(v: Option<u32>) -> u32 { v.unwrap() }\n",
        ),
    ]);
    let r = run_rules(dir.path(), &["panic-freedom"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn panic_freedom_ignores_raw_strings_and_nested_comments() {
    // The old line-oriented scanner's two blind spots (its strip_noise
    // mishandled r#"…"# and nested /* /* */ */): literal and comment
    // mentions must not fire, while real calls after them still do.
    let dir = ws(&[(
        "crates/encoding/src/lib.rs",
        r##"
/* outer /* .unwrap() in a nested comment */ still a comment */
pub fn describe() -> &'static str {
    r#"calling .unwrap() is forbidden"#
}
pub fn really_bad(v: Option<u32>) -> u32 {
    v.unwrap()
}
"##,
    )]);
    let r = run_rules(dir.path(), &["panic-freedom"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].line, 7);
}

// --------------------------------------------------------- unsafe-inventory

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let dir = ws(&[(
        "crates/encoding/src/lib.rs",
        r#"
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
"#,
    )]);
    let r = run_rules(dir.path(), &["unsafe-inventory"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].rule, "unsafe-inventory");
}

#[test]
fn unsafe_with_safety_comment_passes() {
    let dir = ws(&[(
        "crates/encoding/src/lib.rs",
        r#"
pub fn peek(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: bounds asserted on the line above.
    unsafe { *v.get_unchecked(0) }
}
"#,
    )]);
    let r = run_rules(dir.path(), &["unsafe-inventory"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// ------------------------------------------------------------ manifest-lints

#[test]
fn manifest_without_workspace_lints_is_flagged() {
    let dir = ws(&[
        (
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n\n[lints]\nworkspace = true\n",
        ),
        (
            "crates/good/Cargo.toml",
            "[package]\nname = \"good\"\n\n[lints]\nworkspace = true\n",
        ),
        ("crates/bad/Cargo.toml", "[package]\nname = \"bad\"\n"),
    ]);
    let r = run_rules(dir.path(), &["manifest-lints"]);
    assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
    assert_eq!(r.findings[0].path, "crates/bad/Cargo.toml");
}

// ------------------------------------------------------------- suppressions

#[test]
fn allow_file_suppresses_and_reports_stale_entries() {
    let dir = ws(&[
        (
            "crates/timestore/src/lib.rs",
            "pub fn load(p: &std::path::Path) -> Vec<u8> { std::fs::read(p).unwrap_or_default() }\n",
        ),
        (
            "analyze.allow.toml",
            r#"
[[allow]]
rule = "vfs-bypass"
path = "crates/timestore/"
reason = "fixture: exercised by the suppression test"

[[allow]]
rule = "vfs-bypass"
path = "crates/nonexistent/"
reason = "fixture: matches nothing, must be reported stale"
"#,
        ),
    ]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed.len(), 1);
    assert!(r.suppressed[0].reason.contains("fixture"));
    assert_eq!(r.stale_allows.len(), 1);
    assert_eq!(r.stale_allows[0].path, "crates/nonexistent/");
}

#[test]
fn allow_entry_without_reason_is_an_error() {
    let dir = ws(&[
        ("crates/x/src/lib.rs", "pub fn f() {}\n"),
        ("analyze.allow.toml", "[[allow]]\nrule = \"vfs-bypass\"\n"),
    ]);
    let cfg = analyze::Config {
        root: dir.path().to_path_buf(),
        only: vec!["vfs-bypass".to_string()],
    };
    let err = analyze::run(&cfg).expect_err("missing reason must fail");
    assert!(err.to_string().contains("reason"), "{err}");
}

// --------------------------------------------------------------- self-check

#[test]
fn workspace_self_check_is_clean() {
    // The real workspace (two levels up from this crate) must analyze
    // clean: every remaining finding is either fixed or suppressed with
    // a reason, and no allow entry is stale.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let r = analyze::run(&analyze::Config::new(root)).unwrap();
    assert!(
        r.findings.is_empty(),
        "workspace has unsuppressed findings:\n{}",
        r.render_human()
    );
    assert!(
        r.stale_allows.is_empty(),
        "stale allow entries:\n{}",
        r.render_human()
    );
    assert!(r.files_scanned > 100, "suspiciously few files scanned");
}

#[test]
fn json_output_is_well_formed_enough() {
    let dir = ws(&[(
        "crates/timestore/src/lib.rs",
        "pub fn load(p: &std::path::Path) -> Vec<u8> { std::fs::read(p).unwrap_or_default() }\n",
    )]);
    let r = run_rules(dir.path(), &["vfs-bypass"]);
    let js = r.render_json();
    assert!(js.contains("\"rule\": \"vfs-bypass\""), "{js}");
    assert!(js.contains("\"clean\": false"), "{js}");
}
