//! A minimal Rust lexer: source text → significant tokens + comment
//! trivia, with line numbers.
//!
//! This is the layer that makes the analyzer's rules sound where the old
//! line-oriented `strip_noise` scanner was not: string contents (including
//! raw strings like `r#"…"#` with arbitrary hash counts), char literals,
//! and block comments (including *nested* `/* /* */ */`) never produce
//! code tokens, so prose mentioning `panic!(` or `.unwrap()` cannot trip
//! a rule. Comments are kept as separate trivia because the
//! unsafe-inventory rule needs to see `// SAFETY:` text.
//!
//! The lexer is deliberately lenient: it never fails. Malformed input
//! (e.g. an unterminated string) lexes to *something* reasonable; the
//! compiler is the authority on validity, the analyzer only needs token
//! boundaries that match rustc's on code rustc accepts.

/// A significant (non-trivia) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `Mutex`, …).
    Ident(String),
    /// A lifetime such as `'a` (the text is not needed by any rule).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, number.
    /// Contents are opaque to every rule by design.
    Lit,
    /// A single punctuation character; multi-char operators appear as
    /// adjacent tokens (`::` is `Punct(':') Punct(':')`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(t) if t == s)
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// One comment (line or block), with the line range it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Raw comment text including delimiters.
    pub text: String,
}

/// Lexer output: the significant token stream plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> u8 {
        self.peek_at(0)
    }

    fn peek_at(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn slice(&self, start: usize) -> &'a str {
        let end = self.pos.min(self.bytes.len());
        let start = start.min(end);
        std::str::from_utf8(&self.bytes[start..end]).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while !cur.done() {
        let b = cur.peek();
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == b'/' => {
                let start = cur.pos;
                while !cur.done() && cur.peek() != b'\n' {
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text: cur.slice(start).to_string(),
                });
            }
            b'/' if cur.peek_at(1) == b'*' => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                // Block comments nest in Rust.
                let mut depth = 1usize;
                while !cur.done() && depth > 0 {
                    if cur.peek() == b'/' && cur.peek_at(1) == b'*' {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    } else if cur.peek() == b'*' && cur.peek_at(1) == b'/' {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    } else {
                        cur.bump();
                    }
                }
                out.comments.push(Comment {
                    line,
                    end_line: cur.line,
                    text: cur.slice(start).to_string(),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            b'\'' => lex_char_or_lifetime(&mut cur, &mut out, line),
            b'0'..=b'9' => {
                lex_number(&mut cur);
                out.tokens.push(Token {
                    tok: Tok::Lit,
                    line,
                });
            }
            b if is_ident_start(b) => {
                let start = cur.pos;
                while is_ident_continue(cur.peek()) {
                    cur.bump();
                }
                let text = cur.slice(start);
                // String-literal prefixes: r"", r#""#, b"", br"", c"", cr"".
                if matches!(text, "r" | "b" | "br" | "c" | "cr") {
                    let raw = matches!(text, "r" | "br" | "cr");
                    if try_lex_prefixed_string(&mut cur, raw) {
                        out.tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        continue;
                    }
                    // `b'x'` byte char literal.
                    if text == "b" && cur.peek() == b'\'' {
                        cur.bump();
                        lex_char_body(&mut cur);
                        out.tokens.push(Token {
                            tok: Tok::Lit,
                            line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier.
                    if text == "r" && cur.peek() == b'#' && is_ident_start(cur.peek_at(1)) {
                        cur.bump();
                        let istart = cur.pos;
                        while is_ident_continue(cur.peek()) {
                            cur.bump();
                        }
                        out.tokens.push(Token {
                            tok: Tok::Ident(cur.slice(istart).to_string()),
                            line,
                        });
                        continue;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(text.to_string()),
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

/// Consumes a normal `"…"` string body starting at the opening quote.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while !cur.done() {
        match cur.bump() {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// After a string prefix ident (`r`, `br`, …), tries to consume the rest
/// of the literal. Returns false (consuming nothing) if what follows is
/// not a string.
fn try_lex_prefixed_string(cur: &mut Cursor<'_>, allow_raw: bool) -> bool {
    if cur.peek() == b'"' {
        if allow_raw {
            lex_raw_string(cur, 0);
        } else {
            lex_string(cur);
        }
        return true;
    }
    if allow_raw && cur.peek() == b'#' {
        // Count hashes; raw string only if a quote follows them.
        let mut hashes = 0usize;
        while cur.peek_at(hashes) == b'#' {
            hashes += 1;
        }
        if cur.peek_at(hashes) == b'"' {
            for _ in 0..hashes {
                cur.bump();
            }
            lex_raw_string(cur, hashes);
            return true;
        }
    }
    false
}

/// Consumes `"…"###` (the opening quote onward) for a raw string with
/// `hashes` hashes. Raw strings have no escapes.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // opening quote
    while !cur.done() {
        if cur.bump() == b'"' {
            let mut n = 0usize;
            while n < hashes && cur.peek_at(n) == b'#' {
                n += 1;
            }
            if n == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    }
}

/// Consumes the body of a char literal after its opening `'`.
fn lex_char_body(cur: &mut Cursor<'_>) {
    while !cur.done() {
        match cur.bump() {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) from `'\n'`.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    cur.bump(); // the quote
    if cur.peek() == b'\\' {
        lex_char_body(cur);
        out.tokens.push(Token {
            tok: Tok::Lit,
            line,
        });
        return;
    }
    if is_ident_start(cur.peek()) {
        // Could be `'a'` (char) or `'abc` (lifetime): consume the ident,
        // then check for a closing quote.
        while is_ident_continue(cur.peek()) {
            cur.bump();
        }
        if cur.peek() == b'\'' {
            cur.bump();
            out.tokens.push(Token {
                tok: Tok::Lit,
                line,
            });
        } else {
            out.tokens.push(Token {
                tok: Tok::Lifetime,
                line,
            });
        }
        return;
    }
    // `'('`, `' '`, etc: a single-char literal.
    lex_char_body(cur);
    out.tokens.push(Token {
        tok: Tok::Lit,
        line,
    });
}

/// Consumes a numeric literal (integer or float, any base/suffix).
fn lex_number(cur: &mut Cursor<'_>) {
    while is_ident_continue(cur.peek()) {
        cur.bump();
    }
    // Fractional part: `.` followed by a digit (so `0..n` stays a range).
    if cur.peek() == b'.' && cur.peek_at(1).is_ascii_digit() {
        cur.bump();
        while is_ident_continue(cur.peek()) {
            cur.bump();
        }
    }
    // Signed exponent (`1e-5`); unsigned exponents were consumed above.
    if (cur.peek() == b'-' || cur.peek() == b'+')
        && matches!(cur.bytes.get(cur.pos.wrapping_sub(1)), Some(b'e' | b'E'))
        && cur.peek_at(1).is_ascii_digit()
    {
        cur.bump();
        while is_ident_continue(cur.peek()) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn raw_strings_are_opaque() {
        // The old strip_noise mishandled `r#"…"#`: it entered string mode
        // at the first quote and exited at the *embedded* quote, leaking
        // the tail as code.
        let src = r##"fn f() { let s = r#"call .unwrap() or panic!( "quoted" here"#; }"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(ids.contains(&"f".to_string()));
    }

    #[test]
    fn raw_strings_with_many_hashes_terminate_correctly() {
        let src = r####"let a = r##"inner "# quote"##; let tail = 1;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "tail"]);
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        // The old scanner ended the comment at the first `*/`, leaking
        // `x.unwrap()` into code.
        let src = "/* outer /* inner */ x.unwrap() */ fn ok() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        let ids: Vec<_> = lexed.tokens.iter().filter_map(Token::ident).collect();
        assert_eq!(ids, vec!["fn", "ok"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = lex("fn g<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let lits = lexed.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let src = r###"let a = b"bytes"; let b = br#"raw .expect( bytes"#; let c = b'x';"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, vec!["let", "type"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn multiline_strings_advance_lines() {
        let lexed = lex("let s = \"one\ntwo\";\nnext");
        let next = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("next"))
            .map(|t| t.line);
        assert_eq!(next, Some(3));
    }

    #[test]
    fn doc_comments_are_trivia() {
        let lexed = lex("/// calls .unwrap() when\n//! panic!( docs\nfn f() {}");
        assert_eq!(lexed.comments.len(), 2);
        let ids: Vec<_> = lexed.tokens.iter().filter_map(Token::ident).collect();
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn floats_and_ranges() {
        let lexed = lex("1.5 0..10 1e-5");
        let lits = lexed.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        // 1.5, 0, 10, 1e-5 — the `..` stays punctuation.
        assert_eq!(lits, 4);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
