//! Loads the workspace's Rust sources into lexed + parsed form.
//!
//! Scope: every crate under `crates/`, the `xtask` helper, the root
//! package (`src/`, `tests/`). Vendored dependency shims (`shims/`) and
//! `target/` are never scanned; `examples/` are demo code outside the
//! invariant surface.

use crate::lexer::{self, Lexed};
use crate::syntax::{self, Syntax};
use std::path::{Path, PathBuf};

/// What kind of compilation unit a file belongs to — rules scope
/// themselves by kind (e.g. panic-freedom covers library sources only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` of a library crate.
    Lib,
    /// `src/bin/**` or the source of a binary-only crate.
    Bin,
    /// `tests/**` integration tests.
    Test,
}

/// One loaded source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Owning crate's short name (`timestore`, `xtask`, `aion-suite`).
    pub crate_name: String,
    pub kind: FileKind,
    pub lexed: Lexed,
    pub syntax: Syntax,
}

/// The loaded workspace.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Files belonging to `crate_name`.
    pub fn crate_files<'a>(&'a self, crate_name: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| f.crate_name == crate_name)
    }
}

/// Reads and parses every in-scope `.rs` file under `root`.
pub fn load(root: &Path) -> std::io::Result<Workspace> {
    let mut files = Vec::new();

    // Crates under crates/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            load_crate(root, &dir, &name, &mut files)?;
        }
    }

    // xtask (a binary-only crate).
    let xtask = root.join("xtask");
    if xtask.is_dir() {
        collect_rs(&xtask.join("src"), &mut |p, body| {
            push_file(root, p, "xtask", FileKind::Bin, body, &mut files);
        })?;
    }

    // Root package: src/ + tests/.
    load_crate(root, root, "aion-suite", &mut files)?;

    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
    })
}

fn load_crate(
    root: &Path,
    dir: &Path,
    name: &str,
    files: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let src = dir.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut |p, body| {
            let kind = if p.to_string_lossy().contains("/src/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            push_file(root, p, name, kind, body, files);
        })?;
    }
    let tests = dir.join("tests");
    if tests.is_dir() {
        collect_rs(&tests, &mut |p, body| {
            push_file(root, p, name, FileKind::Test, body, files);
        })?;
    }
    Ok(())
}

fn push_file(
    root: &Path,
    path: &Path,
    crate_name: &str,
    kind: FileKind,
    body: &str,
    files: &mut Vec<SourceFile>,
) {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let lexed = lexer::lex(body);
    let syntax = syntax::parse(&lexed);
    files.push(SourceFile {
        rel_path: rel,
        crate_name: crate_name.to_string(),
        kind,
        lexed,
        syntax,
    });
}

/// Walks `dir` recursively, invoking `f` for every `.rs` file.
fn collect_rs(dir: &Path, f: &mut impl FnMut(&Path, &str)) -> std::io::Result<()> {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&d)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let body = std::fs::read_to_string(&path)?;
                f(&path, &body);
            }
        }
    }
    Ok(())
}
