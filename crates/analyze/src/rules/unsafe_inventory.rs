//! **unsafe-inventory** — every `unsafe` keyword in production code must
//! be justified by a `// SAFETY:` comment on the same line or within the
//! three preceding lines. The workspace currently denies `unsafe_code`
//! wholesale via lints; this rule keeps the invariant enforceable the
//! day an accelerated kernel or FFI shim needs a carve-out.

use super::{Finding, Rule};
use crate::workspace::Workspace;

/// How many lines above the `unsafe` token a SAFETY comment may sit.
const SAFETY_WINDOW: u32 = 3;

pub struct UnsafeInventory;

impl Rule for UnsafeInventory {
    fn id(&self) -> &'static str {
        "unsafe-inventory"
    }

    fn describe(&self) -> &'static str {
        "every `unsafe` needs a `// SAFETY:` comment within 3 lines above"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            for (i, t) in file.lexed.tokens.iter().enumerate() {
                if !t.is_ident("unsafe") || file.syntax.in_test(i) {
                    continue;
                }
                let line = t.line;
                let justified = file.lexed.comments.iter().any(|c| {
                    c.text.contains("SAFETY:")
                        && c.end_line <= line
                        && c.end_line + SAFETY_WINDOW >= line
                });
                if !justified {
                    out.push(Finding {
                        rule: "unsafe-inventory",
                        path: file.rel_path.clone(),
                        line,
                        message: "`unsafe` without a `// SAFETY:` comment within 3 lines above"
                            .to_string(),
                        key: "unsafe".to_string(),
                    });
                }
            }
        }
    }
}
