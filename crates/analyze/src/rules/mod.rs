//! The rule registry. Each rule inspects the loaded [`Workspace`] and
//! emits [`Finding`]s carrying a stable `key` that suppression entries
//! and tests can match on.

use crate::workspace::Workspace;

pub mod budget_loops;
pub mod lock_order;
pub mod panic_freedom;
pub mod unsafe_inventory;
pub mod vfs_bypass;

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`vfs-bypass`, `lock-order`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Stable machine-matchable key (token, lock edge, …) used by
    /// suppression entries.
    pub key: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// A workspace invariant checker.
pub trait Rule {
    /// Stable rule id used in output and suppression entries.
    fn id(&self) -> &'static str;
    /// One-line description for `--list`.
    fn describe(&self) -> &'static str;
    /// Runs the rule, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(vfs_bypass::VfsBypass),
        Box::new(lock_order::LockOrder),
        Box::new(budget_loops::BudgetLoops),
        Box::new(panic_freedom::PanicFreedom),
        Box::new(unsafe_inventory::UnsafeInventory),
    ]
}
