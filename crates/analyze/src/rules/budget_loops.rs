//! **budget-loops** — `loop` / `while` bodies on the query execution
//! path must reach an `ExecBudget` check, so a drain or per-request
//! deadline can cancel any long-running request at a loop boundary
//! (DESIGN.md §11). A loop passes if its body (at any nesting depth)
//! calls `check_budget` directly, mentions `ExecBudget`, or calls
//! another execution-path function that transitively does.

use super::{Finding, Rule};
use crate::lexer::Token;
use crate::workspace::{FileKind, Workspace};
use std::collections::HashSet;

/// Execution-path files: every interpreter/executor loop lives here.
/// Parser/lexer loops are bounded by input length and run before a
/// request is admitted to execution, so they are out of scope.
const EXEC_FILES: &[(&str, &str)] = &[("query", "src/exec.rs")];

pub struct BudgetLoops;

impl Rule for BudgetLoops {
    fn id(&self) -> &'static str {
        "budget-loops"
    }

    fn describe(&self) -> &'static str {
        "query execution loops must reach an ExecBudget check"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let in_scope = file.kind == FileKind::Lib
                && EXEC_FILES
                    .iter()
                    .any(|(c, f)| file.crate_name == *c && file.rel_path.ends_with(f));
            if !in_scope {
                continue;
            }
            check_file(file, out);
        }
    }
}

fn check_file(file: &crate::workspace::SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;

    // Functions in this file that check the budget somewhere in their
    // body — a loop that calls one of these is budgeted. Computed as a
    // fixpoint so helpers that merely call `check_budget` through
    // another helper still count.
    let mut budgeted: HashSet<String> = HashSet::new();
    loop {
        let mut changed = false;
        for f in &file.syntax.fns {
            if budgeted.contains(&f.name) {
                continue;
            }
            if body_checks_budget(&toks[f.body.0..f.body.1], &budgeted) {
                budgeted.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for f in &file.syntax.fns {
        if f.is_test {
            continue;
        }
        let (b0, b1) = f.body;
        let mut i = b0;
        while i < b1 {
            let t = &toks[i];
            if t.is_ident("loop") || t.is_ident("while") {
                if let Some(open) = loop_body_open(toks, i, b1) {
                    let close = crate::syntax::matching_brace(toks, open);
                    if !body_checks_budget(&toks[open + 1..close.min(b1)], &budgeted) {
                        out.push(Finding {
                            rule: "budget-loops",
                            path: file.rel_path.clone(),
                            line: t.line,
                            message: format!(
                                "`{}` body in `{}` never reaches an ExecBudget check (call check_budget() at the loop boundary)",
                                t.ident().unwrap_or("loop"),
                                f.name
                            ),
                            key: format!("{}:{}", f.name, t.line),
                        });
                    }
                    // Nested loops are scanned on their own as `i`
                    // advances; an inner unbudgeted loop inside a
                    // budgeted outer one must still be flagged only if
                    // the *inner body* lacks a check — which the
                    // per-loop scan above already decides.
                }
            }
            i += 1;
        }
    }
}

/// Whether a body slice reaches a budget check: a `check_budget` call, an
/// `ExecBudget` mention, or a call to a known-budgeted local function.
fn body_checks_budget(body: &[Token], budgeted: &HashSet<String>) -> bool {
    for (i, t) in body.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        if id == "check_budget" || id == "ExecBudget" {
            return true;
        }
        // `name(` or `.name(` call to a budgeted sibling.
        if budgeted.contains(id) && body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            return true;
        }
    }
    false
}

/// Index of the `{` opening the body of the loop whose keyword is at
/// `kw`, or None. Tracks paren/bracket depth through the condition;
/// turbofish `::<…>` angles are skipped explicitly (bare `<` in a
/// condition is a comparison, not a generic).
fn loop_body_open(toks: &[Token], kw: usize, end: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = kw + 1;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(':')
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('<'))
        {
            // turbofish: skip to the matching `>`.
            let mut angle = 0i64;
            i += 2;
            while i < end {
                if toks[i].is_punct('<') {
                    angle += 1;
                } else if toks[i].is_punct('>') {
                    angle -= 1;
                    if angle == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if depth == 0 && t.is_punct('{') {
            return Some(i);
        }
        i += 1;
    }
    None
}
