//! **panic-freedom** — non-test code in the storage and request-serving
//! crates must not abort: corruption surfaces as typed errors that
//! `aion-fsck` can report, never as a process abort.
//!
//! This is the AST port of the original line-oriented `xtask lint`
//! scanner. Operating on lexed tokens kills that scanner's false-positive
//! and false-negative classes: string/raw-string literals and (nested)
//! block comments produce no tokens, and `#[cfg(test)]` regions are
//! tracked structurally rather than by brace counting.

use super::{Finding, Rule};
use crate::workspace::{FileKind, Workspace};

/// Crates whose non-test library code must be panic-free. The analyzer
/// itself is included: tooling that gates merges must not abort either.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "vfs",
    "pagestore",
    "btree",
    "encoding",
    "timestore",
    "lineagestore",
    "core",
    "obs",
    "query",
    "server",
    "repl",
    "analyze",
];

/// Method calls that must take the form `.name()` exactly (no args).
const FORBIDDEN_NULLARY: &[&str] = &["unwrap", "unwrap_err"];
/// Method calls forbidden regardless of arguments.
const FORBIDDEN_ANY: &[&str] = &["expect", "expect_err"];
/// Macros that abort.
const FORBIDDEN_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn describe(&self) -> &'static str {
        "storage/service crates must surface errors, not unwrap/expect/panic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            // Integration tests under tests/ are exempt (as are bins'
            // fixtures); the gate protects code linked into services.
            if file.kind != FileKind::Lib {
                continue;
            }
            let toks = &file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if file.syntax.in_test(i) {
                    continue;
                }
                let Some(id) = t.ident() else { continue };
                // `.unwrap()` / `.unwrap_err()`
                if FORBIDDEN_NULLARY.contains(&id)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
                {
                    push(file, t.line, format!(".{id}()"), out);
                }
                // `.expect(…)` / `.expect_err(…)`
                if FORBIDDEN_ANY.contains(&id)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                {
                    push(file, t.line, format!(".{id}(..)"), out);
                }
                // `panic!(…)` etc.
                if FORBIDDEN_MACROS.contains(&id)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                {
                    push(file, t.line, format!("{id}!(..)"), out);
                }
            }
        }
    }
}

fn push(file: &crate::workspace::SourceFile, line: u32, token: String, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule: "panic-freedom",
        path: file.rel_path.clone(),
        line,
        message: format!("forbidden `{token}` in non-test code (return a typed error instead)"),
        key: token,
    });
}
