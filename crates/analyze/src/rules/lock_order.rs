//! **lock-order** — the workspace-global lock acquisition graph must be
//! acyclic, or two threads can deadlock by acquiring the same pair of
//! locks in opposite orders.
//!
//! How it works, per non-test function in library sources:
//!
//! 1. **Acquisition sites.** `recv.lock()`, `recv.read()`, `recv.write()`
//!    with an *empty* argument list, where the final field of `recv` is
//!    declared as a `Mutex`/`RwLock` somewhere in the same crate. The
//!    lock's identity is `crate::field` — `self.state.lock()` in
//!    `timestore` and `log.end.lock()` both normalize to stable names.
//! 2. **Guard liveness.** A `let g = ….lock();` guard lives to the end of
//!    its enclosing block (or an explicit `drop(g)`); a temporary like
//!    `self.stats.lock().updates += 1` dies at its statement's `;`.
//! 3. **Held-scope edges.** While guard A is live, acquiring B adds edge
//!    A→B. Calls made while A is live add A→B for every lock B the
//!    callee may (transitively) acquire; calls resolve conservatively —
//!    `self.helper()` to same-type methods, otherwise only when the name
//!    is workspace-unique and not a common std name. Guard-returning
//!    helpers (e.g. `WorkerSet::lock`, which wraps poisoning recovery)
//!    count as acquisitions at the call site.
//! 4. **Cycles fail** with the witness path: every edge in the cycle with
//!    the function and line that creates it.
//!
//! Suppression: an `analyze.allow.toml` entry with `rule = "lock-order"`
//! and `key = "A->B"` removes that edge before cycle detection.

use super::{Finding, Rule};
use crate::lexer::Token;
use crate::syntax::matching_brace;
use crate::workspace::{FileKind, Workspace};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Method names never resolved across crates: too generic, and the lock
/// primitives themselves.
const RESOLVE_STOPLIST: &[&str] = &[
    "lock",
    "read",
    "write",
    "new",
    "default",
    "clone",
    "drop",
    "get",
    "set",
    "len",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "next",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "join",
    "send",
    "recv",
    "load",
    "store",
    "open",
    "sync",
    "flush",
    "min",
    "max",
    "map",
    "clamp",
    "unwrap_or",
    "contains",
    "snapshot",
    "is_empty",
    "take",
    "start",
    "stop",
    "count",
    "add",
    "inc",
    "record",
    "begin",
    "end",
    "find",
    "apply",
    "with_capacity",
    "to_string",
    "as_ref",
];

pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "the global Mutex/RwLock acquisition graph must be acyclic"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let analysis = analyze(ws);
        report_cycles(&analysis, out);
    }
}

/// One lock-order edge A→B with its witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// `file:line` of the acquisition/call creating the edge.
    pub site: String,
    /// Function containing the site.
    pub in_fn: String,
    /// Present when the edge goes through a call rather than a direct
    /// acquisition.
    pub via_call: Option<String>,
}

/// The extracted global graph (exposed for tests and `--json`).
#[derive(Debug, Default)]
pub struct LockGraph {
    pub edges: Vec<Edge>,
}

#[derive(Debug, Clone)]
enum Event {
    /// Acquisition of a lock id; `live_until` is the token index at
    /// which its guard dies.
    Acquire {
        lock: String,
        at: usize,
        line: u32,
        live_until: usize,
    },
    /// A call site that may acquire locks transitively.
    Call {
        name: String,
        recv_is_self: bool,
        qualifier: Option<String>,
        at: usize,
        line: u32,
    },
}

struct FnSummary {
    file: String,
    fn_name: String,
    impl_type: Option<String>,
    events: Vec<Event>,
    /// Locks this function's body acquires directly.
    direct: BTreeSet<String>,
    /// Lock returned as a live guard to the caller, if this fn is a
    /// guard-returning helper.
    returns_guard_of: Option<String>,
}

/// Extracts the global lock graph from the workspace.
pub fn analyze(ws: &Workspace) -> LockGraph {
    // Lock field names declared per crate.
    let mut crate_locks: HashMap<String, HashSet<String>> = HashMap::new();
    for f in &ws.files {
        if f.kind == FileKind::Lib {
            crate_locks
                .entry(f.crate_name.clone())
                .or_default()
                .extend(f.syntax.lock_fields.iter().cloned());
        }
    }

    // Per-function event extraction.
    let mut fns: Vec<FnSummary> = Vec::new();
    for file in &ws.files {
        if file.kind != FileKind::Lib {
            continue;
        }
        let empty = HashSet::new();
        let locks = crate_locks.get(&file.crate_name).unwrap_or(&empty);
        for fi in &file.syntax.fns {
            if fi.is_test || fi.body.0 == fi.body.1 {
                continue;
            }
            let events = extract_events(&file.lexed.tokens, fi.body, locks, &file.crate_name);
            let direct: BTreeSet<String> = events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { lock, .. } => Some(lock.clone()),
                    Event::Call { .. } => None,
                })
                .collect();
            let returns_guard_of = guard_return(&file.lexed.tokens, fi, &direct);
            fns.push(FnSummary {
                file: file.rel_path.clone(),
                fn_name: fi.name.clone(),
                impl_type: fi.impl_type.clone(),
                events,
                direct,
                returns_guard_of,
            });
        }
    }

    let resolver = Resolver::new(&fns);

    // Transitive may-acquire sets, to a fixpoint.
    let mut acq: Vec<BTreeSet<String>> = fns.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for ev in &f.events {
                if let Event::Call {
                    name,
                    recv_is_self,
                    qualifier,
                    ..
                } = ev
                {
                    let caller_ty = fns[i].impl_type.as_deref();
                    for j in resolver.resolve(caller_ty, name, *recv_is_self, qualifier.as_deref())
                    {
                        add.extend(acq[j].iter().cloned());
                        if let Some(l) = &fns[j].returns_guard_of {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            let before = acq[i].len();
            acq[i].extend(add);
            if acq[i].len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge construction: direct nesting + calls under live guards.
    let mut graph = LockGraph::default();
    let mut seen: HashSet<(String, String, String)> = HashSet::new();
    for f in &fns {
        // Live guards: (lock, live_until).
        let mut live: Vec<(String, usize)> = Vec::new();
        for ev in &f.events {
            let (at, line) = match ev {
                Event::Acquire { at, line, .. } | Event::Call { at, line, .. } => (*at, *line),
            };
            live.retain(|(_, until)| *until > at);
            match ev {
                Event::Acquire {
                    lock, live_until, ..
                } => {
                    for (held, _) in &live {
                        push_edge(&mut graph, &mut seen, f, held, lock, line, None);
                    }
                    live.push((lock.clone(), *live_until));
                }
                Event::Call {
                    name,
                    recv_is_self,
                    qualifier,
                    ..
                } => {
                    if live.is_empty() {
                        continue;
                    }
                    let mut callee_locks: BTreeSet<String> = BTreeSet::new();
                    let caller_ty = f.impl_type.as_deref();
                    for j in resolver.resolve(caller_ty, name, *recv_is_self, qualifier.as_deref())
                    {
                        callee_locks.extend(acq[j].iter().cloned());
                        if let Some(l) = &fns[j].returns_guard_of {
                            callee_locks.insert(l.clone());
                        }
                    }
                    for to in &callee_locks {
                        for (held, _) in &live {
                            push_edge(&mut graph, &mut seen, f, held, to, line, Some(name));
                        }
                    }
                }
            }
        }
    }
    graph
}

#[allow(clippy::too_many_arguments)]
fn push_edge(
    graph: &mut LockGraph,
    seen: &mut HashSet<(String, String, String)>,
    f: &FnSummary,
    from: &str,
    to: &str,
    line: u32,
    via: Option<&str>,
) {
    // `from == to` (reacquiring a held non-reentrant Mutex) is kept: it
    // shows up as a 1-cycle, which is exactly what it is.
    let site = format!("{}:{line}", f.file);
    if seen.insert((from.to_string(), to.to_string(), site.clone())) {
        graph.edges.push(Edge {
            from: from.to_string(),
            to: to.to_string(),
            site,
            in_fn: match &f.impl_type {
                Some(t) => format!("{t}::{}", f.fn_name),
                None => f.fn_name.clone(),
            },
            via_call: via.map(str::to_string),
        });
    }
}

/// Detects guard-returning helpers: the fn's return type mentions
/// `Guard` and its body acquires exactly one lock.
fn guard_return(
    toks: &[Token],
    fi: &crate::syntax::FnInfo,
    direct: &BTreeSet<String>,
) -> Option<String> {
    if direct.len() != 1 {
        return None;
    }
    // Signature = tokens from this fn's `fn` keyword to its body `{`.
    let open = fi.body.0.checked_sub(1)?;
    let mut fn_idx = open;
    while fn_idx > 0 {
        fn_idx -= 1;
        if toks[fn_idx].is_ident("fn") && toks.get(fn_idx + 1).is_some_and(|t| t.is_ident(&fi.name))
        {
            break;
        }
    }
    let sig = &toks[fn_idx..open];
    // `-> …Guard…` anywhere in the return type.
    let arrow = sig
        .windows(2)
        .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))?;
    let returns_guard = sig[arrow + 2..]
        .iter()
        .any(|t| t.ident().is_some_and(|id| id.contains("Guard")));
    if returns_guard {
        direct.iter().next().cloned()
    } else {
        None
    }
}

/// Conservative call resolution over the extracted function list.
struct Resolver {
    /// name → indices of fns with that bare name.
    by_name: HashMap<String, Vec<usize>>,
    /// (impl_type, name) → indices.
    by_type_name: HashMap<(String, String), Vec<usize>>,
}

impl Resolver {
    fn new(fns: &[FnSummary]) -> Resolver {
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_type_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.fn_name.clone()).or_default().push(i);
            if let Some(t) = &f.impl_type {
                by_type_name
                    .entry((t.clone(), f.fn_name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        Resolver {
            by_name,
            by_type_name,
        }
    }

    fn resolve(
        &self,
        caller_type: Option<&str>,
        name: &str,
        recv_is_self: bool,
        qualifier: Option<&str>,
    ) -> Vec<usize> {
        // `Type::name(…)` — resolve within the named type.
        if let Some(q) = qualifier {
            if let Some(v) = self.by_type_name.get(&(q.to_string(), name.to_string())) {
                return v.clone();
            }
            return Vec::new();
        }
        // `self.name(…)` — same-type resolution is precise, so even
        // stoplisted names (e.g. a `lock()` poisoning-recovery helper)
        // resolve here.
        if recv_is_self {
            if let Some(t) = caller_type {
                if let Some(v) = self.by_type_name.get(&(t.to_string(), name.to_string())) {
                    return v.clone();
                }
            }
            return Vec::new();
        }
        // Bare/unknown receiver: resolve only a workspace-unique,
        // non-generic name.
        if RESOLVE_STOPLIST.contains(&name) {
            return Vec::new();
        }
        match self.by_name.get(name) {
            Some(v) if v.len() == 1 => v.clone(),
            _ => Vec::new(),
        }
    }
}

/// Extracts ordered acquire/call events from a function body.
fn extract_events(
    toks: &[Token],
    body: (usize, usize),
    locks: &HashSet<String>,
    crate_name: &str,
) -> Vec<Event> {
    let (b0, b1) = body;
    let mut events = Vec::new();
    let mut i = b0;
    while i < b1 {
        let t = &toks[i];
        let Some(id) = t.ident() else {
            i += 1;
            continue;
        };
        let is_acquire_name = matches!(id, "lock" | "read" | "write");
        let nullary = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
        let preceded_by_dot = i > b0 && toks[i - 1].is_punct('.');

        // `recv.lock()` / `recv.read()` / `recv.write()` on a declared
        // lock field.
        if is_acquire_name && nullary && preceded_by_dot {
            if let Some(field) = receiver_field(toks, b0, i - 1) {
                if locks.contains(&field) {
                    let lock = format!("{crate_name}::{field}");
                    let live_until = guard_liveness(toks, b0, b1, i);
                    events.push(Event::Acquire {
                        lock,
                        at: i,
                        line: t.line,
                        live_until,
                    });
                    i += 3;
                    continue;
                }
            }
        }

        // Call sites: `name(…)`, `recv.name(…)`, `Type::name(…)`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) && !is_keyword(id) {
            let recv_is_self = preceded_by_dot
                && i >= b0 + 2
                && toks[i - 2].is_ident("self")
                && (i < b0 + 3 || !toks[i - 3].is_punct('.'));
            // `Type::name(` qualifier.
            let qualifier = if i >= b0 + 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':')
            {
                toks[i - 3]
                    .ident()
                    .filter(|q| q.chars().next().is_some_and(char::is_uppercase))
                    .map(str::to_string)
            } else {
                None
            };
            events.push(Event::Call {
                name: id.to_string(),
                recv_is_self,
                qualifier,
                at: i,
                line: t.line,
            });
        }
        i += 1;
    }
    events
}

fn is_keyword(id: &str) -> bool {
    matches!(
        id,
        "if" | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "else"
            | "break"
            | "continue"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "String"
            | "drop"
    )
}

/// The final field name of the receiver chain ending just before token
/// `dot` (which is the `.` before the acquire method): for
/// `self.state.lock()` → `state`; for `log.end.lock()` → `end`. Returns
/// None when the receiver is a call result (`helper().lock()`).
fn receiver_field(toks: &[Token], lo: usize, dot: usize) -> Option<String> {
    if dot <= lo {
        return None;
    }
    toks[dot - 1].ident().map(str::to_string)
}

/// End of an `if let` / `while let` expression whose scrutinee contains
/// the acquire at `i`: the close of the body block, extended through any
/// `else` / `else if` continuation (edition 2021 drop order).
fn scrutinee_end(toks: &[Token], b1: usize, i: usize) -> usize {
    let mut depth = 0i64;
    let mut k = i;
    while k < b1 {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            let mut close = matching_brace(toks, k);
            while toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                // `else {` or `else if … {` — skip to that block's open.
                let mut m = close + 2;
                let mut d = 0i64;
                while m < b1 {
                    let t = &toks[m];
                    if t.is_punct('(') || t.is_punct('[') {
                        d += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        d -= 1;
                    } else if d == 0 && t.is_punct('{') {
                        break;
                    }
                    m += 1;
                }
                if m >= b1 {
                    return b1;
                }
                close = matching_brace(toks, m);
            }
            return close.min(b1);
        }
        k += 1;
    }
    b1
}

/// Computes how long the guard produced at acquire-site `i` lives:
/// * bound by `let` → to the `}` closing the enclosing block (or an
///   explicit `drop(name)`),
/// * `if let` / `while let` scrutinee → to the end of the if/else chain,
/// * match scrutinee (`match x.lock() {`) → to the end of the match,
/// * otherwise a temporary → to the end of the statement.
fn guard_liveness(toks: &[Token], b0: usize, b1: usize, i: usize) -> usize {
    // Scan back to the start of the statement to find `let name =`.
    let mut j = i;
    let mut let_name: Option<String> = None;
    while j > b0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            // `if let` / `while let`: the guard is a scrutinee
            // temporary — in edition 2021 it lives through the whole
            // if/else chain (resp. the loop body), then drops.
            if j > b0 && (toks[j - 1].is_ident("if") || toks[j - 1].is_ident("while")) {
                return scrutinee_end(toks, b1, i);
            }
            // `let [mut] name` follows.
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let_name = toks.get(k).and_then(Token::ident).map(str::to_string);
            break;
        }
        if t.is_ident("match") {
            // Guard is consumed by the match — conservatively live to
            // the end of the match block.
            let mut k = i;
            while k < b1 && !toks[k].is_punct('{') {
                k += 1;
            }
            return matching_brace(toks, k).min(b1);
        }
    }

    if let Some(name) = let_name {
        // Live until the enclosing block closes or `drop(name)`.
        let mut depth = 0i64;
        let mut k = i;
        while k < b1 {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            } else if t.is_ident("drop")
                && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(k + 2).is_some_and(|t| t.is_ident(&name))
            {
                return k;
            }
            k += 1;
        }
        b1
    } else {
        // Temporary: dies at the statement's `;` at depth 0.
        let mut depth = 0i64;
        let mut k = i;
        while k < b1 {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            } else if t.is_punct(';') && depth == 0 {
                return k;
            }
            k += 1;
        }
        b1
    }
}

/// Finds a cycle in the edge set and reports it with its witness path.
fn report_cycles(graph: &LockGraph, out: &mut Vec<Finding>) {
    // Adjacency with one witness edge per (from, to).
    let mut adj: BTreeMap<&str, BTreeMap<&str, &Edge>> = BTreeMap::new();
    for e in &graph.edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }

    // Iterative DFS with colors; report each cycle found once.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&str, Color> = nodes.iter().map(|n| (*n, Color::White)).collect();
    let mut reported: HashSet<String> = HashSet::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a Edge>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
        out: &mut Vec<Finding>,
        reported: &mut HashSet<String>,
    ) {
        color.insert(node, Color::Grey);
        stack.push(node);
        if let Some(nexts) = adj.get(node) {
            for &next in nexts.keys() {
                match color.get(next).copied().unwrap_or(Color::White) {
                    Color::Grey => {
                        // Found a cycle: stack from `next` to `node`.
                        let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                        let cycle: Vec<&str> = stack[pos..].to_vec();
                        let mut names: Vec<&str> = cycle.clone();
                        names.push(next);
                        let key = names.join("->");
                        // Canonical form so A->B->A and B->A->B dedupe.
                        let canon = canonical_cycle(&cycle);
                        if reported.insert(canon) {
                            let mut msg = format!(
                                "lock-order cycle (deadlock potential): {}\n  witness:",
                                names.join(" -> ")
                            );
                            for w in 0..cycle.len() {
                                let a = cycle[w];
                                let b = if w + 1 < cycle.len() {
                                    cycle[w + 1]
                                } else {
                                    next
                                };
                                if let Some(e) = adj.get(a).and_then(|m| m.get(b)) {
                                    use std::fmt::Write as _;
                                    let _ = write!(
                                        msg,
                                        "\n    {a} -> {b} in {} at {}{}",
                                        e.in_fn,
                                        e.site,
                                        e.via_call
                                            .as_deref()
                                            .map(|c| format!(" (via call to `{c}`)"))
                                            .unwrap_or_default()
                                    );
                                }
                            }
                            let (path, line) = adj
                                .get(cycle[0])
                                .and_then(|m| m.values().next())
                                .map(|e| site_to_loc(&e.site))
                                .unwrap_or_default();
                            out.push(Finding {
                                rule: "lock-order",
                                path,
                                line,
                                message: msg,
                                key,
                            });
                        }
                    }
                    Color::White => dfs(next, adj, color, stack, out, reported),
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
    }

    for n in nodes {
        if color.get(n).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            dfs(n, &adj, &mut color, &mut stack, out, &mut reported);
        }
    }
}

/// Rotates a cycle's node list so the lexicographically smallest node
/// leads — a stable dedup key independent of DFS entry point.
fn canonical_cycle(cycle: &[&str]) -> String {
    if cycle.is_empty() {
        return String::new();
    }
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut rotated: Vec<&str> = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        rotated.push(cycle[(min_pos + k) % cycle.len()]);
    }
    rotated.join("->")
}

fn site_to_loc(site: &str) -> (String, u32) {
    match site.rsplit_once(':') {
        Some((p, l)) => (p.to_string(), l.parse().unwrap_or(0)),
        None => (site.to_string(), 0),
    }
}
