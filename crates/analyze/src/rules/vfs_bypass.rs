//! **vfs-bypass** — every byte of storage I/O must flow through the
//! `crates/vfs` seam so the crash-consistency simulator (`SimVfs`) can
//! exercise it. Direct `std::fs` use anywhere else (library code, bins,
//! tests) is flagged; legitimate exceptions (CLI scaffolding, the seam
//! itself) live in `analyze.allow.toml` with reasons.

use super::{Finding, Rule};
use crate::lexer::Token;
use crate::workspace::Workspace;

/// Crates exempt by construction: the seam itself.
const SEAM_CRATES: &[&str] = &["vfs"];

pub struct VfsBypass;

impl Rule for VfsBypass {
    fn id(&self) -> &'static str {
        "vfs-bypass"
    }

    fn describe(&self) -> &'static str {
        "storage I/O must go through the crates/vfs seam, not std::fs"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if SEAM_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            check_file(file, out);
        }
    }
}

fn check_file(file: &crate::workspace::SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;

    // Names imported from std::fs (e.g. `use std::fs::OpenOptions;`),
    // and whether `std::fs` itself is imported as `fs`.
    let mut tainted: Vec<String> = Vec::new();
    let mut fs_imported = false;
    collect_fs_imports(toks, &mut tainted, &mut fs_imported);

    let mut i = 0usize;
    while i < toks.len() {
        // `std :: fs` path — flag the whole path expression once.
        if toks[i].is_ident("std")
            && is_path_sep(toks, i + 1)
            && toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("fs") || t.is_ident("os"))
        {
            // `std::os::unix::fs::FileExt` also bypasses the seam.
            let path = path_text(toks, i);
            if path.contains("::fs") {
                // Import lines are flagged too: a `use std::os::unix::fs::
                // FileExt` makes later *method* calls invisible to a
                // token scan, so the import itself is the witness.
                report(file, toks[i].line, &path, out);
                i = skip_path(toks, i);
                continue;
            }
        }
        // Usage of an ident imported from std::fs.
        if let Some(id) = toks[i].ident() {
            if tainted.iter().any(|t| t == id) && !in_use_statement(toks, i) {
                report(file, toks[i].line, id, out);
                i += 1;
                continue;
            }
            // `fs::read(..)` where `use std::fs;` is in scope.
            if id == "fs" && fs_imported && is_path_sep(toks, i + 1) && !in_use_statement(toks, i) {
                let path = path_text(toks, i);
                report(file, toks[i].line, &path, out);
                i = skip_path(toks, i);
                continue;
            }
        }
        i += 1;
    }
}

fn report(file: &crate::workspace::SourceFile, line: u32, what: &str, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule: "vfs-bypass",
        path: file.rel_path.clone(),
        line,
        message: format!("direct `{what}` bypasses the Vfs seam (route it through vfs::Vfs / VfsRef so SimVfs crash testing covers it)"),
        key: what.to_string(),
    });
}

/// Whether tokens at `i`, `i+1` form `::`.
fn is_path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':')) && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Renders the path starting at ident `i` (`std::fs::read`) as text.
fn path_text(toks: &[Token], mut i: usize) -> String {
    let mut s = String::new();
    while let Some(id) = toks.get(i).and_then(Token::ident) {
        if !s.is_empty() {
            s.push_str("::");
        }
        s.push_str(id);
        if is_path_sep(toks, i + 1) {
            i += 3;
        } else {
            break;
        }
    }
    s
}

/// Token index just past the path starting at `i`.
fn skip_path(toks: &[Token], mut i: usize) -> usize {
    while toks.get(i).and_then(Token::ident).is_some() {
        if is_path_sep(toks, i + 1) {
            i += 3;
        } else {
            return i + 1;
        }
    }
    i + 1
}

/// Whether token `i` is inside a `use …;` item (scan back to the nearest
/// `;`/`{`/`}` boundary and check for `use`).
fn in_use_statement(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('}') {
            return false;
        }
        // `use std::fs::{self, File};` puts idents inside braces — treat
        // an opening brace preceded by `::` as part of the use tree.
        if t.is_punct('{') {
            if j >= 2 && is_path_sep(toks, j - 2) {
                continue;
            }
            return false;
        }
        if t.is_ident("use") {
            return true;
        }
    }
    false
}

/// Collects simple-name imports out of `use std::fs…` trees: the final
/// segment(s) a later bare ident could refer to.
fn collect_fs_imports(toks: &[Token], tainted: &mut Vec<String>, fs_imported: &mut bool) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Collect this use statement's tokens up to `;`.
        let start = i + 1;
        let mut end = start;
        while end < toks.len() && !toks[end].is_punct(';') {
            end += 1;
        }
        let stmt = &toks[start..end];
        // Only std::fs trees are interesting.
        let text = stmt_text(stmt);
        if text.starts_with("std::fs") || text.starts_with("std::os::unix::fs") {
            if text == "std::fs" {
                *fs_imported = true;
            } else {
                // Leaf names: idents not followed by `::` and not `self`.
                for (k, t) in stmt.iter().enumerate() {
                    if let Some(id) = t.ident() {
                        let followed_by_sep = stmt.get(k + 1).is_some_and(|n| n.is_punct(':'))
                            && stmt.get(k + 2).is_some_and(|n| n.is_punct(':'));
                        if !followed_by_sep && !matches!(id, "std" | "fs" | "os" | "unix" | "as") {
                            if id == "self" {
                                *fs_imported = true;
                            } else {
                                tainted.push(id.to_string());
                            }
                        }
                    }
                }
            }
        }
        i = end + 1;
    }
    tainted.sort();
    tainted.dedup();
}

fn stmt_text(stmt: &[Token]) -> String {
    let mut s = String::new();
    for t in stmt {
        match &t.tok {
            crate::lexer::Tok::Ident(id) => s.push_str(id),
            crate::lexer::Tok::Punct(c) => s.push(*c),
            _ => {}
        }
    }
    s
}
