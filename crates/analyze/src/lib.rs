//! # aion-analyze — syntax-tree invariant analyzer for the workspace
//!
//! Replaces the original line-oriented `xtask lint` text scanner with a
//! rule registry over lexed + structurally parsed sources (DESIGN.md
//! §12). Driven by `cargo xtask analyze`.
//!
//! Rules:
//!
//! * **vfs-bypass** — storage I/O must flow through `crates/vfs`.
//! * **lock-order** — the global Mutex/RwLock graph must be acyclic;
//!   cycles fail with a witness path.
//! * **budget-loops** — query-execution loops must reach an `ExecBudget`
//!   check.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!` in service-path
//!   crates (AST port of the old scanner).
//! * **unsafe-inventory** — every `unsafe` carries a `// SAFETY:`
//!   comment.
//!
//! Plus a non-AST **manifest-lints** audit: every crate manifest must opt
//! into `[lints] workspace = true`.
//!
//! Findings honor the checked-in suppression file `analyze.allow.toml`;
//! every entry needs a reason, and entries that no longer match anything
//! are reported as stale.

use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod syntax;
pub mod workspace;

pub use rules::{Finding, Rule};
pub use suppress::AllowEntry;
pub use workspace::Workspace;

/// What to analyze.
pub struct Config {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Run only these rule ids (empty = all).
    pub only: Vec<String>,
}

impl Config {
    /// All rules over `root`.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            only: Vec::new(),
        }
    }
}

/// A finding that was matched by an allow entry.
#[derive(Debug)]
pub struct Suppressed {
    pub finding: Finding,
    pub reason: String,
}

/// Analysis output.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — any entry here means the gate fails.
    pub findings: Vec<Finding>,
    /// Findings matched by allow entries.
    pub suppressed: Vec<Suppressed>,
    /// Allow entries that matched nothing (file rot).
    pub stale_allows: Vec<AllowEntry>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for e in &self.stale_allows {
            out.push_str(&format!(
                "note: stale allow entry (analyze.allow.toml:{}) matches nothing: rule={} path={}\n",
                e.line, e.rule, e.path
            ));
        }
        out.push_str(&format!(
            "analyze: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// JSON rendering (hand-rolled — the workspace vendors no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"key\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.key),
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"suppressed\": {},\n  \"stale_allows\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.suppressed.len(),
            self.stale_allows.len(),
            self.files_scanned,
            self.is_clean()
        ));
        out
    }
}

/// Analyzer failure (I/O, bad suppression file) — distinct from findings.
#[derive(Debug)]
pub enum Error {
    Io(std::io::Error),
    Allow(suppress::ParseError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Allow(e) => write!(f, "{e}"),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

/// Runs the configured rules over the workspace and applies the
/// suppression file.
pub fn run(cfg: &Config) -> Result<Report, Error> {
    let ws = workspace::load(&cfg.root)?;
    let allows = load_allows(&cfg.root)?;

    let mut raw: Vec<Finding> = Vec::new();
    for rule in rules::all() {
        if !cfg.only.is_empty() && !cfg.only.iter().any(|r| r == rule.id()) {
            continue;
        }
        rule.check(&ws, &mut raw);
    }
    if cfg.only.is_empty() || cfg.only.iter().any(|r| r == "manifest-lints") {
        manifest_lints(&cfg.root, &mut raw)?;
    }

    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    let mut used: Vec<bool> = vec![false; allows.len()];
    for f in raw {
        let hit = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.matches(f.rule, &f.path, &f.key));
        match hit {
            Some((idx, a)) => {
                used[idx] = true;
                report.suppressed.push(Suppressed {
                    finding: f,
                    reason: a.reason.clone(),
                });
            }
            None => report.findings.push(f),
        }
    }
    for (idx, a) in allows.iter().enumerate() {
        if !used[idx] {
            report.stale_allows.push(a.clone());
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    Ok(report)
}

fn load_allows(root: &Path) -> Result<Vec<AllowEntry>, Error> {
    let path = root.join("analyze.allow.toml");
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let body = std::fs::read_to_string(&path)?;
    suppress::parse(&body).map_err(Error::Allow)
}

/// Ported manifest audit: every crate manifest opts into the shared
/// `[workspace.lints]` table so `warnings = "deny"` and the curated
/// clippy set apply uniformly. Shims are vendored stand-ins and exempt.
fn manifest_lints(root: &Path, out: &mut Vec<Finding>) -> Result<(), Error> {
    let mut manifests: Vec<PathBuf> = [root.join("Cargo.toml"), root.join("xtask/Cargo.toml")]
        .into_iter()
        .filter(|p| p.is_file())
        .collect();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let manifest = entry?.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    manifests.sort();
    for m in manifests {
        let body = std::fs::read_to_string(&m)?;
        if !manifest_opts_into_workspace_lints(&body) {
            let rel = m
                .strip_prefix(root)
                .unwrap_or(&m)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(Finding {
                rule: "manifest-lints",
                path: rel,
                line: 1,
                message:
                    "missing `[lints] workspace = true` (required for the workspace lint gate)"
                        .to_string(),
                key: "lints".to_string(),
            });
        }
    }
    Ok(())
}

fn manifest_opts_into_workspace_lints(body: &str) -> bool {
    let mut in_lints = false;
    for line in body.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
        } else if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

/// Rule catalogue: `(id, description)` for every registered rule.
pub fn catalogue() -> Vec<(&'static str, &'static str)> {
    let mut v: Vec<(&'static str, &'static str)> = rules::all()
        .iter()
        .map(|r| (r.id(), r.describe()))
        .collect();
    v.push((
        "manifest-lints",
        "every crate manifest opts into [workspace.lints]",
    ));
    v
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
