//! Item-level structure over the token stream: functions (with their
//! enclosing impl type and module path), `#[cfg(test)]` regions, and
//! declared lock fields.
//!
//! This is not a full AST — rules only need to know *which function* a
//! token range belongs to, whether that function is test-gated, and how
//! braces nest. Expression grammar stays opaque; rules pattern-match the
//! token stream inside function bodies themselves.

use crate::lexer::{Lexed, Token};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self-type name, if any.
    pub impl_type: Option<String>,
    /// Whether the fn is test code: `#[test]`, `#[cfg(test)]`, or inside
    /// a test-gated module/impl.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, *inside* the braces (empty for
    /// bodyless trait-method declarations).
    pub body: (usize, usize),
}

/// Parsed item structure for one file.
#[derive(Debug, Default)]
pub struct Syntax {
    pub fns: Vec<FnInfo>,
    /// Token-index ranges (half-open) covered by test-gated items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Field/static names declared as `Mutex<…>` or `RwLock<…>`.
    pub lock_fields: Vec<String>,
}

impl Syntax {
    /// Whether token index `i` falls inside any test-gated item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i < b)
    }
}

/// Finds the matching `}` for the `{` at `open` (returns the index of the
/// closing brace, or `toks.len()` if unbalanced).
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Whether an attribute's tokens gate the item to test builds:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not
/// `#[cfg(not(test))]`.
fn attr_is_test(attr: &[Token]) -> bool {
    let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
    (has("test") && !has("not")) || (has("cfg") && has("test") && !has("not"))
}

/// Extracts the self-type name from the tokens of an `impl` header
/// (between `impl` and the body `{`): the last path segment of the type
/// after `for` if present, else of the first type after any generics.
fn impl_self_type(header: &[Token]) -> Option<String> {
    // Cut generics `<…>` that directly follow `impl`.
    let mut i = 0usize;
    if header.first().is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i64;
        while i < header.len() {
            if header[i].is_punct('<') {
                depth += 1;
            } else if header[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // If a `for` appears at angle-depth 0, the self type follows it.
    let mut start = i;
    let mut depth = 0i64;
    let mut j = i;
    while j < header.len() {
        if header[j].is_punct('<') {
            depth += 1;
        } else if header[j].is_punct('>') {
            depth -= 1;
        } else if depth == 0 && header[j].is_ident("for") {
            start = j + 1;
        } else if depth == 0 && header[j].is_ident("where") {
            break;
        }
        j += 1;
    }
    // First identifier of the type path, following it through `::`.
    let mut last: Option<String> = None;
    let mut k = start;
    while k < header.len() {
        if let Some(id) = header[k].ident() {
            if id == "where" {
                break;
            }
            if !matches!(id, "dyn" | "mut" | "const") {
                last = Some(id.to_string());
                // Follow `A::B` to the final segment.
                while k + 2 < header.len()
                    && header[k + 1].is_punct(':')
                    && header[k + 2].is_punct(':')
                {
                    k += 3;
                    if let Some(seg) = header.get(k).and_then(Token::ident) {
                        last = Some(seg.to_string());
                    }
                }
                break;
            }
        } else if header[k].is_punct('<') {
            break;
        }
        k += 1;
    }
    last
}

/// Scans forward from `i` (just past `fn name`) to the body `{` or the
/// `;` of a bodyless declaration, tracking parens/brackets/angles so
/// `fn f(x: HashMap<K, V>) -> Result<(), E> where …` parses. Returns
/// the index of the `{` or `;`.
fn find_fn_body(toks: &[Token], mut i: usize) -> usize {
    let mut paren = 0i64;
    let mut angle = 0i64;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('<') {
            // `->` already consumed as '-','>': only count bare '<'.
            angle += 1;
        } else if t.is_punct('>') {
            // Ignore the '>' of `->`.
            if i == 0 || !toks[i - 1].is_punct('-') {
                angle = (angle - 1).max(0);
            }
        } else if paren == 0 && angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
            return i;
        }
        i += 1;
    }
    toks.len()
}

/// Collects `name: Mutex<…>` / `name: RwLock<…>` declarations (struct
/// fields and statics), looking through `Arc<…>` and path qualifiers.
fn collect_lock_fields(toks: &[Token], out: &mut Vec<String>) {
    for (i, t) in toks.iter().enumerate() {
        let is_lock = t.is_ident("Mutex") || t.is_ident("RwLock");
        if !is_lock || !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            continue;
        }
        // Walk backwards over wrapper tokens to the `name :` declaration.
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 12 {
            j -= 1;
            steps += 1;
            let w = &toks[j];
            let is_wrapper = w.is_punct('<')
                || w.is_punct(':')
                || w.ident().is_some_and(|id| {
                    matches!(id, "Arc" | "Box" | "std" | "sync" | "parking_lot" | "loom")
                });
            if !is_wrapper {
                break;
            }
            // Found `name :` (single colon, not `::`).
            if w.is_punct(':')
                && j > 0
                && !toks[j - 1].is_punct(':')
                && !toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(name) = toks[j - 1].ident() {
                    if !matches!(name, "Ok" | "Err" | "Some" | "None") {
                        out.push(name.to_string());
                    }
                }
                break;
            }
        }
    }
    out.sort();
    out.dedup();
}

/// Parses the item structure of a lexed file.
pub fn parse(lexed: &Lexed) -> Syntax {
    let mut syn = Syntax::default();
    collect_lock_fields(&lexed.tokens, &mut syn.lock_fields);
    scan_items(&lexed.tokens, 0, lexed.tokens.len(), None, false, &mut syn);
    syn
}

/// Recursively scans `toks[start..end]` for items.
fn scan_items(
    toks: &[Token],
    start: usize,
    end: usize,
    impl_type: Option<&str>,
    in_test: bool,
    syn: &mut Syntax,
) {
    let mut i = start;
    let mut pending_test = false;
    while i < end {
        let t = &toks[i];
        // Attribute: `#[…]` (possibly `#![…]`).
        if t.is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                // Find the matching `]`.
                let mut depth = 0i64;
                let mut k = j;
                while k < end {
                    if toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                if attr_is_test(&toks[j..k.min(end)]) {
                    pending_test = true;
                }
                i = k + 1;
                continue;
            }
        }
        // `mod name { … }`
        if t.is_ident("mod")
            && toks.get(i + 1).and_then(Token::ident).is_some()
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            let close = matching_brace(toks, i + 2);
            let gated = in_test || pending_test;
            if pending_test {
                syn.test_ranges.push((i, close + 1));
            }
            scan_items(toks, i + 3, close, None, gated, syn);
            pending_test = false;
            i = close + 1;
            continue;
        }
        // `impl … { … }` / `trait Name … { … }`
        if t.is_ident("impl") || t.is_ident("trait") {
            let body_open = find_fn_body(toks, i + 1);
            if toks.get(body_open).is_some_and(|t| t.is_punct('{')) {
                let close = matching_brace(toks, body_open);
                let gated = in_test || pending_test;
                if pending_test {
                    syn.test_ranges.push((i, close + 1));
                }
                let self_ty = if t.is_ident("impl") {
                    impl_self_type(&toks[i + 1..body_open])
                } else {
                    None
                };
                scan_items(toks, body_open + 1, close, self_ty.as_deref(), gated, syn);
                pending_test = false;
                i = close + 1;
                continue;
            }
        }
        // `fn name … { … }` or `fn name …;`
        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                let body_open = find_fn_body(toks, i + 2);
                let gated = in_test || pending_test;
                let (body, next) = if toks.get(body_open).is_some_and(|t| t.is_punct('{')) {
                    let close = matching_brace(toks, body_open);
                    ((body_open + 1, close), close + 1)
                } else {
                    ((body_open, body_open), body_open + 1)
                };
                if pending_test {
                    syn.test_ranges.push((i, next));
                }
                syn.fns.push(FnInfo {
                    name: name.to_string(),
                    impl_type: impl_type.map(str::to_string),
                    is_test: gated,
                    line: t.line,
                    body,
                });
                pending_test = false;
                i = next;
                continue;
            }
        }
        // Any other balanced brace block at item level (struct/enum
        // bodies, const initializers): skip it whole so its contents are
        // not mistaken for items.
        if t.is_punct('{') {
            i = matching_brace(toks, i) + 1;
            pending_test = false;
            continue;
        }
        // `use`, `static`, `const`, struct defs without braces, etc.
        if t.is_punct(';') {
            pending_test = false;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnInfo> {
        parse(&lex(src)).fns
    }

    #[test]
    fn finds_free_and_method_fns() {
        let src = "fn free() {}\nimpl Widget { fn method(&self) -> u32 { 1 } }";
        let fs = fns(src);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name, "free");
        assert_eq!(fs[0].impl_type, None);
        assert_eq!(fs[1].name, "method");
        assert_eq!(fs[1].impl_type.as_deref(), Some("Widget"));
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let fs = fns("impl<T: Clone> fmt::Debug for Wrapper<T> { fn fmt(&self) {} }");
        assert_eq!(fs[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn cfg_test_modules_are_gated() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }";
        let fs = fns(src);
        assert_eq!(fs.len(), 3);
        assert!(!fs[0].is_test);
        assert!(fs[1].is_test);
        assert!(fs[2].is_test);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let fs = fns("#[cfg(not(test))] fn prod() {}");
        assert!(!fs[0].is_test);
    }

    #[test]
    fn generic_signatures_find_their_body() {
        let src = "fn f<K: Ord, V>(m: HashMap<K, V>) -> Result<Vec<u8>, io::Error> where K: Clone { body() }";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert_ne!(fs[0].body.0, fs[0].body.1);
    }

    #[test]
    fn trait_decls_without_bodies() {
        let fs = fns("trait T { fn decl(&self) -> u32; fn with_default(&self) { f() } }");
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].body.0, fs[0].body.1);
        assert_ne!(fs[1].body.0, fs[1].body.1);
    }

    #[test]
    fn lock_fields_collected() {
        let src = "struct S { inner: Mutex<State>, data: Arc<RwLock<Vec<u8>>>, plain: u32 }\nstatic GLOBAL: Mutex<i32> = Mutex::new(0);";
        let syn = parse(&lex(src));
        assert_eq!(syn.lock_fields, vec!["GLOBAL", "data", "inner"]);
    }

    #[test]
    fn struct_bodies_are_not_items() {
        let src = "struct S { f: u32 }\nfn after() {}";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "after");
    }
}
