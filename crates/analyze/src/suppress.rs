//! The checked-in suppression file `analyze.allow.toml`.
//!
//! Format — a sequence of `[[allow]]` tables, each requiring a
//! non-empty `reason`:
//!
//! ```toml
//! [[allow]]
//! rule = "vfs-bypass"                      # required: rule id or "*"
//! path = "crates/check/src/bin/fsck.rs"    # optional: path prefix
//! key = "std::fs"                          # optional: finding-key substring
//! reason = "CLI sets up user directories"  # required: why this is fine
//! ```
//!
//! A finding is suppressed when an entry's rule matches (exactly or
//! `"*"`), its `path` is a prefix of the finding's path, and its `key`
//! (if present) is a substring of the finding's key. Entries that match
//! nothing are reported as stale so the file cannot rot.

use std::fmt;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub key: Option<String>,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for stale reporting.
    pub line: usize,
}

/// A malformed suppression file.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.allow.toml:{}: {}", self.line, self.message)
    }
}

impl AllowEntry {
    /// Whether this entry suppresses a finding with the given
    /// coordinates.
    pub fn matches(&self, rule: &str, path: &str, key: &str) -> bool {
        (self.rule == "*" || self.rule == rule)
            && path.starts_with(&self.path)
            && self.key.as_ref().is_none_or(|k| key.contains(k.as_str()))
    }
}

/// Parses the suppression file body.
pub fn parse(body: &str) -> Result<Vec<AllowEntry>, ParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut open: Option<(usize, String, String, Option<String>, String)> = None;

    let finish = |open: &mut Option<(usize, String, String, Option<String>, String)>,
                  entries: &mut Vec<AllowEntry>|
     -> Result<(), ParseError> {
        if let Some((line, rule, path, key, reason)) = open.take() {
            if rule.is_empty() {
                return Err(ParseError {
                    line,
                    message: "entry is missing `rule`".into(),
                });
            }
            if reason.trim().is_empty() {
                return Err(ParseError {
                    line,
                    message: format!("entry for rule `{rule}` is missing a non-empty `reason`"),
                });
            }
            entries.push(AllowEntry {
                rule,
                path,
                key,
                reason,
                line,
            });
        }
        Ok(())
    };

    for (idx, raw) in body.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut open, &mut entries)?;
            open = Some((lineno, String::new(), String::new(), None, String::new()));
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `key = \"value\"` or `[[allow]]`, got: {line}"),
            });
        };
        let Some(cur) = open.as_mut() else {
            return Err(ParseError {
                line: lineno,
                message: "assignment outside any [[allow]] entry".into(),
            });
        };
        let k = k.trim();
        let v = v.trim();
        let Some(v) = v
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .filter(|s| !s.contains('"'))
        else {
            return Err(ParseError {
                line: lineno,
                message: format!("value for `{k}` must be a simple double-quoted string"),
            });
        };
        match k {
            "rule" => cur.1 = v.to_string(),
            "path" => cur.2 = v.to_string(),
            "key" => cur.3 = Some(v.to_string()),
            "reason" => cur.4 = v.to_string(),
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected rule/path/key/reason)"),
                });
            }
        }
    }
    finish(&mut open, &mut entries)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let body = r#"
# header comment
[[allow]]
rule = "vfs-bypass"
path = "crates/check/src/bin"
reason = "CLI bin"

[[allow]]
rule = "lock-order"
key = "a->b"
reason = "proven ordered by construction"
"#;
        let entries = parse(body).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches("vfs-bypass", "crates/check/src/bin/fsck.rs", "std::fs"));
        assert!(!entries[0].matches("vfs-bypass", "crates/core/src/db.rs", "std::fs"));
        assert!(entries[1].matches("lock-order", "anything", "cycle a->b->a"));
        assert!(!entries[1].matches("lock-order", "anything", "cycle b->c"));
    }

    #[test]
    fn reason_is_required() {
        let err = parse("[[allow]]\nrule = \"x\"\n").unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn rule_is_required() {
        let err = parse("[[allow]]\nreason = \"y\"\n").unwrap_err();
        assert!(err.message.contains("rule"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("not toml at all").is_err());
        assert!(parse("[[allow]]\nrule = unquoted\nreason = \"r\"").is_err());
        assert!(parse("rule = \"orphan\"").is_err());
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let entries = parse("[[allow]]\nrule = \"*\"\npath = \"p\"\nreason = \"r\"\n").unwrap();
        assert!(entries[0].matches("any-rule", "p/x.rs", "k"));
    }
}
