//! The shipper must never outrun the primary's durable prefix
//! (DESIGN.md §13): a replica may only apply — and durably ack — commits
//! that survive a primary crash. The primary here runs on [`vfs::SimVfs`]
//! with `sync_on_commit = false` and the test itself never calls
//! `sync()`, so every shipped frame is durable only because the shipper
//! forced a group sync before shipping it. A simulated crash then drops
//! all unsynced bytes; on recovery the primary must still hold everything
//! the replica acked — otherwise recovery would reuse the lost
//! timestamps for different commits and the replica would silently
//! diverge (the exact failure mode durable-prefix shipping exists to
//! prevent).

use aion::{Aion, AionConfig, CheckLevel};
use lpg::{NodeId, PropertyValue};
use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;
use vfs::{SimVfs, VfsRef};

const PRIMARY_ROOT: &str = "/primary";
const COMMITS: u64 = 25;

fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn primary_config(sim: &SimVfs) -> AionConfig {
    let mut cfg = AionConfig::new(PRIMARY_ROOT);
    cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
    // Synchronous lineage: no background cascade racing the crash point.
    cfg.sync_lineage = true;
    cfg
}

#[test]
fn primary_crash_loses_nothing_a_replica_acked() {
    let sim = SimVfs::new(7);
    let primary = Arc::new(Aion::open(primary_config(&sim)).unwrap());
    let key = primary.intern("v");
    for i in 1..=COMMITS {
        primary
            .write(|tx| {
                tx.add_node(
                    NodeId::new(i),
                    vec![],
                    vec![(key, PropertyValue::Int(i as i64))],
                )
            })
            .unwrap();
    }

    // Ship to a replica on the real file system. The shipper may only
    // stream the fsynced prefix, group-syncing the backlog itself.
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();
    let rdir = tempdir().unwrap();
    let replica = Arc::new(Aion::open(AionConfig::new(rdir.path())).unwrap());
    let mut rcfg = ReplayerConfig::new(shipper.addr(), rdir.path());
    rcfg.sync_every = 4;
    let mut replayer = Replayer::start(replica.clone(), rcfg);
    assert!(
        wait_for(10, || replica.latest_ts() == primary.latest_ts()),
        "replica never converged: {} vs {} (last error {:?})",
        replica.latest_ts(),
        primary.latest_ts(),
        replayer.last_error()
    );
    assert!(
        wait_for(10, || replayer.watermark().ts == primary.latest_ts()),
        "replica watermark stalled at {:?}",
        replayer.watermark()
    );
    let acked = replayer.watermark();
    let replica_ts = replica.latest_ts();
    replayer.shutdown();

    // Crash the primary: every byte not fsynced is gone.
    sim.crash_now();
    shipper.shutdown();
    drop(shipper);
    drop(primary);
    sim.heal();

    // Recovery must still hold the full acked (= shipped = fsynced)
    // prefix; the replica is never ahead of the reborn primary.
    let recovered = Arc::new(Aion::open(primary_config(&sim)).unwrap());
    assert!(
        recovered.latest_ts() >= acked.ts,
        "primary recovery lost acked commits: recovered ts {} < acked watermark ts {}",
        recovered.latest_ts(),
        acked.ts
    );
    assert!(
        recovered.latest_ts() >= replica_ts,
        "replica is ahead of the recovered primary: {} > {}",
        replica_ts,
        recovered.latest_ts()
    );
    for i in 1..=COMMITS.min(recovered.latest_ts()) {
        assert!(
            recovered.latest_graph().node(NodeId::new(i)).is_some(),
            "acked node {i} lost in primary crash"
        );
    }
    let report = recovered.check_consistency(CheckLevel::Full).unwrap();
    assert!(
        report.is_clean(),
        "recovered primary fsck dirty: {report:?}"
    );

    // And the old replica can rejoin the recovered primary cleanly.
    let mut shipper = LogShipper::start(recovered.clone(), ShipperConfig::default()).unwrap();
    let mut rcfg = ReplayerConfig::new(shipper.addr(), rdir.path());
    rcfg.sync_every = 4;
    let mut replayer = Replayer::start(replica.clone(), rcfg);
    assert!(
        wait_for(10, || replica.latest_ts() == recovered.latest_ts()),
        "replica never re-converged (last error {:?})",
        replayer.last_error()
    );
    assert!(
        !replayer.diverged(),
        "rejoin flagged divergence: {:?}",
        replayer.last_error()
    );
    replayer.shutdown();
    shipper.shutdown();
}
