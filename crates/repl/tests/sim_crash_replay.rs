//! Crash-consistency of the *replica* (DESIGN.md §13): a replica backed
//! by the fault-injecting [`vfs::SimVfs`] crashes at sampled points
//! while replaying the primary's log, then recovers. After every crash:
//!
//! 1. the replica reopens and the full `aion-fsck` audit is clean;
//! 2. the recovered state is a prefix of the primary's history (its
//!    latest timestamp never exceeds the primary's);
//! 3. the on-disk replay watermark never claims more than the durable
//!    prefix (`watermark.ts <= recovered latest_ts`) — a torn or lost
//!    watermark file is legal (it forces a full, idempotent resync),
//!    a *leading* one never is;
//! 4. a fresh [`Replayer`] resumes from whatever survived and converges
//!    back to the primary, and the audit stays clean.
//!
//! Knobs: `AION_REPL_SIM_SEEDS` (default 2), `AION_REPL_SIM_POINTS`
//! (crash points sampled per seed, default 10).

use aion::{Aion, AionConfig, CheckLevel};
use lpg::{NodeId, PropertyValue};
use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig, WatermarkStore};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;
use timestore::SnapshotPolicy;
use vfs::{FaultConfig, SimVfs, VfsRef};

const COMMITS: u64 = 30;
const REPLICA_ROOT: &str = "/replica";

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn replica_config(sim: &SimVfs) -> AionConfig {
    let mut cfg = AionConfig::new(REPLICA_ROOT);
    cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
    // Synchronous lineage keeps the replica's I/O stream deterministic
    // enough for crash points to land inside replay, not a cascade.
    cfg.sync_lineage = true;
    // Small snapshot cadence so replay crosses snapshot boundaries.
    cfg.timestore.policy = SnapshotPolicy::EveryNOps(10);
    cfg.timestore.cache_pages = 64;
    cfg.timestore.graphstore_bytes = 4 << 20;
    cfg.lineage.cache_pages = 64;
    cfg
}

fn replayer_config(sim: &SimVfs, primary: std::net::SocketAddr) -> ReplayerConfig {
    let mut cfg = ReplayerConfig::new(primary, REPLICA_ROOT);
    cfg.vfs = VfsRef::new(Arc::new(sim.clone()));
    // Small batches: many durability points inside one replay, so crash
    // points land before, between, and after watermark writes.
    cfg.sync_every = 2;
    cfg.reconnect_backoff = Duration::from_millis(5);
    cfg
}

/// Recovery invariants after a (possible) crash; returns the recovered db.
fn check_recovery(sim: &SimVfs, primary: &Aion, ctx: &str) -> Arc<Aion> {
    sim.heal();
    let db = Aion::open(replica_config(sim))
        .unwrap_or_else(|e| panic!("{ctx}: replica recovery reopen failed: {e}"));
    let recovered = db.latest_ts();
    assert!(
        recovered <= primary.latest_ts(),
        "{ctx}: replica ts {recovered} ahead of primary {}",
        primary.latest_ts()
    );
    let store = WatermarkStore::new(
        VfsRef::new(Arc::new(sim.clone())),
        std::path::Path::new(REPLICA_ROOT),
    );
    if let Some(wm) = store.load() {
        // The watermark is written only after a successful sync, so it
        // may lag the durable prefix (crash before the write) or vanish
        // (torn write), but it must never lead it.
        assert!(
            wm.ts <= recovered,
            "{ctx}: watermark ts {} leads recovered durable prefix {recovered}",
            wm.ts
        );
    }
    let report = db
        .check_consistency(CheckLevel::Full)
        .unwrap_or_else(|e| panic!("{ctx}: check_consistency failed: {e}"));
    assert!(report.is_clean(), "{ctx}: replica fsck dirty: {report:?}");
    Arc::new(db)
}

fn run_seed(seed: u64, max_points: u64) {
    let torn = [1usize, 16, 64, 512][(seed % 4) as usize];
    // Primary on the real file system: its durability is not under test.
    let pdir = tempdir().unwrap();
    let primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let key = primary.intern("v");
    for i in 1..=COMMITS {
        primary
            .write(|tx| {
                tx.add_node(
                    NodeId::new(seed * 1_000_000 + i),
                    vec![],
                    vec![(key, PropertyValue::Int(i as i64))],
                )
            })
            .unwrap();
    }
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();

    // Fault-free measuring run: its op count enumerates the crash points.
    let sim = SimVfs::new(seed);
    let db = Arc::new(Aion::open(replica_config(&sim)).unwrap());
    let mut replayer = Replayer::start(db.clone(), replayer_config(&sim, shipper.addr()));
    assert!(
        wait_for(20, || db.latest_ts() == primary.latest_ts()),
        "seed {seed}: fault-free replay never converged (last error {:?})",
        replayer.last_error()
    );
    replayer.shutdown();
    drop(replayer);
    drop(db);
    let total_ops = sim.op_count();
    assert!(total_ops > 0, "seed {seed}: replay did no I/O");

    let step = (total_ops / max_points.max(1)).max(1);
    let mut crashes_fired = 0u64;
    let mut c = 1u64;
    while c < total_ops {
        let ctx = format!("seed {seed} crash_at_op {c}/{total_ops} torn {torn}B");
        let sim = SimVfs::with_faults(
            seed,
            FaultConfig {
                crash_at_op: Some(c),
                io_error_rate: 0.0,
                torn_granularity: torn,
                survive_probability: 0.5,
            },
        );
        // The crash may fire during open itself; a failed open goes
        // straight to recovery.
        if let Ok(db) = Aion::open(replica_config(&sim)) {
            let db = Arc::new(db);
            let mut replayer = Replayer::start(db.clone(), replayer_config(&sim, shipper.addr()));
            // Replay until the crash point fires (or, when timing shifted
            // the op stream short of `c`, until convergence).
            wait_for(10, || {
                sim.has_crashed() || db.latest_ts() == primary.latest_ts()
            });
            replayer.shutdown();
        }
        if sim.has_crashed() {
            crashes_fired += 1;
        }

        // Recover, then prove the replica can rejoin and converge.
        let db = check_recovery(&sim, &primary, &ctx);
        let mut replayer = Replayer::start(db.clone(), replayer_config(&sim, shipper.addr()));
        assert!(
            wait_for(20, || db.latest_ts() == primary.latest_ts()),
            "{ctx}: replica never re-converged after recovery (last error {:?})",
            replayer.last_error()
        );
        replayer.shutdown();
        drop(replayer);
        let report = db.check_consistency(CheckLevel::Full).unwrap();
        assert!(
            report.is_clean(),
            "{ctx}: post-rejoin fsck dirty: {report:?}"
        );
        c += step;
    }
    assert!(
        crashes_fired > 0,
        "seed {seed}: no sampled crash point ever fired ({total_ops} ops)"
    );
    shipper.shutdown();
    println!("seed {seed}: {crashes_fired} crashes over {total_ops} replay ops, torn={torn}B");
}

/// Regression: a replayed frame whose append fails *transiently* (EIO
/// from the fault-injecting VFS, not a crash) must stay retryable. The
/// commit clock may only advance when an append actually reaches the
/// log; if a failed forced-timestamp commit consumed its timestamp, the
/// replayer's retry would be rejected as `NonMonotonicCommit`, treated
/// as idempotent re-delivery, and the commit would be silently missing
/// from the replica forever. After the errors stop, the replica must
/// converge to a byte-exact copy of the primary's history — no gaps.
#[test]
fn transient_replay_errors_never_lose_frames() {
    let pdir = tempdir().unwrap();
    let primary = Arc::new(Aion::open(AionConfig::new(pdir.path())).unwrap());
    let key = primary.intern("v");
    for i in 1..=COMMITS {
        primary
            .write(|tx| {
                tx.add_node(
                    NodeId::new(i),
                    vec![],
                    vec![(key, PropertyValue::Int(i as i64))],
                )
            })
            .unwrap();
    }
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();

    // Phase 1: replay under a persistent transient-error rate. Open is
    // clean (faults armed afterwards) so every failure lands in replay.
    let sim = SimVfs::new(9);
    let db = Arc::new(Aion::open(replica_config(&sim)).unwrap());
    sim.arm(FaultConfig {
        io_error_rate: 0.05,
        ..FaultConfig::none()
    });
    let mut replayer = Replayer::start(db.clone(), replayer_config(&sim, shipper.addr()));
    // Let it fight the faults for a while; convergence already now is
    // fine, but not required.
    wait_for(3, || db.latest_ts() == primary.latest_ts());
    replayer.shutdown();
    drop(replayer);
    drop(db);

    // Phase 2: errors stop; recover and re-join. Every frame the faults
    // interrupted must still be fetchable and applicable.
    sim.arm(FaultConfig::none());
    sim.heal();
    let db = Arc::new(Aion::open(replica_config(&sim)).expect("reopen after transient errors"));
    let mut replayer = Replayer::start(db.clone(), replayer_config(&sim, shipper.addr()));
    assert!(
        wait_for(20, || db.latest_ts() == primary.latest_ts()),
        "replica never converged after transient errors stopped \
         (replica ts {} vs primary {}, last error {:?})",
        db.latest_ts(),
        primary.latest_ts(),
        replayer.last_error()
    );
    replayer.shutdown();
    drop(replayer);

    // No gaps: the replica's history is the primary's, commit for commit.
    let end = primary.latest_ts() + 1;
    let p_diff: Vec<_> = primary
        .get_diff(1, end)
        .unwrap()
        .into_iter()
        .map(|u| (u.ts, u.op))
        .collect();
    let r_diff: Vec<_> = db
        .get_diff(1, end)
        .unwrap()
        .into_iter()
        .map(|u| (u.ts, u.op))
        .collect();
    assert_eq!(p_diff, r_diff, "replica history diverged from primary");
    for ts in 1..=COMMITS {
        assert!(
            r_diff.iter().any(|(t, _)| *t == ts),
            "commit {ts} silently missing from the replica — a transiently \
             failed frame was dropped instead of retried"
        );
    }
    assert!(
        db.latest_graph().same_as(&primary.latest_graph()),
        "replica graph diverged from primary"
    );
    let report = db.check_consistency(CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "replica fsck dirty: {report:?}");
    shipper.shutdown();
}

#[test]
fn replica_crash_mid_replay_recovers_clean() {
    let seeds = env_u64("AION_REPL_SIM_SEEDS", 2);
    let points = env_u64("AION_REPL_SIM_POINTS", 10);
    for seed in 0..seeds {
        run_seed(seed, points);
    }
}
