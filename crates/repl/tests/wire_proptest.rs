//! Property tests on the replication codec: round-trips, strict-prefix
//! rejection, trailing-byte rejection, panic freedom on garbage, and
//! checksum-flip detection in the carrying frame envelope.

use aion_server::protocol::{read_frame, write_frame};
use proptest::prelude::*;
use repl::{decode_msg, encode_msg, ReplMsg};

fn msg_strategy() -> impl Strategy<Value = ReplMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(start_offset, latest_ts, epoch)| {
            ReplMsg::Hello {
                start_offset,
                latest_ts,
                epoch,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                |(resume_offset, log_end, latest_ts, epoch, epoch_base_ts, fence_ts)| {
                    ReplMsg::HelloAck {
                        resume_offset,
                        log_end,
                        latest_ts,
                        epoch,
                        epoch_base_ts,
                        fence_ts,
                    }
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(offset, next_offset, epoch, payload)| ReplMsg::Frame {
                offset,
                next_offset,
                epoch,
                payload,
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(offset, ts)| ReplMsg::Ack { offset, ts }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(log_end, latest_ts, epoch)| {
            ReplMsg::Heartbeat {
                log_end,
                latest_ts,
                epoch,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn msg_roundtrips(msg in msg_strategy()) {
        let bytes = encode_msg(&msg);
        prop_assert_eq!(decode_msg(&bytes).unwrap(), msg);
    }

    /// A strict prefix of any encoding must fail to decode — truncation
    /// always lands inside a fixed-size or length-prefixed read.
    #[test]
    fn truncation_rejected(msg in msg_strategy(), cut in 0usize..64) {
        let bytes = encode_msg(&msg);
        let len = cut % bytes.len();
        prop_assert!(decode_msg(&bytes[..len]).is_err());
    }

    /// Trailing bytes are a layout disagreement, not slack to ignore.
    #[test]
    fn trailing_bytes_rejected(msg in msg_strategy(), extra in 1usize..16) {
        let mut bytes = encode_msg(&msg);
        bytes.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert!(decode_msg(&bytes).is_err());
    }

    /// Arbitrary garbage must produce `Err`, never a panic or runaway
    /// allocation (the Frame payload length is bounds-checked).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_msg(&bytes);
    }

    /// Flipping any single bit of the on-wire envelope (header or
    /// payload) is detected: the frame either fails its checksum/length
    /// check or — if the flip hit the length field and starves the
    /// reader — fails with a short read. It can never decode back to a
    /// *different* valid message.
    #[test]
    fn envelope_bit_flip_detected(msg in msg_strategy(), flip in any::<usize>()) {
        let payload = encode_msg(&msg);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let pos = flip % wire.len();
        wire[pos] ^= 1 << (pos % 8);
        // A flip inside the 4-byte length prefix *can* shrink the frame
        // to a still-valid-looking length; the checksum over the (now
        // wrong) payload slice must then catch it.
        if let Ok(recovered) = read_frame(&mut wire.as_slice()) {
            prop_assert_ne!(&recovered, &payload);
        }
        // And even if some envelope mutation slipped through, the inner
        // codec never yields a different valid message equal by luck:
        // decoding the flipped payload region either errors or differs.
        if pos >= 12 {
            let mut inner = payload.clone();
            inner[pos - 12] ^= 1 << (pos % 8);
            if let Ok(decoded) = decode_msg(&inner) {
                prop_assert_ne!(decoded, msg);
            }
        }
    }
}
