//! End-to-end replication basics: a primary ships its commit log, a
//! replica replays it, watermarks advance durably, reads obey the
//! staleness gate, and the routed client sees its own writes.

use aion::{Aion, AionConfig, CheckLevel};
use aion_server::{ClientConfig, RoutedClient, ServedBy, Server, ServerConfig};
use lpg::{NodeId, PropertyValue};
use repl::{LogShipper, Replayer, ReplayerConfig, ShipperConfig};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;

/// Polls `cond` for up to `secs` seconds.
fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn open_db(path: &std::path::Path) -> Arc<Aion> {
    Arc::new(Aion::open(AionConfig::new(path)).unwrap())
}

fn add_node(db: &Aion, id: u64) -> u64 {
    db.write(|tx| {
        tx.add_node(
            NodeId::new(id),
            vec![],
            vec![(db.intern("v"), PropertyValue::Int(id as i64))],
        )
    })
    .unwrap()
}

#[test]
fn replica_converges_and_resumes_after_restart() {
    let pdir = tempdir().unwrap();
    let rdir = tempdir().unwrap();
    let primary = open_db(pdir.path());
    let replica = open_db(rdir.path());

    for i in 1..=20 {
        add_node(&primary, i);
    }
    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();
    let mut cfg = ReplayerConfig::new(shipper.addr(), rdir.path());
    cfg.sync_every = 4;
    let replayer = Replayer::start(replica.clone(), cfg.clone());

    // Catch-up: everything written before the replica connected arrives.
    assert!(
        wait_for(10, || replica.latest_ts() == primary.latest_ts()),
        "replica never caught up: {} vs {} (last error: {:?})",
        replica.latest_ts(),
        primary.latest_ts(),
        replayer.last_error(),
    );
    // Live tail: new commits stream through.
    for i in 21..=40 {
        add_node(&primary, i);
    }
    assert!(wait_for(10, || replica.latest_ts() == primary.latest_ts()));
    let g = replica.latest_graph();
    for i in 1..=40 {
        assert!(g.node(NodeId::new(i)).is_some(), "node {i} missing");
    }
    // The watermark converges to the primary's ts (heartbeat flushes the
    // partial batch) and never exceeds it.
    assert!(wait_for(10, || replayer.watermark().ts == primary.latest_ts()));
    let wm = replayer.watermark();
    assert!(wm.offset > 0);

    // The primary saw the replica's acked watermark.
    assert!(wait_for(10, || {
        shipper
            .replica_watermarks()
            .iter()
            .any(|(_, w)| w.ts == primary.latest_ts())
    }));

    // Restart the replayer: it must resume from the durable watermark,
    // not refetch history into double-apply (latest_ts can't regress and
    // fsck stays clean).
    drop(replayer);
    for i in 41..=50 {
        add_node(&primary, i);
    }
    let replayer2 = Replayer::start(replica.clone(), cfg);
    assert!(
        wait_for(10, || replica.latest_ts() == primary.latest_ts()),
        "replica did not resume: last error {:?}",
        replayer2.last_error()
    );
    let g = replica.latest_graph();
    assert!(g.node(NodeId::new(50)).is_some());

    let report = replica.check_consistency(CheckLevel::Full).unwrap();
    assert!(report.is_clean(), "replica fsck dirty: {report:?}");
    drop(replayer2);
    shipper.shutdown();
}

#[test]
fn read_only_replica_rejects_writes_and_stale_reads() {
    let pdir = tempdir().unwrap();
    let rdir = tempdir().unwrap();
    let primary = open_db(pdir.path());
    let replica = open_db(rdir.path());

    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();
    let replayer = Replayer::start(
        replica.clone(),
        ReplayerConfig::new(shipper.addr(), rdir.path()),
    );

    let mut replica_srv = Server::start_with(
        replica.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = aion_server::Client::connect(replica_srv.addr()).unwrap();

    // Writes are refused with the typed ReadOnlyReplica error.
    let err = client
        .run("CREATE (n {_id: 1})", vec![])
        .expect_err("write must be refused on a read-only replica");
    assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);

    // A read demanding a watermark from the future is refused as stale.
    let far_future = primary.latest_ts() + 1_000;
    let err = client
        .run_with_watermark("MATCH (n) WHERE id(n) = 1 RETURN n", vec![], far_future)
        .expect_err("stale replica must refuse");
    assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

    // Once replication delivers the commit, the same floor succeeds.
    let ts = add_node(&primary, 7);
    assert!(wait_for(10, || replica.latest_ts() >= ts));
    let (result, watermark) = client
        .run_with_watermark("MATCH (n) WHERE id(n) = 7 RETURN n", vec![], ts)
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert!(watermark >= ts);

    replica_srv.shutdown();
    drop(replayer);
    shipper.shutdown();
}

#[test]
fn routed_client_reads_its_own_writes_from_replicas() {
    let pdir = tempdir().unwrap();
    let rdir = tempdir().unwrap();
    let primary = open_db(pdir.path());
    let replica = open_db(rdir.path());

    let mut shipper = LogShipper::start(primary.clone(), ShipperConfig::default()).unwrap();
    let replayer = Replayer::start(
        replica.clone(),
        ReplayerConfig::new(shipper.addr(), rdir.path()),
    );
    let mut primary_srv = Server::start(primary.clone()).unwrap();
    let mut replica_srv = Server::start_with(
        replica.clone(),
        ServerConfig {
            read_only: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut router = RoutedClient::new(
        primary_srv.addr(),
        vec![replica_srv.addr()],
        ClientConfig::default(),
    );
    for i in 1..=10 {
        // Write goes to the primary...
        let (_, served) = router
            .run_traced(&format!("CREATE (n {{_id: {i}, v: {i}}})"), vec![])
            .unwrap();
        assert_eq!(served, ServedBy::Primary, "writes must hit the primary");
        // ...and the immediately following read must see it, wherever it
        // lands: the session watermark forces replicas to be caught up
        // or refuse (falling back to the primary).
        let (result, _) = router
            .run_traced(&format!("MATCH (n) WHERE id(n) = {i} RETURN n"), vec![])
            .unwrap();
        assert_eq!(result.rows.len(), 1, "read-your-writes violated for {i}");
    }
    // The session watermark tracked the primary's commits.
    assert_eq!(router.session_watermark(), primary.latest_ts());

    // With a caught-up replica, reads are eventually served by it.
    assert!(wait_for(10, || replica.latest_ts() == primary.latest_ts()));
    let mut replica_served = false;
    for _ in 0..5 {
        let (_, served) = router
            .run_traced("MATCH (n) WHERE id(n) = 1 RETURN n", vec![])
            .unwrap();
        if served == ServedBy::Replica(0) {
            replica_served = true;
            break;
        }
    }
    assert!(replica_served, "replica never served a caught-up read");

    primary_srv.shutdown();
    replica_srv.shutdown();
    drop(replayer);
    shipper.shutdown();
}

#[test]
fn divergent_replica_is_refused_and_stops() {
    // Replica replays a real history from primary A...
    let adir = tempdir().unwrap();
    let rdir = tempdir().unwrap();
    let primary_a = open_db(adir.path());
    let replica = open_db(rdir.path());
    for i in 1..=10 {
        add_node(&primary_a, i);
    }
    let mut shipper_a = LogShipper::start(primary_a.clone(), ShipperConfig::default()).unwrap();
    let mut cfg = ReplayerConfig::new(shipper_a.addr(), rdir.path());
    cfg.sync_every = 2;
    let mut replayer = Replayer::start(replica.clone(), cfg);
    assert!(wait_for(10, || replica.latest_ts() == primary_a.latest_ts()));
    assert!(wait_for(10, || {
        replayer.watermark().ts == primary_a.latest_ts()
    }));
    replayer.shutdown();
    shipper_a.shutdown();

    // ...then is pointed at a primary with *less* history (a stand-in
    // for a primary that lost its disk). Silently resyncing would let
    // reused timestamps be skipped as re-delivery; instead the replayer
    // must mark itself diverged and stop reconnecting.
    let bdir = tempdir().unwrap();
    let primary_b = open_db(bdir.path());
    add_node(&primary_b, 999); // shorter history: ts 1 < replica's ts 10
    let mut shipper_b = LogShipper::start(primary_b.clone(), ShipperConfig::default()).unwrap();
    let mut cfg = ReplayerConfig::new(shipper_b.addr(), rdir.path());
    cfg.reconnect_backoff = Duration::from_millis(5);
    let mut replayer = Replayer::start(replica.clone(), cfg);
    assert!(
        wait_for(10, || replayer.diverged()),
        "replayer never flagged divergence (last error {:?})",
        replayer.last_error()
    );
    let err = replayer.last_error().unwrap_or_default();
    assert!(
        err.contains("diverged"),
        "divergence not surfaced in last_error: {err}"
    );
    // Nothing from the divergent primary was applied; local state is
    // exactly what primary A shipped.
    assert_eq!(replica.latest_ts(), primary_a.latest_ts());
    assert!(replica.latest_graph().node(NodeId::new(999)).is_none());
    // The stopped replayer does not keep hammering the primary.
    let reconnects = replayer.reconnect_count();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(replayer.reconnect_count(), reconnects);
    replayer.shutdown();
    shipper_b.shutdown();
}
