//! Deterministic failover end-to-end (DESIGN.md §17): promotion bumps
//! and persists the epoch, a fence probe stops the deposed primary from
//! accepting writes, rejoin quarantines the divergent log suffix
//! byte-exact, and the deposed node resyncs cleanly as a replica of the
//! new primary. Also covers the replayer's heartbeat-timeout liveness
//! detector against a silent (half-open) link.

use aion::{Aion, AionConfig, CheckLevel};
use aion_server::protocol::{read_frame, write_frame};
use lpg::{NodeId, PropertyValue};
use repl::{
    decode_msg, encode_msg, prepare_rejoin, read_divergence_archive, NodeRole, ReplMsg, ReplNode,
    ReplNodeConfig, Replayer, ReplayerConfig,
};
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tempfile::tempdir;
use vfs::VfsRef;

fn wait_for(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn open_db(path: &std::path::Path) -> Arc<Aion> {
    Arc::new(Aion::open(AionConfig::new(path)).unwrap())
}

fn add_node(db: &Aion, id: u64) -> u64 {
    db.write(|tx| {
        tx.add_node(
            NodeId::new(id),
            vec![],
            vec![(db.intern("v"), PropertyValue::Int(id as i64))],
        )
    })
    .unwrap()
}

#[test]
fn promotion_fences_old_primary_and_rejoin_archives_divergence() {
    let adir = tempdir().unwrap();
    let bdir = tempdir().unwrap();
    let db_a = open_db(adir.path());
    let db_b = open_db(bdir.path());

    // A is the epoch-0 primary; B replicates from it.
    let mut node_a = ReplNode::new_primary(
        db_a.clone(),
        VfsRef::std(),
        adir.path(),
        ReplNodeConfig::default(),
    )
    .unwrap();
    for i in 1..=10 {
        add_node(&db_a, i);
    }
    let a_repl_addr = node_a.shipper_addr().unwrap();
    let mut node_b = ReplNode::new_replica(
        db_b.clone(),
        ReplayerConfig::new(a_repl_addr, bdir.path()),
        ReplNodeConfig::default(),
        Arc::new(AtomicBool::new(true)),
    );
    assert_eq!(node_b.role(), NodeRole::Replica);
    assert!(
        wait_for(10, || db_b.latest_ts() == db_a.latest_ts()),
        "replica never converged (last error {:?})",
        node_b.replayer().and_then(Replayer::last_error)
    );
    let fence_ts = db_a.latest_ts();

    // Sever the replication link (B stops replaying), then commit a
    // suffix on A that will never ship: the divergence.
    node_b.shutdown();
    for i in 11..=13 {
        add_node(&db_a, i);
    }
    let divergent_tail = db_a.latest_ts();
    assert!(divergent_tail > fence_ts);

    // Promote B. The bump is persisted, writes open, and the fence
    // probe tells A (still alive — a partition, not a crash) that epoch
    // 1 exists: its write path must refuse from that moment on.
    let record = node_b.promote().unwrap();
    assert_eq!(node_b.role(), NodeRole::Primary);
    assert_eq!(record.epoch, 1);
    assert_eq!(record.base_ts, fence_ts);
    assert!(!node_b
        .read_only_flag()
        .load(std::sync::atomic::Ordering::Acquire));
    assert!(
        wait_for(10, || db_a.is_fenced()),
        "fence probe never reached the old primary"
    );
    let err = db_a
        .write(|tx| tx.add_node(NodeId::new(999), vec![], vec![]))
        .expect_err("deposed primary must refuse direct writes");
    assert!(
        matches!(err, lpg::GraphError::Fenced { held: 0, seen: 1 }),
        "want Fenced {{held: 0, seen: 1}}, got {err:?}"
    );

    // The new primary accepts writes in epoch 1.
    for i in 21..=25 {
        add_node(&db_b, i);
    }

    // Rejoin A: close its database, quarantine the divergent suffix.
    node_a.shutdown();
    let vfs = VfsRef::std();
    let pre_rejoin_log = vfs
        .read(&adir.path().join("timestore/timestore.log"))
        .unwrap();
    drop(node_a);
    drop(db_a);
    let b_repl_addr = node_b.shipper_addr().unwrap();
    let report = prepare_rejoin(&vfs, adir.path(), b_repl_addr, Duration::from_secs(5)).unwrap();
    assert_eq!(report.primary_epoch, 1);
    assert_eq!(report.fence_ts, fence_ts);
    assert_eq!(report.archived_frames, 3, "commits 11..=13 were divergent");
    let archive_path = report
        .archive_path
        .clone()
        .expect("suffix must be archived");

    // Byte-exact quarantine: the archive body is exactly the log bytes
    // beyond the fork offset, checksummed.
    let archive = read_divergence_archive(&vfs, &archive_path).unwrap();
    assert_eq!(archive.epoch, 1);
    assert_eq!(archive.fence_ts, fence_ts);
    assert_eq!(
        archive.bytes,
        pre_rejoin_log[report.fork_offset as usize..],
        "archived suffix is not byte-exact"
    );

    // Running rejoin again is a no-op (nothing left to quarantine).
    let again = prepare_rejoin(&vfs, adir.path(), b_repl_addr, Duration::from_secs(5)).unwrap();
    assert_eq!(again.archive_path, None);
    assert_eq!(again.archived_frames, 0);

    // A comes back as a replica of B and converges on the epoch-1
    // timeline: the new commits arrive, the quarantined ones are gone.
    let db_a2 = open_db(adir.path());
    assert_eq!(
        db_a2.latest_ts(),
        fence_ts,
        "truncation must stop at the fork"
    );
    let node_a2 = ReplNode::new_replica(
        db_a2.clone(),
        ReplayerConfig::new(b_repl_addr, adir.path()),
        ReplNodeConfig::default(),
        Arc::new(AtomicBool::new(true)),
    );
    assert!(
        wait_for(10, || db_a2.latest_ts() == db_b.latest_ts()),
        "rejoined node never converged (last error {:?})",
        node_a2.replayer().and_then(Replayer::last_error)
    );
    let g = db_a2.latest_graph();
    for i in 1..=10 {
        assert!(
            g.node(NodeId::new(i)).is_some(),
            "shared prefix node {i} lost"
        );
    }
    for i in 21..=25 {
        assert!(g.node(NodeId::new(i)).is_some(), "epoch-1 node {i} missing");
    }
    for i in 11..=13 {
        assert!(
            g.node(NodeId::new(i)).is_none(),
            "divergent node {i} leaked back after quarantine"
        );
    }
    // The rejoined node adopted epoch 1 durably and is no longer fenced
    // (it holds nothing, but applies the epoch-1 stream).
    assert_eq!(node_a2.epochs().current().epoch, 1);

    // Full audit clean on both sides of the failover.
    for (name, db) in [("rejoined", &db_a2), ("new primary", &db_b)] {
        let report = db.check_consistency(CheckLevel::Full).unwrap();
        assert!(report.is_clean(), "{name} audit dirty: {report:?}");
    }

    drop(node_a2);
    drop(node_b);
}

#[test]
fn stale_primary_cannot_fence_a_newer_node() {
    // A node that already holds epoch 2 ignores a Hello at epoch 1:
    // adoption and fencing only ever move epochs forward.
    let dir = tempdir().unwrap();
    let db = open_db(dir.path());
    let node = ReplNode::new_primary(
        db.clone(),
        VfsRef::std(),
        dir.path(),
        ReplNodeConfig::default(),
    )
    .unwrap();
    node.epochs().bump(0).unwrap();
    node.epochs().bump(0).unwrap();
    db.set_held_epoch(2);
    db.observe_epoch(1);
    assert!(!db.is_fenced(), "a stale epoch must never fence");
    add_node(&db, 1);
    drop(node);
}

/// A fake primary that completes the replication handshake and then
/// goes silent — the half-open-link shape the heartbeat timeout exists
/// to catch. Returns the listener address and keeps accepting so the
/// replayer's reconnects land somewhere.
fn start_silent_primary() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            std::thread::spawn(move || {
                let Ok(hello) = read_frame(&mut stream) else {
                    return;
                };
                let Ok(ReplMsg::Hello {
                    start_offset,
                    latest_ts,
                    ..
                }) = decode_msg(&hello)
                else {
                    return;
                };
                let ack = ReplMsg::HelloAck {
                    resume_offset: start_offset,
                    log_end: start_offset,
                    latest_ts,
                    epoch: 0,
                    epoch_base_ts: 0,
                    fence_ts: u64::MAX,
                };
                if write_frame(&mut stream, &encode_msg(&ack)).is_err() {
                    return;
                }
                // Handshake done; now say nothing, forever. The socket
                // stays open so only the heartbeat timeout can notice.
                std::thread::sleep(Duration::from_secs(3600));
            });
        }
    });
    addr
}

#[test]
fn heartbeat_timeout_marks_link_down_and_reconnects() {
    let dir = tempdir().unwrap();
    let db = open_db(dir.path());
    let addr = start_silent_primary();
    let mut cfg = ReplayerConfig::new(addr, dir.path());
    cfg.heartbeat_timeout = Duration::from_millis(100);
    cfg.reconnect_backoff = Duration::from_millis(5);
    let mut replayer = Replayer::start(db.clone(), cfg);

    // The silent link is detected, surfaced, and retried: two timeouts
    // prove detect → reconnect → handshake → detect again.
    assert!(
        wait_for(10, || replayer.heartbeat_timeout_count() >= 2),
        "heartbeat timeout never fired twice (last error {:?})",
        replayer.last_error()
    );
    assert!(replayer.reconnect_count() >= 1);
    let err = replayer.last_error().unwrap_or_default();
    assert!(
        err.contains("heartbeat"),
        "timeout not surfaced in last_error: {err}"
    );
    replayer.shutdown();
}
