//! Incremental, timeout-tolerant frame reading.
//!
//! Replication sockets carry the server's checksummed frame envelope
//! (`u32 len, u64 fnv64(payload), payload`), but both sides read with a
//! short socket timeout so they can notice stop flags. A plain
//! `read_exact` under a timeout can consume *part* of a frame and then
//! error, desynchronising the stream; this reader instead accumulates
//! whatever bytes arrive into a buffer and only yields complete,
//! checksum-verified frames, so a timeout tick never loses data.

use std::io::{self, Read};
use std::net::TcpStream;
use vfs::fnv64;

/// Upper bound on one frame payload, mirroring the server's cap.
const MAX_FRAME: usize = 256 << 20;

/// One tick of [`FrameReader::poll`].
pub(crate) enum Polled {
    /// A complete verified frame payload.
    Frame(Vec<u8>),
    /// No complete frame yet (socket timeout or short read); try again.
    Pending,
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
}

pub(crate) struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub(crate) fn new() -> FrameReader {
        FrameReader { buf: Vec::new() }
    }

    /// Attempts to complete one frame, reading more bytes if needed.
    /// The stream's read timeout bounds how long one call blocks.
    pub(crate) fn poll(&mut self, stream: &mut TcpStream) -> io::Result<Polled> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Polled::Frame(frame));
            }
            let mut chunk = [0u8; 64 * 1024];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Polled::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops one complete frame off the buffer, verifying its checksum.
    fn take_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 12 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too big"));
        }
        if self.buf.len() < 12 + len {
            return Ok(None);
        }
        let sum = u64::from_le_bytes([
            self.buf[4],
            self.buf[5],
            self.buf[6],
            self.buf[7],
            self.buf[8],
            self.buf[9],
            self.buf[10],
            self.buf[11],
        ]);
        let payload = self.buf[12..12 + len].to_vec();
        if fnv64(&payload) != sum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
        self.buf.drain(..12 + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_frame_reassembles_and_verifies() {
        let mut r = FrameReader::new();
        let payload = b"hello repl".to_vec();
        let mut wire = Vec::new();
        aion_server::protocol::write_frame(&mut wire, &payload).unwrap();
        // Feed the bytes one at a time: no partial parse may fire early.
        for (i, b) in wire.iter().enumerate() {
            r.buf.push(*b);
            let done = r.take_frame().unwrap();
            if i + 1 == wire.len() {
                assert_eq!(done, Some(payload.clone()));
            } else {
                assert_eq!(done, None);
            }
        }
    }

    #[test]
    fn corrupt_checksum_is_an_error() {
        let mut wire = Vec::new();
        aion_server::protocol::write_frame(&mut wire, b"payload").unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut r = FrameReader::new();
        r.buf = wire;
        let err = r.take_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
