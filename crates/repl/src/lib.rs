//! # aion-repl — log-shipping replication (DESIGN.md §13)
//!
//! The paper's append-only ChangeLog, ordered by commit timestamp
//! (Sec. 5), *is* a replication stream: this crate ships it.
//!
//! * [`shipper`] — the primary side: a [`LogShipper`] accepts replica
//!   connections and streams checksummed commit frames straight out of
//!   the [`timestore::ChangeLog`], tracking per-replica acked
//!   watermarks and lag.
//! * [`replayer`] — the replica side: a [`Replayer`] connects to the
//!   primary, applies frames into its own database through the normal
//!   commit pipeline ([`aion::Aion::apply_replicated`]), and persists a
//!   replay [`Watermark`] that never exceeds the locally durable
//!   prefix. Disconnects resume from the watermark; corrupt frames are
//!   rejected, never applied.
//! * [`wire`] — the `Hello`/`HelloAck`/`Frame`/`Ack`/`Heartbeat`
//!   message codec, carried in the server's checksummed frame envelope.
//! * [`watermark`] — the checksummed on-disk watermark record, written
//!   through the `crates/vfs` seam so crash simulation covers it.
//!
//! Replicas serve reads through the ordinary query server started with
//! [`aion_server::ServerConfig::read_only`]; clients get bounded
//! staleness via `min_watermark` on `Run` and replica-aware routing via
//! [`aion_server::RoutedClient`].

mod frame_io;
pub mod replayer;
pub mod shipper;
pub mod watermark;
pub mod wire;

pub use replayer::{Replayer, ReplayerConfig};
pub use shipper::{LogShipper, ShipperConfig};
pub use watermark::{Watermark, WatermarkStore};
pub use wire::{decode_msg, encode_msg, ReplMsg};
