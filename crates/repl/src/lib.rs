//! # aion-repl — log-shipping replication (DESIGN.md §13)
//!
//! The paper's append-only ChangeLog, ordered by commit timestamp
//! (Sec. 5), *is* a replication stream: this crate ships it.
//!
//! * [`shipper`] — the primary side: a [`LogShipper`] accepts replica
//!   connections and streams checksummed commit frames straight out of
//!   the [`timestore::ChangeLog`], tracking per-replica acked
//!   watermarks and lag.
//! * [`replayer`] — the replica side: a [`Replayer`] connects to the
//!   primary, applies frames into its own database through the normal
//!   commit pipeline ([`aion::Aion::apply_replicated`]), and persists a
//!   replay [`Watermark`] that never exceeds the locally durable
//!   prefix. Disconnects resume from the watermark; corrupt frames are
//!   rejected, never applied.
//! * [`wire`] — the `Hello`/`HelloAck`/`Frame`/`Ack`/`Heartbeat`
//!   message codec, carried in the server's checksummed frame envelope.
//! * [`watermark`] — the checksummed on-disk watermark record, written
//!   through the `crates/vfs` seam so crash simulation covers it.
//!
//! Replicas serve reads through the ordinary query server started with
//! [`aion_server::ServerConfig::read_only`]; clients get bounded
//! staleness via `min_watermark` on `Run` and replica-aware routing via
//! [`aion_server::RoutedClient`].
//!
//! Failover (DESIGN.md §17) is built from three more pieces:
//!
//! * [`epoch`] — the durable, monotonically increasing replication
//!   epoch chain; every shipped frame and handshake is stamped with it,
//!   and a node only accepts direct writes while holding the highest
//!   epoch it has seen.
//! * [`node`] — the role manager: a [`ReplNode`] wraps a database plus
//!   its shipper/replayer and implements [`ReplNode::promote`] (drain,
//!   bump epoch, open writes, start shipping, fence the old primary).
//! * [`rejoin`] — offline quarantine for a deposed primary's divergent
//!   log suffix ([`prepare_rejoin`]), archiving it byte-exact into a
//!   checksummed sidecar before the node resyncs as a replica.

pub mod epoch;
mod frame_io;
pub mod node;
pub mod rejoin;
pub mod replayer;
pub mod shipper;
pub mod watermark;
pub mod wire;

pub use epoch::{EpochRecord, EpochState, EPOCH_FILE};
pub use node::{NodeRole, ReplNode, ReplNodeConfig};
pub use rejoin::{prepare_rejoin, read_divergence_archive, DivergenceArchive, RejoinReport};
pub use replayer::{Replayer, ReplayerConfig};
pub use shipper::{LogShipper, ShipperConfig};
pub use watermark::{Watermark, WatermarkStore};
pub use wire::{decode_msg, encode_msg, ReplMsg};
