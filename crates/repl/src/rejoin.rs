//! Offline rejoin preparation for a deposed primary (DESIGN.md §17).
//!
//! A primary that kept accepting writes after the cluster promoted a
//! replica holds a **divergent log suffix**: commits acked only locally,
//! at timestamps the new primary has reused (or will reuse) for
//! different commits. Those frames can never be replayed into the new
//! timeline — but they were acknowledged once, so they are evidence and
//! must not be silently destroyed. [`prepare_rejoin`] runs with the
//! database **closed** and:
//!
//! 1. probes the current primary's replication handshake (the `HelloAck`
//!    is answered before any gate, so a deposed node always learns the
//!    cluster epoch and its own fork point);
//! 2. scans the local `timestore.log` for the first frame past the fork
//!    point and archives everything from there — including any torn
//!    tail — **byte-exact** into a checksummed sidecar
//!    `timestore.log.divergent-<epoch>`;
//! 3. truncates the log back to the fork point and deletes the derived
//!    state that indexed the divergent suffix (`timestore.idx` and
//!    `lineage.db`, plus their checksum sidecars) so the next open
//!    rebuilds from the surviving prefix;
//! 4. adopts the cluster epoch into the local chain, fencing the node's
//!    write path before it ever reopens.
//!
//! Archive layout (all integers little-endian):
//!
//! ```text
//! magic "AIONDIVG" | u32 version (1) | u64 epoch | u64 fence_ts |
//! u64 byte_len | u64 fnv64(bytes) | bytes (raw log suffix, verbatim)
//! ```

use crate::epoch::{EpochRecord, EpochState};
use crate::frame_io::{FrameReader, Polled};
use crate::wire::{decode_msg, encode_msg, ReplMsg};
use aion_server::protocol::write_frame;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;
use timestore::CommitFrame;
use vfs::{fnv64, sidecar_path, VfsRef};

/// Magic prefix of a divergence archive.
pub const DIVERGENCE_MAGIC: &[u8; 8] = b"AIONDIVG";

const DIVERGENCE_VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8;

/// What [`prepare_rejoin`] did, for operators and tests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RejoinReport {
    /// The cluster epoch learned from the primary's handshake.
    pub primary_epoch: u64,
    /// The fork point of this node's old epoch: commits with
    /// `ts > fence_ts` were divergent.
    pub fence_ts: u64,
    /// Byte offset the log was truncated to (its new end).
    pub fork_offset: u64,
    /// Complete frames moved into the archive.
    pub archived_frames: u64,
    /// Raw bytes moved into the archive (frames plus any torn tail).
    pub archived_bytes: u64,
    /// The archive file, when a divergent suffix existed.
    pub archive_path: Option<PathBuf>,
}

/// A divergence archive read back for inspection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DivergenceArchive {
    /// The epoch whose promotion orphaned these bytes.
    pub epoch: u64,
    /// The fork point recorded at archive time.
    pub fence_ts: u64,
    /// The raw log suffix, verbatim.
    pub bytes: Vec<u8>,
}

impl DivergenceArchive {
    /// Decodes the quarantined commit frames. Any torn tail the archive
    /// preserved verbatim is not decodable and is skipped — exactly the
    /// bytes the log itself would have discarded on recovery.
    pub fn frames(&self) -> Vec<CommitFrame> {
        let mut frames = Vec::new();
        let mut offset = 0usize;
        while let Some((frame, next)) = parse_frame(&self.bytes, offset) {
            frames.push(frame);
            offset = next;
        }
        frames
    }
}

/// Prepares a deposed primary rooted at `dir` to rejoin the cluster as
/// a replica of `primary`. The database at `dir` must be **closed** —
/// this function rewrites the log file underneath it.
///
/// Idempotent: running it twice (or on a node that never diverged)
/// archives nothing the second time and returns a report with
/// `archive_path: None`.
pub fn prepare_rejoin(
    vfs: &VfsRef,
    dir: &Path,
    primary: SocketAddr,
    connect_timeout: Duration,
) -> io::Result<RejoinReport> {
    let epochs = EpochState::load(vfs.clone(), dir);
    let my_epoch = epochs.current().epoch;
    let ts_dir = dir.join("timestore");
    let log_path = ts_dir.join("timestore.log");
    let log_bytes = vfs.read(&log_path).unwrap_or_default();
    let (local_latest_ts, _) = scan_frames(&log_bytes, 0);

    let (primary_epoch, epoch_base_ts, fence_ts) =
        probe_primary(primary, connect_timeout, my_epoch, local_latest_ts)?;

    if primary_epoch <= my_epoch {
        // The "primary" is not ahead of us; there is no newer timeline
        // to quarantine against. (Either we *are* current, or the peer
        // is itself stale — in both cases rejoin prep is a no-op.)
        return Ok(RejoinReport {
            primary_epoch,
            fence_ts: u64::MAX,
            fork_offset: log_bytes.len() as u64,
            archived_frames: 0,
            archived_bytes: 0,
            archive_path: None,
        });
    }

    // Find the fork offset: the start of the first frame past fence_ts.
    // Everything from there on — decodable frames *and* any torn tail —
    // is the divergent suffix.
    let fork_offset = find_fork_offset(&log_bytes, fence_ts);
    let suffix = log_bytes.get(fork_offset as usize..).unwrap_or_default();
    let (_, archived_frames) = scan_frames(suffix, 0);

    let archive_path = if suffix.is_empty() {
        None
    } else {
        let path = ts_dir.join(format!("timestore.log.divergent-{primary_epoch}"));
        write_archive(vfs, &path, primary_epoch, fence_ts, suffix)?;
        // Truncate the live log back to the fork point, then drop the
        // derived state (index, lineage) that may reference the suffix;
        // the next open rebuilds both from the surviving prefix.
        let log = vfs.open(&log_path)?;
        log.set_len(fork_offset)?;
        log.sync_data()?;
        for derived in [ts_dir.join("timestore.idx"), dir.join("lineage.db")] {
            let _ = vfs.remove_file(&derived);
            let _ = vfs.remove_file(&sidecar_path(&derived, "sums"));
        }
        obs::counter("repl.divergent_frames_archived").add(archived_frames);
        Some(path)
    };

    // Adopt the cluster epoch last: once persisted, the node's write
    // path is fenced from the moment it reopens.
    epochs.adopt(EpochRecord {
        epoch: primary_epoch,
        base_ts: epoch_base_ts,
    })?;

    Ok(RejoinReport {
        primary_epoch,
        fence_ts,
        fork_offset,
        archived_frames,
        archived_bytes: suffix.len() as u64,
        archive_path,
    })
}

/// Reads a divergence archive back, verifying magic, version, length,
/// and checksum.
pub fn read_divergence_archive(vfs: &VfsRef, path: &Path) -> io::Result<DivergenceArchive> {
    let bytes = vfs.read(path)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let header = bytes.get(..HEADER_LEN).ok_or_else(|| bad("short header"))?;
    if &header[..8] != DIVERGENCE_MAGIC {
        return Err(bad("bad divergence archive magic"));
    }
    let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if version != DIVERGENCE_VERSION {
        return Err(bad("unsupported divergence archive version"));
    }
    let read_u64 = |at: usize| {
        u64::from_le_bytes([
            header[at],
            header[at + 1],
            header[at + 2],
            header[at + 3],
            header[at + 4],
            header[at + 5],
            header[at + 6],
            header[at + 7],
        ])
    };
    let epoch = read_u64(12);
    let fence_ts = read_u64(20);
    let byte_len = read_u64(28) as usize;
    let checksum = read_u64(36);
    let body = bytes
        .get(HEADER_LEN..HEADER_LEN + byte_len)
        .ok_or_else(|| bad("archive body shorter than its header claims"))?;
    if bytes.len() != HEADER_LEN + byte_len {
        return Err(bad("trailing bytes after archive body"));
    }
    if fnv64(body) != checksum {
        return Err(bad("divergence archive checksum mismatch"));
    }
    Ok(DivergenceArchive {
        epoch,
        fence_ts,
        bytes: body.to_vec(),
    })
}

fn write_archive(
    vfs: &VfsRef,
    path: &Path,
    epoch: u64,
    fence_ts: u64,
    suffix: &[u8],
) -> io::Result<()> {
    let mut out = Vec::with_capacity(HEADER_LEN + suffix.len());
    out.extend_from_slice(DIVERGENCE_MAGIC);
    out.extend_from_slice(&DIVERGENCE_VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&fence_ts.to_le_bytes());
    out.extend_from_slice(&(suffix.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(suffix).to_le_bytes());
    out.extend_from_slice(suffix);
    let file = vfs.open(path)?;
    file.write_all_at(&out, 0)?;
    file.set_len(out.len() as u64)?;
    file.sync_data()
}

/// One handshake round against the primary: send a Hello, read the
/// pre-gate HelloAck, return `(epoch, epoch_base_ts, fence_ts)`.
fn probe_primary(
    primary: SocketAddr,
    connect_timeout: Duration,
    my_epoch: u64,
    latest_ts: u64,
) -> io::Result<(u64, u64, u64)> {
    let mut stream = TcpStream::connect_timeout(&primary, connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write_frame(
        &mut stream,
        &encode_msg(&ReplMsg::Hello {
            start_offset: 0,
            latest_ts,
            epoch: my_epoch,
        }),
    )?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + connect_timeout.max(Duration::from_secs(2));
    let ack = loop {
        match reader.poll(&mut stream)? {
            Polled::Frame(payload) => break decode_msg(&payload)?,
            Polled::Pending => {
                if std::time::Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "primary did not answer the rejoin probe",
                    ));
                }
            }
            Polled::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed during rejoin probe",
                ))
            }
        }
    };
    let ReplMsg::HelloAck {
        epoch,
        epoch_base_ts,
        fence_ts,
        ..
    } = ack
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO_ACK from primary",
        ));
    };
    Ok((epoch, epoch_base_ts, fence_ts))
}

/// Walks raw log bytes frame by frame (same `u32 len, u32 fnv1a,
/// payload` layout the [`timestore::ChangeLog`] writes), stopping at the
/// first frame that fails to parse (torn tail). Returns the highest
/// frame timestamp seen and the number of complete frames.
fn scan_frames(bytes: &[u8], from: usize) -> (u64, u64) {
    let mut latest_ts = 0u64;
    let mut frames = 0u64;
    let mut offset = from;
    while let Some((frame, next)) = parse_frame(bytes, offset) {
        latest_ts = latest_ts.max(frame.ts);
        frames += 1;
        offset = next;
    }
    (latest_ts, frames)
}

/// The byte offset of the first frame with `ts > fence_ts`; the scan end
/// (start of any torn tail) when every complete frame is at or below the
/// fence. Log order is commit order, so the first past-fence frame
/// starts the divergent suffix.
fn find_fork_offset(bytes: &[u8], fence_ts: u64) -> u64 {
    let mut offset = 0usize;
    while let Some((frame, next)) = parse_frame(bytes, offset) {
        if frame.ts > fence_ts {
            return offset as u64;
        }
        offset = next;
    }
    offset as u64
}

/// Parses one log frame at `offset`; `None` on truncation or any
/// checksum/structure failure (the caller treats that as the torn tail).
fn parse_frame(bytes: &[u8], offset: usize) -> Option<(CommitFrame, usize)> {
    let head = bytes.get(offset..offset + 8)?;
    let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize;
    let checksum = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
    if len as u64 > timestore::log::MAX_FRAME_LEN {
        return None;
    }
    let payload = bytes.get(offset + 8..offset + 8 + len)?;
    if fnv1a32(payload) != checksum {
        return None;
    }
    let frame = CommitFrame::decode(payload)?;
    Some((frame, offset + 8 + len))
}

/// The log's 32-bit FNV-1a payload checksum (mirrors
/// `timestore::log`'s private implementation — the format is fixed by
/// the on-disk log layout, documented there).
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_roundtrips_and_detects_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let vfs = VfsRef::std();
        let path = dir.path().join("timestore.log.divergent-3");
        let suffix = vec![7u8; 100];
        write_archive(&vfs, &path, 3, 42, &suffix).unwrap();
        let back = read_divergence_archive(&vfs, &path).unwrap();
        assert_eq!(back.epoch, 3);
        assert_eq!(back.fence_ts, 42);
        assert_eq!(back.bytes, suffix);
        // Flip one body byte: the checksum must catch it.
        let mut bytes = vfs.read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        vfs.write(&path, &bytes).unwrap();
        assert!(read_divergence_archive(&vfs, &path).is_err());
    }

    #[test]
    fn fork_offset_splits_at_fence_and_keeps_torn_tail_in_suffix() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("timestore.log");
        let log = timestore::ChangeLog::open(&path).unwrap();
        for ts in 1..=4u64 {
            log.append(&CommitFrame {
                ts,
                records: Vec::new(),
            })
            .unwrap();
        }
        log.sync().unwrap();
        drop(log);
        // Append garbage (a torn tail) after the valid frames.
        let vfs = VfsRef::std();
        let mut bytes = vfs.read(&path).unwrap();
        let valid_len = bytes.len();
        bytes.extend_from_slice(&[0xAB; 5]);
        vfs.write(&path, &bytes).unwrap();

        let (latest, frames) = scan_frames(&bytes, 0);
        assert_eq!((latest, frames), (4, 4));
        // Fence at ts 2: frames 3 and 4 plus the torn tail diverge.
        let fork = find_fork_offset(&bytes, 2) as usize;
        assert!(fork < valid_len);
        let (_, suffix_frames) = scan_frames(&bytes[fork..], 0);
        assert_eq!(suffix_frames, 2);
        // Fence above everything: fork lands at the torn-tail boundary.
        assert_eq!(find_fork_offset(&bytes, 10) as usize, valid_len);
    }
}
