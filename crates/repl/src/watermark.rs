//! The replica's replay watermark: `(log cursor, latest applied ts)`,
//! persisted through the VFS seam so crash simulation covers it.
//!
//! Durability contract: the watermark is only written *after* the
//! database it describes has fsynced ([`aion::Aion::sync`]), so it
//! never claims more than the durable prefix. The record is a single
//! 24-byte checksummed blob; a torn or corrupt file simply fails to
//! load and the replica resyncs from offset 0 — which is safe because
//! replay is idempotent (frames at or below the local latest timestamp
//! are skipped) — so no corruption mode can invent progress.

use std::io;
use std::path::{Path, PathBuf};
use vfs::{fnv64, VfsRef};

/// File name of the watermark record inside a replica's data directory.
pub const WATERMARK_FILE: &str = "repl.watermark";

/// A replica's durable replay position.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Watermark {
    /// Byte offset into the primary's log of the next frame needed
    /// (i.e. everything before this offset is applied and durable).
    pub offset: u64,
    /// Latest commit timestamp applied and durable locally.
    pub ts: u64,
}

/// Persists and restores a [`Watermark`] at a fixed path.
pub struct WatermarkStore {
    vfs: VfsRef,
    path: PathBuf,
}

impl WatermarkStore {
    /// A store writing `dir/repl.watermark` through `vfs`.
    pub fn new(vfs: VfsRef, dir: &Path) -> WatermarkStore {
        WatermarkStore {
            vfs,
            path: dir.join(WATERMARK_FILE),
        }
    }

    /// The backing file path (diagnostics, tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the persisted watermark. `None` means "no usable record"
    /// — absent, short, or corrupt — and the caller must resync from
    /// offset 0. Corruption is deliberately indistinguishable from
    /// absence: both answers are safe, and treating a torn record as an
    /// error would wedge a replica that a full resync could heal.
    pub fn load(&self) -> Option<Watermark> {
        let bytes = self.vfs.read(&self.path).ok()?;
        let record: &[u8; 24] = bytes.as_slice().try_into().ok()?;
        let sum = u64::from_le_bytes([
            record[16], record[17], record[18], record[19], record[20], record[21], record[22],
            record[23],
        ]);
        if fnv64(&record[..16]) != sum {
            return None;
        }
        Some(Watermark {
            offset: u64::from_le_bytes([
                record[0], record[1], record[2], record[3], record[4], record[5], record[6],
                record[7],
            ]),
            ts: u64::from_le_bytes([
                record[8], record[9], record[10], record[11], record[12], record[13], record[14],
                record[15],
            ]),
        })
    }

    /// Durably replaces the watermark. Call only after the database
    /// state it describes is itself durable.
    pub fn store(&self, wm: Watermark) -> io::Result<()> {
        let mut record = Vec::with_capacity(24);
        record.extend_from_slice(&wm.offset.to_le_bytes());
        record.extend_from_slice(&wm.ts.to_le_bytes());
        record.extend_from_slice(&fnv64(&record[..16]).to_le_bytes());
        let file = self.vfs.open(&self.path)?;
        // A crash between these steps leaves a short or stale record;
        // either fails `load` or describes an older durable prefix —
        // both recoverable, never an overclaim.
        file.set_len(0)?;
        file.write_all_at(&record, 0)?;
        file.sync_data()
    }
}
