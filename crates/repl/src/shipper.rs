//! Primary-side log shipping: a listener accepting replica connections,
//! one streaming worker per replica.
//!
//! Each worker tails the primary's [`timestore::ChangeLog`] with the
//! streaming [`ChangeLog::iter_from`] iterator — the log is append-only,
//! so a reader chasing the head always sees a consistent prefix — and
//! ships every commit frame verbatim inside [`crate::wire::ReplMsg::Frame`]
//! messages. A companion ack-reader thread (sharing the socket via
//! `try_clone`) consumes [`crate::wire::ReplMsg::Ack`]s so a slow or
//! silent replica never blocks shipping.
//!
//! **Shipping never outruns the primary's own durability.** Workers ship
//! only up to [`timestore::TimeStore::durable_log_end`] — the fsynced log
//! prefix — never the in-memory log head. Shipping further would let a
//! replica durably apply (and ack) a commit the primary can still lose
//! in a crash; recovery would then reuse the lost timestamps for
//! *different* commits, which the replayer's idempotent-skip would treat
//! as re-delivery — permanent, undetected divergence. When unsynced
//! backlog exists (the default `sync_on_commit = false` configuration),
//! the worker forces a group [`Aion::sync`] to make it shippable, so
//! replication doubles as the group-durability trigger.
//!
//! [`ChangeLog::iter_from`]: timestore::ChangeLog::iter_from

use crate::epoch::EpochState;
use crate::frame_io::{FrameReader, Polled};
use crate::watermark::Watermark;
use crate::wire::{decode_msg, encode_msg, ReplMsg};
use aion::Aion;
use aion_server::protocol::write_frame;
use aion_server::workers::WorkerSet;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one [`LogShipper`].
#[derive(Clone, Debug)]
pub struct ShipperConfig {
    /// How often an idle worker re-checks the log head for new frames.
    pub poll_interval: Duration,
    /// How often an idle worker sends a heartbeat (lag report + liveness
    /// probe: a vanished replica surfaces as the heartbeat write error).
    pub heartbeat_interval: Duration,
    /// Socket read/write timeout for replica connections.
    pub io_timeout: Duration,
}

impl Default for ShipperConfig {
    fn default() -> ShipperConfig {
        ShipperConfig {
            poll_interval: Duration::from_millis(5),
            heartbeat_interval: Duration::from_millis(200),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Obs counters/gauges for the primary side of replication.
struct ShipTelemetry {
    frames_shipped: Arc<obs::Counter>,
    frames_acked: Arc<obs::Counter>,
    replicas: Arc<obs::Gauge>,
    lag_bytes: Arc<obs::Gauge>,
    min_watermark_ts: Arc<obs::Gauge>,
    handshake_refusals: Arc<obs::Counter>,
}

impl ShipTelemetry {
    fn new() -> ShipTelemetry {
        ShipTelemetry {
            frames_shipped: obs::counter("server.repl.frames_shipped"),
            frames_acked: obs::counter("server.repl.frames_acked"),
            replicas: obs::gauge("server.repl.replicas"),
            lag_bytes: obs::gauge("server.repl.lag_bytes"),
            min_watermark_ts: obs::gauge("server.repl.min_watermark_ts"),
            handshake_refusals: obs::counter("server.repl.handshake_refusals"),
        }
    }
}

struct ShipperShared {
    db: Arc<Aion>,
    stop: AtomicBool,
    workers: WorkerSet<TcpStream>,
    /// Last acked watermark per live replica connection (worker id →
    /// watermark); pruned when the connection ends. Metric cardinality
    /// stays bounded by exposing only the *minimum* as a gauge and the
    /// full map through [`LogShipper::replica_watermarks`].
    acked: Mutex<HashMap<u64, Watermark>>,
    cfg: ShipperConfig,
    addr: SocketAddr,
    tel: ShipTelemetry,
    /// The epoch this primary ships under. Shared with the node's
    /// promotion path so a bump is visible to in-flight workers.
    epochs: Arc<EpochState>,
}

impl ShipperShared {
    fn lock_acked(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Watermark>> {
        match self.acked.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn record_ack(&self, worker: u64, wm: Watermark) {
        let mut map = self.lock_acked();
        map.insert(worker, wm);
        let min_ts = map.values().map(|w| w.ts).min().unwrap_or(0);
        self.tel
            .min_watermark_ts
            .set(i64::try_from(min_ts).unwrap_or(i64::MAX));
    }

    fn drop_replica(&self, worker: u64) {
        let mut map = self.lock_acked();
        map.remove(&worker);
        let min_ts = map.values().map(|w| w.ts).min().unwrap_or(0);
        self.tel
            .min_watermark_ts
            .set(i64::try_from(min_ts).unwrap_or(i64::MAX));
    }
}

/// The primary-side replication endpoint.
pub struct LogShipper {
    shared: Arc<ShipperShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl LogShipper {
    /// Starts shipping `db`'s commit log on an ephemeral localhost port,
    /// with a volatile epoch chain (epoch 0: a seed primary that was
    /// never promoted). Failover deployments use [`start_with`] so the
    /// shipped epoch is the durable one.
    ///
    /// [`start_with`]: LogShipper::start_with
    pub fn start(db: Arc<Aion>, cfg: ShipperConfig) -> io::Result<LogShipper> {
        LogShipper::start_with(db, cfg, EpochState::in_memory())
    }

    /// Starts shipping under an explicit (usually durable) epoch chain.
    pub fn start_with(
        db: Arc<Aion>,
        cfg: ShipperConfig,
        epochs: Arc<EpochState>,
    ) -> io::Result<LogShipper> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let tel = ShipTelemetry::new();
        let workers = WorkerSet::new(tel.replicas.clone());
        let shared = Arc::new(ShipperShared {
            db,
            stop: AtomicBool::new(false),
            workers,
            acked: Mutex::new(HashMap::new()),
            cfg,
            addr,
            tel,
            epochs,
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(LogShipper {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address replicas connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live replica connections.
    pub fn replica_count(&self) -> usize {
        self.shared.workers.active()
    }

    /// Last durably-acked watermark of every live replica, keyed by an
    /// opaque per-connection id.
    pub fn replica_watermarks(&self) -> Vec<(u64, Watermark)> {
        let mut v: Vec<(u64, Watermark)> = self
            .shared
            .lock_acked()
            .iter()
            .map(|(k, w)| (*k, *w))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Stops accepting, closes replica links, and joins every thread.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocked accept loop (same trick as the query server).
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let (handles, _) = self.shared.workers.force_close_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for LogShipper {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ShipperShared>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let worker_conn = match stream.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let (id, cancel) = shared.workers.register(worker_conn);
        let worker_shared = shared.clone();
        let handle = std::thread::spawn(move || {
            let _ = serve_replica(stream, id, &worker_shared, &cancel);
            worker_shared.drop_replica(id);
            worker_shared.workers.finish(id);
        });
        shared.workers.set_handle(id, handle);
    }
}

/// Handles one replica connection end to end; any error drops the link
/// (the replica reconnects and resumes from its durable watermark).
fn serve_replica(
    mut stream: TcpStream,
    worker_id: u64,
    shared: &Arc<ShipperShared>,
    cancel: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(shared.cfg.io_timeout))?;
    let stopped = || shared.stop.load(Ordering::Acquire) || cancel.load(Ordering::Acquire);

    // Handshake: the replica says where to resume; we validate the
    // offset by test-reading one frame there, falling back to a full
    // resync from 0 (safe: replay is idempotent).
    let mut reader = FrameReader::new();
    let hello = loop {
        if stopped() {
            return Ok(());
        }
        match reader.poll(&mut stream)? {
            Polled::Frame(payload) => break decode_msg(&payload)?,
            Polled::Pending => {}
            Polled::Eof => return Ok(()),
        }
    };
    let ReplMsg::Hello {
        start_offset,
        latest_ts: replica_ts,
        epoch: replica_epoch,
    } = hello
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO as first replication message",
        ));
    };
    let timestore = shared.db.timestore();
    let log = timestore.log();
    let primary_ts = shared.db.latest_ts();
    let resume_offset = validate_resume(start_offset, log);
    let my_epoch = shared.epochs.current();
    // The fork point of the *replica's* epoch: commits it holds past
    // this timestamp never shipped under any epoch we recognize.
    // `u64::MAX` when the replica's epoch is current (nothing forked).
    let fence_ts = shared.epochs.fork_ts_for(replica_epoch).unwrap_or(u64::MAX);
    // Always answer honestly (resume offset, our latest ts, our epoch)
    // so the peer can detect divergence — or our deposition — on its
    // side too, then gate below.
    write_frame(
        &mut stream,
        &encode_msg(&ReplMsg::HelloAck {
            resume_offset,
            log_end: timestore.durable_log_end(),
            latest_ts: primary_ts,
            epoch: my_epoch.epoch,
            epoch_base_ts: my_epoch.base_ts,
            fence_ts,
        }),
    )?;
    if replica_epoch > my_epoch.epoch {
        // The peer carries a newer epoch than we ever issued: we were
        // deposed while partitioned (this Hello may well be the new
        // primary's fence probe). Fence our own write path *before*
        // refusing, so no direct write can sneak in afterwards, and
        // leave the divergence handling to our own rejoin.
        shared.db.observe_epoch(replica_epoch);
        shared.tel.handshake_refusals.inc();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "peer epoch {replica_epoch} exceeds this primary's epoch {}: \
                 this node was deposed and is now fenced",
                my_epoch.epoch
            ),
        ));
    }
    if replica_ts > fence_ts {
        // The replica (on an older epoch) durably applied commits past
        // its epoch's fork point: those are divergent and must be
        // quarantined offline (`prepare_rejoin`) before it may resync.
        // Streaming anyway would skip the mismatched timestamps as
        // re-delivery and diverge silently.
        shared.tel.handshake_refusals.inc();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "replica on epoch {replica_epoch} holds commits past its \
                 fork point (replica ts {replica_ts} > fence ts {fence_ts}): \
                 divergent suffix must be quarantined before resync"
            ),
        ));
    }
    if replica_ts > primary_ts {
        // The replica durably applied commits this primary does not
        // have — the primary's history regressed (lost disk, restore
        // from backup). Streaming anyway would silently resync: frames
        // at reused timestamps would be skipped as re-delivery and the
        // replica would diverge undetected. Refuse loudly instead; the
        // replica needs a rebuild.
        shared.tel.handshake_refusals.inc();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "replica is ahead of the primary (replica ts {replica_ts} > \
                 primary ts {primary_ts}): histories diverged, refusing to serve"
            ),
        ));
    }

    // Ack reader: a separate thread on a socket clone, so acks drain
    // even while this thread is blocked writing a large frame. It takes
    // over the handshake FrameReader — any bytes the replica pipelined
    // behind its Hello are already in that reader's buffer and must not
    // be dropped.
    let ack_stream = stream.try_clone()?;
    let ack_shared = shared.clone();
    let ack_thread =
        std::thread::spawn(move || ack_loop(ack_stream, reader, worker_id, &ack_shared));

    let result = stream_frames(&mut stream, resume_offset, shared, &stopped);
    // Unblock and reap the ack thread: shutting down the socket makes
    // its reads fail fast.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = ack_thread.join();
    result
}

/// Returns a safe offset to start streaming from: `requested` if a valid
/// frame starts there, else 0 (full resync).
fn validate_resume(requested: u64, log: &timestore::ChangeLog) -> u64 {
    if requested == 0 {
        return 0;
    }
    if requested > log.end_offset() {
        return 0;
    }
    if requested == log.end_offset() {
        // Exactly caught up: nothing to validate yet.
        return requested;
    }
    match log.iter_from(requested).next() {
        Some(Ok(_)) => requested,
        _ => 0,
    }
}

fn stream_frames(
    stream: &mut TcpStream,
    mut cursor: u64,
    shared: &Arc<ShipperShared>,
    stopped: &dyn Fn() -> bool,
) -> io::Result<()> {
    let mut last_heartbeat = Instant::now();
    loop {
        if stopped() {
            return Ok(());
        }
        let timestore = shared.db.timestore();
        let log = timestore.log();
        // Ship only the fsynced prefix (see module docs): a frame past
        // it could still be rolled back by a primary crash, and the
        // replica must never durably apply what the primary can lose.
        let durable = timestore.durable_log_end();
        let mut shipped = false;
        if cursor < durable {
            for entry in log.iter_from(cursor) {
                if stopped() {
                    return Ok(());
                }
                let entry = entry.map_err(|e| {
                    // The primary's own log is corrupt past `cursor`:
                    // nothing more can be shipped on this connection.
                    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                })?;
                if entry.next > durable {
                    break;
                }
                write_frame(
                    stream,
                    &encode_msg(&ReplMsg::Frame {
                        offset: entry.offset,
                        next_offset: entry.next,
                        epoch: shared.epochs.current().epoch,
                        payload: entry.frame.encode(),
                    }),
                )?;
                cursor = entry.next;
                shared.tel.frames_shipped.inc();
                shipped = true;
            }
        }
        shared
            .tel
            .lag_bytes
            .set(i64::try_from(log.end_offset().saturating_sub(cursor)).unwrap_or(i64::MAX));
        if shipped {
            last_heartbeat = Instant::now();
            continue;
        }
        if log.end_offset() > durable {
            // Unsynced backlog (or a resume cursor past a stale durable
            // marker): force a group sync so it becomes shippable. This
            // is what makes `sync_on_commit = false` primaries durable
            // at replication speed instead of at fsync-per-commit cost.
            shared
                .db
                .sync()
                .map_err(|e| io::Error::other(e.to_string()))?;
            continue;
        }
        if last_heartbeat.elapsed() >= shared.cfg.heartbeat_interval {
            write_frame(
                stream,
                &encode_msg(&ReplMsg::Heartbeat {
                    log_end: durable,
                    latest_ts: shared.db.latest_ts(),
                    epoch: shared.epochs.current().epoch,
                }),
            )?;
            last_heartbeat = Instant::now();
        }
        std::thread::sleep(shared.cfg.poll_interval);
    }
}

/// Drains acks off a socket clone until the connection dies. Takes over
/// the handshake's [`FrameReader`] so bytes the replica pipelined after
/// its Hello (already buffered there) are not lost.
fn ack_loop(
    mut stream: TcpStream,
    mut reader: FrameReader,
    worker_id: u64,
    shared: &Arc<ShipperShared>,
) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match reader.poll(&mut stream) {
            Ok(Polled::Frame(payload)) => {
                if let Ok(ReplMsg::Ack { offset, ts }) = decode_msg(&payload) {
                    shared.tel.frames_acked.inc();
                    shared.record_ack(worker_id, Watermark { offset, ts });
                }
            }
            Ok(Polled::Pending) => {}
            Ok(Polled::Eof) | Err(_) => return,
        }
    }
}
