//! Replica-side replay: connect to the primary, stream commit frames,
//! apply them into the local database, and advance a durable watermark.
//!
//! Correctness invariants (DESIGN.md §13):
//!
//! * **Watermark ≤ durable prefix.** The watermark file is written only
//!   after [`aion::Aion::sync`] succeeds, so it never claims state the
//!   local store could lose in a crash.
//! * **Idempotent replay.** Every frame at or below the local latest
//!   timestamp is skipped, so resuming from an *older* offset (stale
//!   watermark, full resync after corruption) re-delivers but never
//!   re-applies commits.
//! * **Torn-tail rejection.** A frame whose `CommitFrame::decode`
//!   fails — corruption anywhere between the primary's disk and this
//!   process — drops the connection instead of applying garbage; the
//!   reconnect resumes from the durable watermark.
//! * **Startup reconciliation.** A watermark *ahead* of the local
//!   database (possible only if the database lost unsynced state that
//!   the watermark claimed — i.e. the durability order was violated by
//!   crash recovery truncating a torn tail) is discarded, forcing a
//!   resync from 0 rather than silently skipping frames.
//! * **Divergence refusal.** A primary whose latest timestamp is
//!   *below* this replica's durable watermark has a different history
//!   (the primary lost state this replica already applied — lost disk,
//!   restore from backup). Resyncing would silently skip mismatched
//!   frames as re-delivery, so the replayer instead marks itself
//!   [`Replayer::diverged`] and stops; the replica needs a rebuild.

use crate::epoch::{EpochRecord, EpochState};
use crate::frame_io::{FrameReader, Polled};
use crate::watermark::{Watermark, WatermarkStore};
use crate::wire::{decode_msg, encode_msg, ReplMsg};
use aion::Aion;
use aion_server::protocol::write_frame;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use timestore::CommitFrame;
use vfs::VfsRef;

/// Tunables for one [`Replayer`].
#[derive(Clone, Debug)]
pub struct ReplayerConfig {
    /// The primary's replication listener ([`crate::LogShipper::addr`]).
    pub primary: SocketAddr,
    /// The replica's data directory (the watermark file lives here).
    pub dir: PathBuf,
    /// File system seam for the watermark file — pass the same handle
    /// as the replica's [`aion::AionConfig::vfs`] so crash simulation
    /// covers both.
    pub vfs: VfsRef,
    /// Frames applied between durability points (sync + watermark +
    /// ack). `1` makes every frame durable before it is acked.
    pub sync_every: u64,
    /// TCP connect budget per attempt.
    pub connect_timeout: Duration,
    /// Base reconnect backoff (doubles up to 32× per consecutive
    /// failure, resetting on a successful handshake).
    pub reconnect_backoff: Duration,
    /// How long a connected session may go without *any* inbound
    /// message (frame or heartbeat) before the link is declared down
    /// and the session reconnects. The shipper heartbeats every
    /// [`crate::ShipperConfig::heartbeat_interval`] (default 200 ms),
    /// so the default here — 2 s — means ten missed heartbeats. This is
    /// the replica-side liveness trigger for failover: without it a
    /// silently dead link (half-open TCP, black-holing proxy) blocks
    /// replay forever.
    pub heartbeat_timeout: Duration,
}

impl ReplayerConfig {
    /// Defaults for a replica rooted at `dir` replicating from `primary`.
    pub fn new(primary: SocketAddr, dir: impl Into<PathBuf>) -> ReplayerConfig {
        ReplayerConfig {
            primary,
            dir: dir.into(),
            vfs: VfsRef::std(),
            sync_every: 32,
            connect_timeout: Duration::from_secs(2),
            reconnect_backoff: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_secs(2),
        }
    }
}

/// Obs metrics for the replica side.
struct ReplayTelemetry {
    frames_applied: Arc<obs::Counter>,
    frames_skipped: Arc<obs::Counter>,
    reconnects: Arc<obs::Counter>,
    corrupt_frames: Arc<obs::Counter>,
    watermark_ts: Arc<obs::Gauge>,
    link_down: Arc<obs::Gauge>,
    heartbeat_timeouts: Arc<obs::Counter>,
}

impl ReplayTelemetry {
    fn new() -> ReplayTelemetry {
        ReplayTelemetry {
            frames_applied: obs::counter("repl.replay.frames_applied"),
            frames_skipped: obs::counter("repl.replay.frames_skipped"),
            reconnects: obs::counter("repl.replay.reconnects"),
            corrupt_frames: obs::counter("repl.replay.corrupt_frames"),
            watermark_ts: obs::gauge("repl.replay.watermark_ts"),
            link_down: obs::gauge("repl.link_down"),
            heartbeat_timeouts: obs::counter("repl.heartbeat_timeouts"),
        }
    }
}

struct ReplayerShared {
    db: Arc<Aion>,
    stop: AtomicBool,
    diverged: AtomicBool,
    /// The durable watermark, under a mutex so `(offset, ts)` is always
    /// read as a consistent pair — two separate atomics would let a
    /// racing reader observe a torn combination (new offset, old ts).
    wm: Mutex<Watermark>,
    last_error: Mutex<Option<String>>,
    store: WatermarkStore,
    cfg: ReplayerConfig,
    tel: ReplayTelemetry,
    epochs: Arc<EpochState>,
}

impl ReplayerShared {
    fn lock_wm(&self) -> std::sync::MutexGuard<'_, Watermark> {
        match self.wm.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn set_watermark(&self, wm: Watermark) {
        *self.lock_wm() = wm;
        self.tel
            .watermark_ts
            .set(i64::try_from(wm.ts).unwrap_or(i64::MAX));
    }

    fn watermark(&self) -> Watermark {
        *self.lock_wm()
    }

    fn note_error(&self, e: impl ToString) {
        let mut slot = match self.last_error.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = Some(e.to_string());
    }
}

/// The replica-side replay engine: owns a background thread that keeps
/// the local database converging toward the primary's log.
pub struct Replayer {
    shared: Arc<ReplayerShared>,
    thread: Option<JoinHandle<()>>,
}

impl Replayer {
    /// Starts replaying into `db`. The durable watermark (if any, and if
    /// consistent with the local database — see module docs) decides
    /// where streaming resumes. The epoch chain is loaded from (and
    /// persisted under) `cfg.dir`, next to the watermark.
    pub fn start(db: Arc<Aion>, cfg: ReplayerConfig) -> Replayer {
        let epochs = EpochState::load(cfg.vfs.clone(), &cfg.dir);
        Replayer::start_with(db, cfg, epochs)
    }

    /// Starts replaying with an explicit shared epoch chain (the node
    /// role manager shares one chain between replay and promotion).
    pub fn start_with(db: Arc<Aion>, cfg: ReplayerConfig, epochs: Arc<EpochState>) -> Replayer {
        let store = WatermarkStore::new(cfg.vfs.clone(), &cfg.dir);
        let initial = reconcile_watermark(store.load(), db.latest_ts());
        // Knowing about an epoch fences the write path below it: a
        // replica that ever adopted epoch N refuses direct writes until
        // *it* is promoted to an epoch ≥ N.
        db.observe_epoch(epochs.current().epoch);
        let shared = Arc::new(ReplayerShared {
            db,
            stop: AtomicBool::new(false),
            diverged: AtomicBool::new(false),
            wm: Mutex::new(initial),
            last_error: Mutex::new(None),
            store,
            cfg,
            tel: ReplayTelemetry::new(),
            epochs,
        });
        shared
            .tel
            .watermark_ts
            .set(i64::try_from(initial.ts).unwrap_or(i64::MAX));
        let run_shared = shared.clone();
        let thread = std::thread::spawn(move || run(&run_shared));
        Replayer {
            shared,
            thread: Some(thread),
        }
    }

    /// The current durable watermark.
    pub fn watermark(&self) -> Watermark {
        self.shared.watermark()
    }

    /// A detached probe of the durable watermark, for monitor threads
    /// that must outlive their borrow of the replayer (soak tests,
    /// metrics exporters).
    pub fn watermark_probe(&self) -> impl Fn() -> Watermark + Send + 'static {
        let shared = self.shared.clone();
        move || shared.watermark()
    }

    /// Times the replayer re-established its primary connection.
    pub fn reconnect_count(&self) -> u64 {
        self.shared.tel.reconnects.get()
    }

    /// The shared epoch chain this replica replays under.
    pub fn epochs(&self) -> Arc<EpochState> {
        self.shared.epochs.clone()
    }

    /// Heartbeat-timeout liveness trips so far (link declared down).
    pub fn heartbeat_timeout_count(&self) -> u64 {
        self.shared.tel.heartbeat_timeouts.get()
    }

    /// Whether the replayer detected primary/replica history divergence
    /// (the primary's latest timestamp fell below this replica's durable
    /// watermark) and permanently stopped. [`Replayer::last_error`]
    /// carries the detail; the replica needs a rebuild to rejoin.
    pub fn diverged(&self) -> bool {
        self.shared.diverged.load(Ordering::Acquire)
    }

    /// The most recent replay error, if any (diagnostics).
    pub fn last_error(&self) -> Option<String> {
        match self.shared.last_error.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Stops the replay thread and joins it.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replayer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Startup sanity: a watermark claiming more commits than the database
/// actually holds would make resume *skip* data — discard it instead.
fn reconcile_watermark(loaded: Option<Watermark>, db_latest: u64) -> Watermark {
    match loaded {
        Some(wm) if wm.ts <= db_latest => wm,
        _ => Watermark::default(),
    }
}

fn run(shared: &Arc<ReplayerShared>) {
    let mut backoff_factor: u32 = 1;
    while !shared.stop.load(Ordering::Acquire) {
        let mut handshake_ok = false;
        match session(shared, &mut handshake_ok) {
            Ok(()) => return, // clean stop
            Err(e) => {
                shared.note_error(e.to_string());
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if shared.diverged.load(Ordering::Acquire) {
                    // Not a transient fault: reconnecting would only be
                    // refused again. Stop and leave the verdict in
                    // `diverged()` / `last_error()`.
                    return;
                }
                if handshake_ok {
                    // The primary was reachable and answered: this was a
                    // working session, so the next outage starts from the
                    // base backoff again.
                    backoff_factor = 1;
                }
                shared.tel.reconnects.inc();
                let sleep = shared
                    .cfg
                    .reconnect_backoff
                    .saturating_mul(backoff_factor)
                    .min(Duration::from_secs(2));
                backoff_factor = (backoff_factor * 2).min(32);
                std::thread::sleep(sleep);
            }
        }
    }
}

/// One connected session: handshake, then stream-apply until the
/// connection dies or the replayer is stopped. `Ok(())` means "stop was
/// requested"; every other exit is an `Err` that triggers reconnect.
/// `handshake_ok` is set once a valid `HelloAck` arrived, so the caller
/// can reset its reconnect backoff after sessions that actually worked.
fn session(shared: &Arc<ReplayerShared>, handshake_ok: &mut bool) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&shared.cfg.primary, shared.cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    let wm = shared.watermark();
    let my_epoch = shared.epochs.current().epoch;
    write_frame(
        &mut stream,
        &encode_msg(&ReplMsg::Hello {
            start_offset: wm.offset,
            latest_ts: wm.ts,
            epoch: my_epoch,
        }),
    )?;
    let mut reader = FrameReader::new();
    let ack = loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match reader.poll(&mut stream)? {
            Polled::Frame(payload) => break decode_msg(&payload)?,
            Polled::Pending => {}
            Polled::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed during handshake",
                ))
            }
        }
    };
    let ReplMsg::HelloAck {
        resume_offset,
        latest_ts: primary_ts,
        epoch: primary_epoch,
        epoch_base_ts,
        fence_ts,
        ..
    } = ack
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected HELLO_ACK from primary",
        ));
    };
    if primary_epoch < my_epoch {
        // A deposed primary: it predates an epoch we already adopted.
        // Following it would replay a dead timeline — reconnect (the
        // routing layer will eventually point us at the new primary).
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "primary is on stale epoch {primary_epoch} (ours is \
                 {my_epoch}): refusing to follow a deposed primary"
            ),
        ));
    }
    if primary_epoch > my_epoch {
        // A newer primary exists. Commits we hold beyond its fork point
        // for *our* epoch never shipped anywhere this primary knows —
        // they are divergent and must be quarantined offline
        // (`prepare_rejoin`) before this replica may resync.
        if shared.db.latest_ts() > fence_ts {
            shared.diverged.store(true, Ordering::Release);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "local history extends past the epoch {primary_epoch} \
                     fork point (latest ts {} > fence ts {fence_ts}): \
                     divergent suffix must be quarantined before rejoin",
                    shared.db.latest_ts()
                ),
            ));
        }
        shared.epochs.adopt(EpochRecord {
            epoch: primary_epoch,
            base_ts: epoch_base_ts,
        })?;
        shared.db.observe_epoch(primary_epoch);
    }
    if primary_ts < wm.ts {
        // The primary has *less* history than we durably applied: it
        // lost state (our watermark only ever covers commits the primary
        // had fsynced, so this cannot be ordinary lag). Resyncing would
        // skip reused timestamps as re-delivery and diverge silently —
        // refuse instead and stop (see module docs).
        shared.diverged.store(true, Ordering::Release);
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "primary regressed below our durable watermark (primary ts \
                 {primary_ts} < watermark ts {}): histories diverged, this \
                 replica needs a rebuild",
                wm.ts
            ),
        ));
    }
    *handshake_ok = true;
    shared.tel.link_down.set(0);

    // The primary may have forced a full resync (resume_offset 0 when we
    // asked for more): idempotent replay makes that safe, but the cursor
    // must follow the *wire* position, not the local watermark.
    let mut cursor = resume_offset;
    let mut pending: u64 = 0; // frames applied/skipped since last durability point
    let mut last_inbound = Instant::now();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            // Flush progress so restart resumes close to the head.
            let _ = make_durable(shared, &mut stream, cursor, &mut pending);
            return Ok(());
        }
        let msg = match reader.poll(&mut stream)? {
            Polled::Frame(payload) => {
                last_inbound = Instant::now();
                decode_msg(&payload)?
            }
            Polled::Pending => {
                if last_inbound.elapsed() >= shared.cfg.heartbeat_timeout {
                    // The shipper heartbeats even when idle, so silence
                    // this long means the link is dead (half-open TCP,
                    // black-holing middlebox). Declare it down and
                    // reconnect through the normal backoff path.
                    shared.tel.heartbeat_timeouts.inc();
                    shared.tel.link_down.set(1);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "no frame or heartbeat from primary for {:?}: \
                             declaring the replication link down",
                            shared.cfg.heartbeat_timeout
                        ),
                    ));
                }
                continue;
            }
            Polled::Eof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "primary closed the replication stream",
                ))
            }
        };
        match msg {
            ReplMsg::Frame {
                offset,
                next_offset,
                epoch,
                payload,
            } => {
                check_stream_epoch(shared, epoch)?;
                if offset != cursor {
                    // Out-of-order delivery is impossible on one TCP
                    // stream unless state is corrupt: resync.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame offset {offset} does not match cursor {cursor}"),
                    ));
                }
                let Some(frame) = CommitFrame::decode(&payload) else {
                    // Torn/corrupt frame: never apply garbage.
                    shared.tel.corrupt_frames.inc();
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt commit frame at offset {offset}"),
                    ));
                };
                if frame.ts > shared.db.latest_ts() {
                    let updates: Vec<lpg::Update> =
                        frame.to_updates().into_iter().map(|u| u.op).collect();
                    shared
                        .db
                        .apply_replicated(frame.ts, updates)
                        .map_err(|e| io::Error::other(e.to_string()))?;
                    shared.tel.frames_applied.inc();
                } else {
                    // Re-delivery below our latest ts: idempotent skip.
                    shared.tel.frames_skipped.inc();
                }
                cursor = next_offset;
                pending += 1;
                if pending >= shared.cfg.sync_every {
                    make_durable(shared, &mut stream, cursor, &mut pending)?;
                }
            }
            ReplMsg::Heartbeat { epoch, .. } => {
                check_stream_epoch(shared, epoch)?;
                // Quiesce point: flush any partial batch so an idle
                // stream still converges to a durable, acked watermark.
                if pending > 0 {
                    make_durable(shared, &mut stream, cursor, &mut pending)?;
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected replication message: {other:?}"),
                ));
            }
        }
    }
}

/// Mid-stream epoch gate: a frame or heartbeat stamped with an epoch
/// *older* than ours comes from a primary deposed after the handshake —
/// drop the session rather than apply a dead timeline. A *newer* stamp
/// (promotion raced this stream) at least fences our write path
/// immediately; the follow-up reconnect handshake adopts it properly.
fn check_stream_epoch(shared: &Arc<ReplayerShared>, epoch: u64) -> io::Result<()> {
    let ours = shared.epochs.current().epoch;
    if epoch < ours {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("stream epoch {epoch} fell behind ours ({ours}): primary was deposed"),
        ));
    }
    if epoch > ours {
        shared.db.observe_epoch(epoch);
    }
    Ok(())
}

/// The durability point: fsync the database, persist the watermark, then
/// ack. Order matters — the watermark may never lead the database, and
/// the ack may never lead the watermark.
fn make_durable(
    shared: &Arc<ReplayerShared>,
    stream: &mut TcpStream,
    cursor: u64,
    pending: &mut u64,
) -> io::Result<()> {
    if *pending == 0 {
        return Ok(());
    }
    shared
        .db
        .sync()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let wm = Watermark {
        offset: cursor,
        ts: shared.db.latest_ts(),
    };
    shared.store.store(wm)?;
    shared.set_watermark(wm);
    *pending = 0;
    write_frame(
        stream,
        &encode_msg(&ReplMsg::Ack {
            offset: wm.offset,
            ts: wm.ts,
        }),
    )
}
