//! Replication wire messages.
//!
//! All messages travel inside the server's checksummed frame envelope
//! (`u32 len, u64 fnv64(payload), payload` — [`aion_server::protocol`]),
//! so a flipped byte is a framing error, never a different valid
//! message. On top of that, a [`ReplMsg::Frame`] carries a verbatim
//! commit-log frame *payload* whose own integrity the replica re-checks
//! by decoding it with [`timestore::CommitFrame::decode`] (length +
//! checksum + structure), giving end-to-end protection from the
//! primary's disk to the replica's apply path.
//!
//! Every message (except `Ack`, which only reports durability) carries
//! the sender's replication **epoch** (DESIGN.md §17): receivers fold it
//! into their fence state, so a node that talks to a newer primary —
//! or is probed by one — immediately stops accepting direct writes.
//!
//! ```text
//! msg := 0x10 "HELLO"     u64 start_offset, u64 latest_ts, u64 epoch
//!      | 0x11 "HELLO_ACK" u64 resume_offset, u64 log_end, u64 latest_ts,
//!                         u64 epoch, u64 epoch_base_ts, u64 fence_ts
//!      | 0x12 "FRAME"     u64 offset, u64 next_offset, u64 epoch,
//!                         u32 plen, payload (a CommitFrame encoding)
//!      | 0x13 "ACK"       u64 offset, u64 ts
//!      | 0x14 "HEARTBEAT" u64 log_end, u64 latest_ts, u64 epoch
//! ```

use std::io;

/// One replication protocol message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplMsg {
    /// Replica → primary, once per connection: where to resume.
    Hello {
        /// First log offset the replica still needs (its watermark's
        /// `next` offset; `0` for a fresh replica).
        start_offset: u64,
        /// The replica's latest durably applied commit timestamp. The
        /// primary never *applies* anything based on it, but it does
        /// gate the handshake: a value above the primary's own latest
        /// timestamp means the histories diverged (the primary lost
        /// state this replica already holds) and the connection is
        /// refused instead of silently resyncing.
        latest_ts: u64,
        /// The sender's current replication epoch. A primary receiving
        /// a Hello with a *higher* epoch knows it was deposed: it fences
        /// its own write path before answering. (Promotion exploits this
        /// by probing the old primary with a Hello at the new epoch.)
        epoch: u64,
    },
    /// Primary → replica, answering [`ReplMsg::Hello`].
    HelloAck {
        /// The offset streaming will actually start from. Usually the
        /// requested one; `0` if the request was unusable (past the end
        /// or not a frame boundary), forcing a full resync — which is
        /// safe because replay is idempotent.
        resume_offset: u64,
        /// The primary's current *durable* (fsynced) log end offset —
        /// the furthest point this connection will ever ship.
        log_end: u64,
        /// The primary's latest committed timestamp. A replica whose
        /// durable watermark timestamp exceeds this marks itself
        /// diverged and stops rather than resyncing into silent skips.
        latest_ts: u64,
        /// The primary's current epoch. A replica seeing a *higher*
        /// epoch than its own adopts it (fencing itself); a replica
        /// seeing a *lower* one is talking to a deposed primary and
        /// reconnects elsewhere.
        epoch: u64,
        /// The commit timestamp at which the primary's current epoch
        /// began — what the replica persists alongside the adopted
        /// epoch so it can answer fork-point queries later.
        epoch_base_ts: u64,
        /// The fork point for the *replica's* epoch as stated in its
        /// Hello: the base timestamp of the first epoch newer than it.
        /// Commits the replica holds with `ts > fence_ts` are divergent
        /// and must be quarantined before resync. `u64::MAX` when the
        /// replica's epoch is current (nothing diverged).
        fence_ts: u64,
    },
    /// Primary → replica: one commit-log frame.
    Frame {
        /// Byte offset of this frame in the primary's log.
        offset: u64,
        /// Byte offset of the next frame (the replica's new cursor).
        next_offset: u64,
        /// The epoch this frame is shipped under. A replica refuses
        /// frames from an epoch older than its own (a deposed primary
        /// must never feed a fenced replica).
        epoch: u64,
        /// The frame's `CommitFrame::encode()` bytes, shipped verbatim.
        payload: Vec<u8>,
    },
    /// Replica → primary: everything up to `offset` is applied *and
    /// durable* on the replica (synced, watermark persisted).
    Ack {
        /// The replica's durable log cursor (a `next_offset` it reached).
        offset: u64,
        /// The replica's durable latest commit timestamp.
        ts: u64,
    },
    /// Primary → replica, when the log is idle: proof of liveness plus
    /// the current log head, so the replica can measure its lag and
    /// flush a pending batch.
    Heartbeat {
        /// The primary's current durable (shippable) log end offset.
        log_end: u64,
        /// The primary's latest committed timestamp.
        latest_ts: u64,
        /// The primary's current epoch (same fencing rule as frames).
        epoch: u64,
    },
}

const TAG_HELLO: u8 = 0x10;
const TAG_HELLO_ACK: u8 = 0x11;
const TAG_FRAME: u8 = 0x12;
const TAG_ACK: u8 = 0x13;
const TAG_HEARTBEAT: u8 = 0x14;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u64"))?;
    *pos += 8;
    Ok(u64::from_le_bytes(bytes))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> io::Result<u32> {
    let bytes: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated u32"))?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

/// Serializes one message.
pub fn encode_msg(msg: &ReplMsg) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        ReplMsg::Hello {
            start_offset,
            latest_ts,
            epoch,
        } => {
            out.push(TAG_HELLO);
            put_u64(&mut out, *start_offset);
            put_u64(&mut out, *latest_ts);
            put_u64(&mut out, *epoch);
        }
        ReplMsg::HelloAck {
            resume_offset,
            log_end,
            latest_ts,
            epoch,
            epoch_base_ts,
            fence_ts,
        } => {
            out.push(TAG_HELLO_ACK);
            put_u64(&mut out, *resume_offset);
            put_u64(&mut out, *log_end);
            put_u64(&mut out, *latest_ts);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *epoch_base_ts);
            put_u64(&mut out, *fence_ts);
        }
        ReplMsg::Frame {
            offset,
            next_offset,
            epoch,
            payload,
        } => {
            out.push(TAG_FRAME);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *next_offset);
            put_u64(&mut out, *epoch);
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        ReplMsg::Ack { offset, ts } => {
            out.push(TAG_ACK);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *ts);
        }
        ReplMsg::Heartbeat {
            log_end,
            latest_ts,
            epoch,
        } => {
            out.push(TAG_HEARTBEAT);
            put_u64(&mut out, *log_end);
            put_u64(&mut out, *latest_ts);
            put_u64(&mut out, *epoch);
        }
    }
    out
}

/// Deserializes one message; trailing bytes are a protocol error (they
/// would mean the sender and receiver disagree on the message layout).
pub fn decode_msg(buf: &[u8]) -> io::Result<ReplMsg> {
    let mut pos = 0usize;
    let tag = *buf
        .first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty repl message"))?;
    pos += 1;
    let msg = match tag {
        TAG_HELLO => ReplMsg::Hello {
            start_offset: get_u64(buf, &mut pos)?,
            latest_ts: get_u64(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
        },
        TAG_HELLO_ACK => ReplMsg::HelloAck {
            resume_offset: get_u64(buf, &mut pos)?,
            log_end: get_u64(buf, &mut pos)?,
            latest_ts: get_u64(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
            epoch_base_ts: get_u64(buf, &mut pos)?,
            fence_ts: get_u64(buf, &mut pos)?,
        },
        TAG_FRAME => {
            let offset = get_u64(buf, &mut pos)?;
            let next_offset = get_u64(buf, &mut pos)?;
            let epoch = get_u64(buf, &mut pos)?;
            let plen = get_u32(buf, &mut pos)? as usize;
            let payload = buf
                .get(pos..pos + plen)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated payload"))?
                .to_vec();
            pos += plen;
            ReplMsg::Frame {
                offset,
                next_offset,
                epoch,
                payload,
            }
        }
        TAG_ACK => ReplMsg::Ack {
            offset: get_u64(buf, &mut pos)?,
            ts: get_u64(buf, &mut pos)?,
        },
        TAG_HEARTBEAT => ReplMsg::Heartbeat {
            log_end: get_u64(buf, &mut pos)?,
            latest_ts: get_u64(buf, &mut pos)?,
            epoch: get_u64(buf, &mut pos)?,
        },
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown repl message tag {other:#04x}"),
            ))
        }
    };
    if pos != buf.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after repl message",
        ));
    }
    Ok(msg)
}
