//! Node role management: one handle that ties a database to its
//! replication role and implements **promotion** (DESIGN.md §17).
//!
//! A [`ReplNode`] is either a primary (runs a [`LogShipper`]) or a
//! replica (runs a [`Replayer`] and keeps its query server read-only).
//! Both roles share one durable [`EpochState`] chain loaded from the
//! node's data directory, so the epoch survives restarts and every
//! component — shipper stamps, replayer adoption, the write-path fence —
//! observes the same value.
//!
//! [`ReplNode::promote`] turns a replica into the new primary:
//!
//! 1. stop the replayer (its shutdown path flushes applied frames to a
//!    durable watermark, so nothing already acked upstream is lost);
//! 2. fsync the database, then **bump and persist** a new epoch based at
//!    the node's latest commit timestamp — the fork point every other
//!    node will be measured against;
//! 3. hold the new epoch on the write path ([`aion::Aion::set_held_epoch`])
//!    and flip the shared `read_only` flag so the query server starts
//!    accepting writes;
//! 4. start shipping the local log under the new epoch;
//! 5. best-effort **fence probe**: one `Hello` at the new epoch to the
//!    old primary's replication port. If the old primary is still alive
//!    (partition, not crash), receiving the higher epoch fences its
//!    write path immediately — direct writes there fail with
//!    [`lpg::GraphError::Fenced`] instead of splitting the brain. If it
//!    is truly down the probe fails silently; the old primary learns
//!    the epoch from the first handshake after it rejoins instead.

use crate::epoch::{EpochRecord, EpochState};
use crate::replayer::{Replayer, ReplayerConfig};
use crate::shipper::{LogShipper, ShipperConfig};
use crate::wire::{encode_msg, ReplMsg};
use aion::Aion;
use aion_server::protocol::write_frame;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which side of replication a [`ReplNode`] currently plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeRole {
    /// Ships its log; accepts direct writes.
    Primary,
    /// Replays the primary's log; serves reads only.
    Replica,
}

/// Construction parameters shared by both roles.
#[derive(Clone, Debug)]
pub struct ReplNodeConfig {
    /// Shipper tunables (used on promotion even for a replica).
    pub shipper: ShipperConfig,
    /// Budget for the post-promotion fence probe connection.
    pub probe_timeout: Duration,
}

impl Default for ReplNodeConfig {
    fn default() -> ReplNodeConfig {
        ReplNodeConfig {
            shipper: ShipperConfig::default(),
            probe_timeout: Duration::from_millis(500),
        }
    }
}

/// A database plus its replication role and durable epoch chain.
pub struct ReplNode {
    db: Arc<Aion>,
    epochs: Arc<EpochState>,
    cfg: ReplNodeConfig,
    role: NodeRole,
    read_only: Arc<AtomicBool>,
    shipper: Option<LogShipper>,
    replayer: Option<Replayer>,
    /// The primary this node replicated from (fence-probe target after
    /// promotion).
    upstream: Option<SocketAddr>,
}

impl ReplNode {
    /// Starts `db` as a primary: loads the epoch chain persisted under
    /// `dir` (the node's data directory, through the same `vfs` as the
    /// database), holds it on the write path, and ships the log.
    pub fn new_primary(
        db: Arc<Aion>,
        vfs: vfs::VfsRef,
        dir: &std::path::Path,
        cfg: ReplNodeConfig,
    ) -> io::Result<ReplNode> {
        let epochs = EpochState::load(vfs, dir);
        db.set_held_epoch(epochs.current().epoch);
        let shipper = LogShipper::start_with(db.clone(), cfg.shipper.clone(), epochs.clone())?;
        Ok(ReplNode {
            db,
            epochs,
            cfg,
            role: NodeRole::Primary,
            read_only: Arc::new(AtomicBool::new(false)),
            shipper: Some(shipper),
            replayer: None,
            upstream: None,
        })
    }

    /// Starts `db` as a replica replaying from `replay.primary`.
    /// `read_only` is the flag the node's query server consults per
    /// request — promotion flips it to `false`; share the same `Arc`
    /// with [`aion_server::Server`].
    pub fn new_replica(
        db: Arc<Aion>,
        replay: ReplayerConfig,
        cfg: ReplNodeConfig,
        read_only: Arc<AtomicBool>,
    ) -> ReplNode {
        let epochs = EpochState::load(replay.vfs.clone(), &replay.dir);
        let upstream = Some(replay.primary);
        read_only.store(true, Ordering::Release);
        let replayer = Replayer::start_with(db.clone(), replay, epochs.clone());
        ReplNode {
            db,
            epochs,
            cfg,
            role: NodeRole::Replica,
            read_only,
            shipper: None,
            replayer: None,
            upstream,
        }
        .with_replayer(replayer)
    }

    fn with_replayer(mut self, replayer: Replayer) -> ReplNode {
        self.replayer = Some(replayer);
        self
    }

    /// The node's current role.
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// The shared epoch chain.
    pub fn epochs(&self) -> Arc<EpochState> {
        self.epochs.clone()
    }

    /// The shared read-only flag (wire it into the query server).
    pub fn read_only_flag(&self) -> Arc<AtomicBool> {
        self.read_only.clone()
    }

    /// The running replayer, while this node is a replica.
    pub fn replayer(&self) -> Option<&Replayer> {
        self.replayer.as_ref()
    }

    /// The running shipper, while this node is a primary.
    pub fn shipper(&self) -> Option<&LogShipper> {
        self.shipper.as_ref()
    }

    /// The replication address replicas connect to (primaries only).
    pub fn shipper_addr(&self) -> Option<SocketAddr> {
        self.shipper.as_ref().map(LogShipper::addr)
    }

    /// Promotes this replica to primary; see the module docs for the
    /// exact sequence. Returns the new epoch record. Errors leave the
    /// node a (stopped-replay) replica: the caller may retry.
    pub fn promote(&mut self) -> io::Result<EpochRecord> {
        if self.role == NodeRole::Primary {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "node is already the primary",
            ));
        }
        // Drain: the replayer's shutdown path makes applied frames
        // durable (sync + watermark) before the thread exits.
        if let Some(mut replayer) = self.replayer.take() {
            replayer.shutdown();
        }
        self.db
            .sync()
            .map_err(|e| io::Error::other(e.to_string()))?;
        // Persisted *before* the role flips anywhere: a crash after this
        // point recovers as the epoch-N primary-elect, never as a stale
        // replica that might ack the old timeline.
        let record = self.epochs.bump(self.db.latest_ts())?;
        self.db.set_held_epoch(record.epoch);
        let shipper = LogShipper::start_with(
            self.db.clone(),
            self.cfg.shipper.clone(),
            self.epochs.clone(),
        )?;
        self.shipper = Some(shipper);
        self.role = NodeRole::Primary;
        self.read_only.store(false, Ordering::Release);
        // Best-effort fence probe (see module docs): failure means the
        // old primary is unreachable, which is exactly when it cannot
        // accept writes anyway.
        if let Some(upstream) = self.upstream.take() {
            let _ = fence_probe(upstream, record.epoch, self.cfg.probe_timeout);
        }
        Ok(record)
    }

    /// Stops whichever engine is running (shipper or replayer).
    pub fn shutdown(&mut self) {
        if let Some(mut replayer) = self.replayer.take() {
            replayer.shutdown();
        }
        if let Some(mut shipper) = self.shipper.take() {
            shipper.shutdown();
        }
    }
}

impl Drop for ReplNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One `Hello` at `epoch` to `target`'s replication port. The receiving
/// shipper folds the epoch into its fence state before answering, so
/// delivery alone is enough — the reply is not awaited.
fn fence_probe(target: SocketAddr, epoch: u64, timeout: Duration) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&target, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(
        &mut stream,
        &encode_msg(&ReplMsg::Hello {
            start_offset: 0,
            latest_ts: 0,
            epoch,
        }),
    )?;
    // Give the peer a beat to read the frame before the socket drops.
    std::thread::sleep(Duration::from_millis(20));
    Ok(())
}
