//! The durable replication epoch: a monotonically increasing role
//! counter persisted next to the replay watermark (DESIGN.md §17).
//!
//! Every promotion bumps the epoch; every shipped frame, handshake, and
//! heartbeat is stamped with the sender's current epoch, and a node only
//! accepts direct writes while it holds the highest epoch it has ever
//! seen. The on-disk record is an **append-only chain** of
//! `(epoch, base_ts)` entries rather than a single slot: a primary
//! answering a handshake from a node that is several epochs behind must
//! be able to compute the *fork point* of that node's epoch — the commit
//! timestamp at which the first newer epoch began — so the rejoiner can
//! quarantine exactly its divergent suffix and nothing more.
//!
//! File format (`repl.epoch`): N × 24-byte records, each
//! `u64 epoch, u64 base_ts, u64 fnv64(first 16 bytes)`. Records are
//! appended with `sync_data` after each write; a torn tail (crash
//! mid-append) fails its checksum and is ignored, which can only lose
//! the *newest* record — safe, because adopting or bumping an epoch is
//! always re-derivable from the cluster (the next handshake re-delivers
//! it). Epochs in the chain are strictly increasing; a record that
//! violates that is treated as corruption and the chain is cut there.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use vfs::{fnv64, VfsRef};

/// File name of the epoch chain inside a node's data directory.
pub const EPOCH_FILE: &str = "repl.epoch";

const RECORD_LEN: usize = 24;

/// One entry of the epoch chain: an epoch and the commit timestamp at
/// which it began (the promoted node's `latest_ts` at promotion).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpochRecord {
    /// The epoch number (strictly increasing along the chain; 0 is the
    /// implicit "never promoted" epoch and is not stored).
    pub epoch: u64,
    /// Latest commit timestamp on the promoted node when this epoch
    /// began. Commits with `ts > base_ts` belong to this epoch or later.
    pub base_ts: u64,
}

impl EpochRecord {
    fn encode(&self) -> [u8; RECORD_LEN] {
        let mut rec = [0u8; RECORD_LEN];
        rec[..8].copy_from_slice(&self.epoch.to_le_bytes());
        rec[8..16].copy_from_slice(&self.base_ts.to_le_bytes());
        let sum = fnv64(&rec[..16]);
        rec[16..].copy_from_slice(&sum.to_le_bytes());
        rec
    }

    fn decode(rec: &[u8]) -> Option<EpochRecord> {
        let body: &[u8; RECORD_LEN] = rec.try_into().ok()?;
        let sum = u64::from_le_bytes([
            body[16], body[17], body[18], body[19], body[20], body[21], body[22], body[23],
        ]);
        if fnv64(&body[..16]) != sum {
            return None;
        }
        Some(EpochRecord {
            epoch: u64::from_le_bytes([
                body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
            ]),
            base_ts: u64::from_le_bytes([
                body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
            ]),
        })
    }
}

/// Persists the epoch chain at a fixed path through the VFS seam.
pub struct EpochStore {
    vfs: VfsRef,
    path: PathBuf,
}

impl EpochStore {
    /// A store writing `dir/repl.epoch` through `vfs`.
    pub fn new(vfs: VfsRef, dir: &Path) -> EpochStore {
        EpochStore {
            vfs,
            path: dir.join(EPOCH_FILE),
        }
    }

    /// The backing file path (diagnostics, tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the chain, stopping at the first torn, corrupt, or
    /// non-monotone record (everything after it is untrustworthy). An
    /// absent file is the empty chain — epoch 0, never promoted.
    pub fn load(&self) -> Vec<EpochRecord> {
        let Ok(bytes) = self.vfs.read(&self.path) else {
            return Vec::new();
        };
        let mut chain = Vec::new();
        let mut last_epoch = 0u64;
        for rec in bytes.chunks(RECORD_LEN) {
            let Some(record) = EpochRecord::decode(rec) else {
                break;
            };
            if record.epoch <= last_epoch {
                break;
            }
            last_epoch = record.epoch;
            chain.push(record);
        }
        chain
    }

    /// Appends one record and fsyncs. Called *before* the epoch takes
    /// effect in memory, so an acked promotion is never forgotten by a
    /// crash.
    pub fn append(&self, record: EpochRecord, index: usize) -> io::Result<()> {
        let file = self.vfs.open(&self.path)?;
        let offset = (index as u64) * (RECORD_LEN as u64);
        file.write_all_at(&record.encode(), offset)?;
        file.sync_data()
    }
}

/// Shared, thread-safe view of a node's epoch chain, optionally backed
/// by an [`EpochStore`]. One instance is threaded through the shipper
/// (stamps outgoing messages), the replayer (adopts newer epochs), and
/// the promotion path (bumps).
pub struct EpochState {
    chain: Mutex<Vec<EpochRecord>>,
    store: Option<EpochStore>,
    gauge: Arc<obs::Gauge>,
}

impl EpochState {
    /// Loads (or initializes empty) the chain persisted under `dir`.
    pub fn load(vfs: VfsRef, dir: &Path) -> Arc<EpochState> {
        let store = EpochStore::new(vfs, dir);
        let chain = store.load();
        let state = EpochState {
            chain: Mutex::new(chain),
            store: Some(store),
            gauge: obs::gauge("repl.epoch"),
        };
        state.publish_gauge();
        Arc::new(state)
    }

    /// A volatile chain with no backing file (tests, seed deployments
    /// that never promote).
    pub fn in_memory() -> Arc<EpochState> {
        Arc::new(EpochState {
            chain: Mutex::new(Vec::new()),
            store: None,
            gauge: obs::gauge("repl.epoch"),
        })
    }

    fn lock_chain(&self) -> std::sync::MutexGuard<'_, Vec<EpochRecord>> {
        match self.chain.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn publish_gauge(&self) {
        let epoch = self.current().epoch;
        self.gauge.set(i64::try_from(epoch).unwrap_or(i64::MAX));
    }

    /// The newest record of the chain; `(0, 0)` when the node was never
    /// promoted and never adopted a promotion.
    pub fn current(&self) -> EpochRecord {
        self.lock_chain().last().copied().unwrap_or(EpochRecord {
            epoch: 0,
            base_ts: 0,
        })
    }

    /// The fork point for a peer still on `old_epoch`: the base
    /// timestamp of the first chain record newer than it. Commits with
    /// `ts > fork_ts` on that peer never shipped under any epoch this
    /// node recognizes and must be quarantined. `None` when no newer
    /// epoch exists (the peer is current).
    pub fn fork_ts_for(&self, old_epoch: u64) -> Option<u64> {
        self.lock_chain()
            .iter()
            .find(|r| r.epoch > old_epoch)
            .map(|r| r.base_ts)
    }

    /// Adopts a record learned from the cluster (a handshake from a
    /// newer primary). Appends and persists only if it is actually newer
    /// than the chain head; stale or duplicate records are ignored.
    pub fn adopt(&self, record: EpochRecord) -> io::Result<()> {
        let mut chain = self.lock_chain();
        let head = chain.last().map(|r| r.epoch).unwrap_or(0);
        if record.epoch <= head {
            return Ok(());
        }
        if let Some(store) = &self.store {
            store.append(record, chain.len())?;
        }
        chain.push(record);
        drop(chain);
        self.publish_gauge();
        Ok(())
    }

    /// Bumps to a brand-new epoch based at `base_ts` (promotion).
    /// Persists before returning, so the promotion survives a crash.
    pub fn bump(&self, base_ts: u64) -> io::Result<EpochRecord> {
        let mut chain = self.lock_chain();
        let head = chain.last().map(|r| r.epoch).unwrap_or(0);
        let record = EpochRecord {
            epoch: head + 1,
            base_ts,
        };
        if let Some(store) = &self.store {
            store.append(record, chain.len())?;
        }
        chain.push(record);
        drop(chain);
        self.publish_gauge();
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_roundtrips_through_disk() {
        let dir = tempfile::tempdir().unwrap();
        let state = EpochState::load(VfsRef::std(), dir.path());
        assert_eq!(
            state.current(),
            EpochRecord {
                epoch: 0,
                base_ts: 0
            }
        );
        let e1 = state.bump(10).unwrap();
        assert_eq!(
            e1,
            EpochRecord {
                epoch: 1,
                base_ts: 10
            }
        );
        let e2 = state.bump(25).unwrap();
        assert_eq!(e2.epoch, 2);
        drop(state);
        let reloaded = EpochState::load(VfsRef::std(), dir.path());
        assert_eq!(
            reloaded.current(),
            EpochRecord {
                epoch: 2,
                base_ts: 25
            }
        );
        // Fork points: a peer on epoch 0 forked when epoch 1 began; a
        // peer on epoch 1 forked when epoch 2 began; epoch 2 is current.
        assert_eq!(reloaded.fork_ts_for(0), Some(10));
        assert_eq!(reloaded.fork_ts_for(1), Some(25));
        assert_eq!(reloaded.fork_ts_for(2), None);
    }

    #[test]
    fn adopt_ignores_stale_and_persists_newer() {
        let dir = tempfile::tempdir().unwrap();
        let state = EpochState::load(VfsRef::std(), dir.path());
        state
            .adopt(EpochRecord {
                epoch: 3,
                base_ts: 40,
            })
            .unwrap();
        // Stale and duplicate adoptions are no-ops.
        state
            .adopt(EpochRecord {
                epoch: 2,
                base_ts: 9,
            })
            .unwrap();
        state
            .adopt(EpochRecord {
                epoch: 3,
                base_ts: 999,
            })
            .unwrap();
        assert_eq!(
            state.current(),
            EpochRecord {
                epoch: 3,
                base_ts: 40
            }
        );
        let reloaded = EpochState::load(VfsRef::std(), dir.path());
        assert_eq!(
            reloaded.current(),
            EpochRecord {
                epoch: 3,
                base_ts: 40
            }
        );
    }

    #[test]
    fn torn_tail_is_cut_not_fatal() {
        let dir = tempfile::tempdir().unwrap();
        let state = EpochState::load(VfsRef::std(), dir.path());
        state.bump(5).unwrap();
        state.bump(11).unwrap();
        // Corrupt the second record's checksum byte on disk.
        let vfs = VfsRef::std();
        let path = dir.path().join(EPOCH_FILE);
        let mut bytes = vfs.read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        vfs.write(&path, &bytes).unwrap();
        let reloaded = EpochState::load(VfsRef::std(), dir.path());
        assert_eq!(
            reloaded.current(),
            EpochRecord {
                epoch: 1,
                base_ts: 5
            }
        );
        // A short (torn) tail is likewise cut.
        bytes.truncate(RECORD_LEN + 7);
        vfs.write(&path, &bytes).unwrap();
        let reloaded = EpochState::load(VfsRef::std(), dir.path());
        assert_eq!(reloaded.current().epoch, 1);
    }

    #[test]
    fn in_memory_chain_never_touches_disk() {
        let state = EpochState::in_memory();
        assert_eq!(state.current().epoch, 0);
        state.bump(0).unwrap();
        assert_eq!(state.current().epoch, 1);
    }
}
