//! Page primitives: the page size, page identifiers and heap page buffers.

use std::fmt;

/// Page size in bytes. Neo4j's page cache uses 8 KiB pages; we match it.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within one [`crate::PageStore`] file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The meta page.
    pub const META: PageId = PageId(0);

    /// Sentinel meaning "no page" (used for free-list and tree-pointer
    /// termination).
    pub const NULL: PageId = PageId(u64::MAX);

    /// Byte offset of this page within the file.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }

    /// `true` for the NULL sentinel.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PageId(NULL)")
        } else {
            write!(f, "PageId({})", self.0)
        }
    }
}

/// A heap-allocated page buffer, always exactly [`PAGE_SIZE`] bytes.
pub struct PageBuf(Box<[u8; PAGE_SIZE]>);

impl PageBuf {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        PageBuf(Box::new([0u8; PAGE_SIZE]))
    }

    /// Immutable byte view.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Mutable byte view.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }

    /// Reads a little-endian `u64` at `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.0[off..off + 8]);
        u64::from_le_bytes(a)
    }

    /// Writes a little-endian `u64` at `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.0[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u16` at `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.0[off..off + 2]);
        u16::from_le_bytes(a)
    }

    /// Writes a little-endian `u16` at `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.0[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }
}

impl Clone for PageBuf {
    fn clone(&self) -> Self {
        PageBuf(self.0.clone())
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf({} bytes)", PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * 8192);
        assert!(PageId::NULL.is_null());
        assert!(!PageId(1).is_null());
    }

    #[test]
    fn buf_io() {
        let mut b = PageBuf::zeroed();
        assert_eq!(b.read_u64(0), 0);
        b.write_u64(16, 0xDEAD_BEEF);
        b.write_u16(4, 777);
        assert_eq!(b.read_u64(16), 0xDEAD_BEEF);
        assert_eq!(b.read_u16(4), 777);
        let c = b.clone();
        assert_eq!(c.read_u64(16), 0xDEAD_BEEF);
    }
}
