//! A classic intrusive-list LRU cache for pages.
//!
//! Entries live in a slab; a doubly-linked list threaded through the slab
//! maintains recency so both hits and evictions are `O(1)`. Dirty pages are
//! handed back to the caller on eviction for write-back.

use crate::page::{PageBuf, PageId};
use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Entry {
    page: PageId,
    buf: PageBuf,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Cache hit/miss/eviction counters, exposed for the benchmark harness.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

/// Fixed-capacity LRU page cache.
pub struct LruCache {
    map: HashMap<PageId, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    stats: CacheStats,
}

impl LruCache {
    /// A cache holding at most `capacity` pages (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Immutable access to a resident page; counts a hit or miss.
    pub fn get(&mut self, page: PageId) -> Option<&PageBuf> {
        if let Some(&i) = self.map.get(&page) {
            self.stats.hits += 1;
            self.touch(i);
            Some(&self.slab[i].buf)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Mutable access to a resident page, marking it dirty.
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut PageBuf> {
        if let Some(&i) = self.map.get(&page) {
            self.stats.hits += 1;
            self.touch(i);
            self.slab[i].dirty = true;
            Some(&mut self.slab[i].buf)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts (or replaces) a page. Returns an evicted `(page, buf)` pair if
    /// a *dirty* victim had to make room; clean victims are dropped silently.
    pub fn insert(&mut self, page: PageId, buf: PageBuf, dirty: bool) -> Option<(PageId, PageBuf)> {
        if let Some(&i) = self.map.get(&page) {
            self.slab[i].buf = buf;
            self.slab[i].dirty |= dirty;
            self.touch(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let e = &mut self.slab[victim];
            self.map.remove(&e.page);
            self.stats.evictions += 1;
            if e.dirty {
                evicted = Some((e.page, std::mem::take(&mut e.buf)));
            }
            self.free.push(victim);
        }
        let i = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                page,
                buf,
                dirty,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                page,
                buf,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(page, i);
        self.push_front(i);
        evicted
    }

    /// Removes a page, returning its buffer and dirtiness.
    pub fn remove(&mut self, page: PageId) -> Option<(PageBuf, bool)> {
        let i = self.map.remove(&page)?;
        self.unlink(i);
        self.free.push(i);
        let e = &mut self.slab[i];
        Some((std::mem::take(&mut e.buf), e.dirty))
    }

    /// Snapshots every dirty page for a full flush. Dirty bits are left
    /// set; the caller clears each with [`Self::clear_dirty`] only after
    /// its write-back succeeds, so a failed flush can be retried without
    /// losing pages.
    pub fn dirty_pages(&self) -> Vec<(PageId, PageBuf)> {
        let mut out = Vec::new();
        for e in &self.slab {
            if e.dirty && self.map.contains_key(&e.page) {
                out.push((e.page, e.buf.clone()));
            }
        }
        out
    }

    /// Clears a page's dirty bit after a successful write-back.
    pub fn clear_dirty(&mut self, page: PageId) {
        if let Some(&i) = self.map.get(&page) {
            self.slab[i].dirty = false;
        }
    }

    /// Page ids currently resident, most recent first (for tests).
    pub fn resident(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slab[i].page);
            i = self.slab[i].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(tag: u64) -> PageBuf {
        let mut b = PageBuf::zeroed();
        b.write_u64(0, tag);
        b
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(2);
        assert!(c.insert(PageId(1), buf(1), false).is_none());
        assert!(c.insert(PageId(2), buf(2), false).is_none());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(PageId(1)).is_some());
        assert!(c.insert(PageId(3), buf(3), false).is_none()); // 2 evicted, clean
        assert_eq!(c.resident(), vec![PageId(3), PageId(1)]);
        assert!(c.get(PageId(2)).is_none());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_returns_buffer() {
        let mut c = LruCache::new(1);
        c.insert(PageId(1), buf(7), true);
        let ev = c.insert(PageId(2), buf(8), false);
        let (pid, b) = ev.expect("dirty page must be handed back");
        assert_eq!(pid, PageId(1));
        assert_eq!(b.read_u64(0), 7);
    }

    #[test]
    fn get_mut_marks_dirty() {
        let mut c = LruCache::new(2);
        c.insert(PageId(1), buf(1), false);
        c.get_mut(PageId(1)).unwrap().write_u64(0, 99);
        let dirty = c.dirty_pages();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].1.read_u64(0), 99);
        // dirty_pages does not clear the bit; clear_dirty does.
        assert_eq!(c.dirty_pages().len(), 1);
        c.clear_dirty(PageId(1));
        assert!(c.dirty_pages().is_empty());
    }

    #[test]
    fn replace_existing_keeps_len() {
        let mut c = LruCache::new(4);
        c.insert(PageId(1), buf(1), false);
        c.insert(PageId(1), buf(2), false);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(PageId(1)).unwrap().read_u64(0), 2);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCache::new(2);
        c.insert(PageId(1), buf(1), true);
        let (b, dirty) = c.remove(PageId(1)).unwrap();
        assert!(dirty);
        assert_eq!(b.read_u64(0), 1);
        assert!(c.is_empty());
        c.insert(PageId(2), buf(2), false);
        assert_eq!(c.len(), 1);
        assert!(c.remove(PageId(9)).is_none());
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u64 {
            c.insert(PageId(i % 16), buf(i), i % 3 == 0);
            if i % 5 == 0 {
                c.get(PageId(i % 16));
            }
        }
        assert!(c.len() <= 8);
        let res = c.resident();
        assert_eq!(res.len(), c.len());
    }
}
