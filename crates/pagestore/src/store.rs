//! The paged file: allocation, free list, cached reads and write-back.
//!
//! All I/O goes through [`vfs::Vfs`], so the store runs unchanged on the
//! production `StdVfs` and on the fault-injecting `SimVfs`. Alongside the
//! page file the store maintains a **checksum sidecar** (`<file>.sums`),
//! rewritten atomically-by-footer at every [`PageStore::sync`]: it records
//! one FNV-1a checksum per page plus a footer checksum over the whole
//! sidecar, so `open_with_vfs(.., verify: true)` can tell a cleanly synced
//! file from one torn by a crash — a torn file fails verification and the
//! caller rebuilds it from its source of truth (the change log).

use crate::cache::{CacheStats, LruCache};
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::io;
use std::path::Path;
use std::sync::Arc;
use vfs::{VfsFile, VfsRef};

const MAGIC: u64 = 0x4149_4F4E_5047_5331; // "AIONPGS1"
const META_MAGIC_OFF: usize = 0;
const META_PAGE_COUNT_OFF: usize = 8;
const META_FREE_HEAD_OFF: usize = 16;
const META_ROOTS_OFF: usize = 24;
/// Number of u64 root slots available to clients on the meta page.
pub const ROOT_SLOTS: usize = 8;

/// Suffix of the checksum sidecar next to every page file.
pub const SUMS_SUFFIX: &str = "sums";

const SUMS_MAGIC: u64 = 0x4149_4F4E_5355_4D31; // "AIONSUM1"
const SUMS_HEADER: usize = 24; // magic + generation + count
const SUMS_FOOTER: usize = 8;

struct Inner {
    cache: LruCache,
    page_count: u64,
    free_head: PageId,
    roots: [u64; ROOT_SLOTS],
    meta_dirty: bool,
    /// FNV-1a checksum of each page as last written to the file.
    sums: Vec<u64>,
    /// Monotonic sync counter, persisted in the sidecar header.
    generation: u64,
}

/// Handles into the process-wide metrics registry, fetched once at open
/// so the hot path is a relaxed atomic op per event. All page stores in
/// the process aggregate into the same series.
struct Metrics {
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    cache_evictions: Arc<obs::Counter>,
    read_latency: Arc<obs::Histogram>,
    writeback_latency: Arc<obs::Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            cache_hits: obs::counter("pagestore.cache.hits"),
            cache_misses: obs::counter("pagestore.cache.misses"),
            cache_evictions: obs::counter("pagestore.cache.evictions"),
            read_latency: obs::histogram("pagestore.read.latency_ns"),
            writeback_latency: obs::histogram("pagestore.writeback.latency_ns"),
        }
    }
}

/// A file of [`PAGE_SIZE`] pages behind an LRU cache.
///
/// All access goes through closures ([`PageStore::read`] /
/// [`PageStore::write`]) so pages cannot escape the cache lock; this mirrors
/// the pin/unpin discipline of a real page cache with none of the lifetime
/// hazards.
pub struct PageStore {
    file: Box<dyn VfsFile>,
    sums_file: Box<dyn VfsFile>,
    inner: Mutex<Inner>,
    metrics: Metrics,
}

/// `load` guarantees residency, so a subsequent cache miss means the
/// cache itself misbehaved; surface it as an error, never a panic.
fn cache_miss_after_load(page: PageId) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("page {} missing from cache immediately after load", page.0),
    )
}

fn unclean(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("page store failed checksum verification ({detail}); rebuild required"),
    )
}

fn zero_page_sum() -> u64 {
    vfs::fnv64(&[0u8; PAGE_SIZE])
}

/// Parses a sidecar image, returning `(generation, per-page checksums)`.
fn decode_sidecar(bytes: &[u8]) -> io::Result<(u64, Vec<u64>)> {
    let le = |b: &[u8]| -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&b[..8]);
        u64::from_le_bytes(a)
    };
    if bytes.len() < SUMS_HEADER + SUMS_FOOTER {
        return Err(unclean("sidecar truncated"));
    }
    let body = &bytes[..bytes.len() - SUMS_FOOTER];
    if le(&bytes[bytes.len() - SUMS_FOOTER..]) != vfs::fnv64(body) {
        return Err(unclean("sidecar footer checksum mismatch"));
    }
    if le(&bytes[0..8]) != SUMS_MAGIC {
        return Err(unclean("sidecar bad magic"));
    }
    let generation = le(&bytes[8..16]);
    let count = le(&bytes[16..24]) as usize;
    if body.len() != SUMS_HEADER + count * 8 {
        return Err(unclean("sidecar count/length mismatch"));
    }
    let sums = (0..count)
        .map(|i| le(&body[SUMS_HEADER + i * 8..]))
        .collect();
    Ok((generation, sums))
}

fn encode_sidecar(generation: u64, sums: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SUMS_HEADER + sums.len() * 8 + SUMS_FOOTER);
    out.extend_from_slice(&SUMS_MAGIC.to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(sums.len() as u64).to_le_bytes());
    for s in sums {
        out.extend_from_slice(&s.to_le_bytes());
    }
    let footer = vfs::fnv64(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

impl PageStore {
    /// Opens (or creates) a page store at `path` with a cache of
    /// `cache_pages` pages, on the production file system and without
    /// checksum verification.
    pub fn open<P: AsRef<Path>>(path: P, cache_pages: usize) -> io::Result<PageStore> {
        PageStore::open_with_vfs(&VfsRef::std(), path.as_ref(), cache_pages, false)
    }

    /// Opens (or creates) a page store at `path` on `vfs`.
    ///
    /// With `verify` set, an existing non-empty file must match its
    /// checksum sidecar exactly — i.e. be the image of its most recent
    /// successful [`PageStore::sync`]. A missing, torn, or mismatching
    /// sidecar yields `InvalidData`, signalling an unclean shutdown; the
    /// caller is expected to delete the file (and its
    /// [`PageStore::sums_path`]) and rebuild from its source of truth.
    pub fn open_with_vfs(
        vfs: &VfsRef,
        path: &Path,
        cache_pages: usize,
        verify: bool,
    ) -> io::Result<PageStore> {
        let file = vfs.open(path)?;
        let len = file.len()?;
        let mut inner = Inner {
            cache: LruCache::new(cache_pages),
            page_count: 1,
            free_head: PageId::NULL,
            roots: [u64::MAX; ROOT_SLOTS],
            meta_dirty: true,
            sums: Vec::new(),
            generation: 0,
        };
        if len >= PAGE_SIZE as u64 {
            let mut meta = PageBuf::zeroed();
            file.read_exact_at(meta.bytes_mut().as_mut_slice(), 0)?;
            if meta.read_u64(META_MAGIC_OFF) != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an aion page store (bad magic)",
                ));
            }
            inner.page_count = meta.read_u64(META_PAGE_COUNT_OFF);
            inner.free_head = PageId(meta.read_u64(META_FREE_HEAD_OFF));
            for (i, slot) in inner.roots.iter_mut().enumerate() {
                *slot = meta.read_u64(META_ROOTS_OFF + i * 8);
            }
            inner.meta_dirty = false;
            // Checksum every page as it sits in the file now, so later
            // syncs write a sidecar covering pages this session never
            // touches. Pages past EOF (allocated, never flushed, file
            // hole) read back as zeros.
            let zero = zero_page_sum();
            let mut buf = PageBuf::zeroed();
            for pid in 0..inner.page_count {
                let off = pid * PAGE_SIZE as u64;
                if off + PAGE_SIZE as u64 <= len {
                    file.read_exact_at(buf.bytes_mut().as_mut_slice(), off)?;
                    inner.sums.push(vfs::fnv64(buf.bytes().as_slice()));
                } else {
                    inner.sums.push(zero);
                }
            }
            if verify {
                let side = vfs
                    .read(&vfs::sidecar_path(path, SUMS_SUFFIX))
                    .map_err(|_| unclean("sidecar missing or unreadable"))?;
                let (generation, expected) = decode_sidecar(&side)?;
                if expected.len() as u64 != inner.page_count {
                    return Err(unclean("sidecar page count differs from meta page"));
                }
                if expected != inner.sums {
                    return Err(unclean("page contents differ from last synced state"));
                }
                inner.generation = generation;
            }
        }
        let sums_file = vfs.open(&vfs::sidecar_path(path, SUMS_SUFFIX))?;
        Ok(PageStore {
            file,
            sums_file,
            inner: Mutex::new(inner),
            metrics: Metrics::new(),
        })
    }

    /// The checksum-sidecar path for a page store at `path`.
    pub fn sums_path(path: &Path) -> std::path::PathBuf {
        vfs::sidecar_path(path, SUMS_SUFFIX)
    }

    /// Total allocated pages, including the meta page and free pages.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().page_count
    }

    /// On-disk footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.lock().cache.stats()
    }

    /// Reads root slot `slot` from the meta page (`u64::MAX` when unset).
    pub fn root(&self, slot: usize) -> u64 {
        self.inner.lock().roots[slot]
    }

    /// Persists a root pointer in meta slot `slot`.
    pub fn set_root(&self, slot: usize, value: u64) {
        let mut g = self.inner.lock();
        g.roots[slot] = value;
        g.meta_dirty = true;
    }

    /// Writes a page image to the file and records its checksum.
    fn write_page(
        &self,
        inner: &mut Inner,
        pid: PageId,
        bytes: &[u8; PAGE_SIZE],
    ) -> io::Result<()> {
        self.file.write_all_at(bytes.as_slice(), pid.offset())?;
        let idx = pid.0 as usize;
        if inner.sums.len() <= idx {
            inner.sums.resize(idx + 1, zero_page_sum());
        }
        inner.sums[idx] = vfs::fnv64(bytes.as_slice());
        Ok(())
    }

    fn load(&self, inner: &mut Inner, page: PageId) -> io::Result<()> {
        if inner.cache.get(page).is_some() {
            self.metrics.cache_hits.inc();
            return Ok(());
        }
        self.metrics.cache_misses.inc();
        let mut buf = PageBuf::zeroed();
        {
            let _t = self.metrics.read_latency.start_timer();
            self.file
                .read_exact_at(buf.bytes_mut().as_mut_slice(), page.offset())?;
        }
        if let Some((pid, dirty)) = inner.cache.insert(page, buf, false) {
            self.metrics.cache_evictions.inc();
            let _t = self.metrics.writeback_latency.start_timer();
            if let Err(e) = self.write_page(inner, pid, dirty.bytes()) {
                // Write-back failed: the victim's buffer is the only copy
                // of its updates, so undo the load (the incoming page was
                // clean) and put the victim back, still dirty.
                inner.cache.remove(page);
                inner.cache.insert(pid, dirty, true);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Runs `f` over an immutable view of `page`.
    pub fn read<R>(&self, page: PageId, f: impl FnOnce(&PageBuf) -> R) -> io::Result<R> {
        debug_assert!(!page.is_null());
        let mut inner = self.inner.lock();
        self.load(&mut inner, page)?;
        match inner.cache.get(page) {
            Some(buf) => Ok(f(buf)),
            None => Err(cache_miss_after_load(page)),
        }
    }

    /// Runs `f` over a mutable view of `page`, marking it dirty.
    pub fn write<R>(&self, page: PageId, f: impl FnOnce(&mut PageBuf) -> R) -> io::Result<R> {
        debug_assert!(!page.is_null());
        let mut inner = self.inner.lock();
        self.load(&mut inner, page)?;
        match inner.cache.get_mut(page) {
            Some(buf) => Ok(f(buf)),
            None => Err(cache_miss_after_load(page)),
        }
    }

    /// Allocates a zeroed page, reusing the free list when possible.
    pub fn allocate(&self) -> io::Result<PageId> {
        let mut inner = self.inner.lock();
        let page = if !inner.free_head.is_null() {
            let head = inner.free_head;
            self.load(&mut inner, head)?;
            let next = match inner.cache.get(head) {
                Some(buf) => PageId(buf.read_u64(0)),
                None => return Err(cache_miss_after_load(head)),
            };
            inner.free_head = next;
            head
        } else {
            let p = PageId(inner.page_count);
            inner.page_count += 1;
            p
        };
        inner.meta_dirty = true;
        if let Some((pid, dirty)) = inner.cache.insert(page, PageBuf::zeroed(), true) {
            self.metrics.cache_evictions.inc();
            let _t = self.metrics.writeback_latency.start_timer();
            self.write_page(&mut inner, pid, dirty.bytes())?;
        }
        Ok(page)
    }

    /// Returns `page` to the free list.
    pub fn free(&self, page: PageId) -> io::Result<()> {
        debug_assert!(!page.is_null() && page != PageId::META);
        let mut inner = self.inner.lock();
        let old_head = inner.free_head;
        self.load(&mut inner, page)?;
        match inner.cache.get_mut(page) {
            Some(buf) => buf.write_u64(0, old_head.0),
            None => return Err(cache_miss_after_load(page)),
        }
        inner.free_head = page;
        inner.meta_dirty = true;
        Ok(())
    }

    /// Walks the free list, returning the pages on it in LIFO order. The
    /// walk is defensive — it stops (without error) at a pointer outside
    /// the file or once it has visited `page_count` pages, so a corrupt
    /// list terminates; callers detect corruption by checking the returned
    /// pages for duplicates or overlap with live data.
    pub fn free_list(&self) -> io::Result<Vec<PageId>> {
        let mut inner = self.inner.lock();
        let cap = inner.page_count as usize;
        let mut out = Vec::new();
        let mut cur = inner.free_head;
        while !cur.is_null() && out.len() < cap {
            if cur.0 >= inner.page_count {
                break;
            }
            self.load(&mut inner, cur)?;
            let next = match inner.cache.get(cur) {
                Some(buf) => PageId(buf.read_u64(0)),
                None => return Err(cache_miss_after_load(cur)),
            };
            out.push(cur);
            cur = next;
        }
        Ok(out)
    }

    /// Reconciles a set of reachable (live) pages against the free list:
    /// every allocated page other than the meta page must be exactly one of
    /// live or free. Returns a description of each discrepancy — duplicate
    /// free-list entries, pages both live and free, and leaked pages.
    pub fn reconcile_free_list(
        &self,
        reachable: &std::collections::BTreeSet<u64>,
    ) -> io::Result<Vec<String>> {
        let free = self.free_list()?;
        let mut problems = Vec::new();
        let mut free_set = std::collections::BTreeSet::new();
        for p in &free {
            if !free_set.insert(p.0) {
                problems.push(format!("page {} appears twice on the free list", p.0));
            }
            if reachable.contains(&p.0) {
                problems.push(format!("page {} is both live and on the free list", p.0));
            }
        }
        let leaked: Vec<u64> = (1..self.page_count())
            .filter(|p| !reachable.contains(p) && !free_set.contains(p))
            .collect();
        if !leaked.is_empty() {
            problems.push(format!(
                "{} page(s) neither reachable nor free (first: {})",
                leaked.len(),
                leaked[0]
            ));
        }
        Ok(problems)
    }

    fn flush_locked(&self, inner: &mut Inner) -> io::Result<()> {
        for (pid, buf) in inner.cache.dirty_pages() {
            let _t = self.metrics.writeback_latency.start_timer();
            // Grow the file lazily: write_all_at extends as needed. The
            // dirty bit clears only after the write succeeds, so a flush
            // that fails partway leaves the unwritten pages dirty and a
            // later flush retries them.
            self.write_page(inner, pid, buf.bytes())?;
            inner.cache.clear_dirty(pid);
        }
        if inner.meta_dirty {
            let mut meta = PageBuf::zeroed();
            meta.write_u64(META_MAGIC_OFF, MAGIC);
            meta.write_u64(META_PAGE_COUNT_OFF, inner.page_count);
            meta.write_u64(META_FREE_HEAD_OFF, inner.free_head.0);
            for (i, slot) in inner.roots.iter().enumerate() {
                meta.write_u64(META_ROOTS_OFF + i * 8, *slot);
            }
            self.write_page(inner, PageId::META, meta.bytes())?;
            inner.meta_dirty = false;
        }
        Ok(())
    }

    /// Writes every dirty page (and the meta page) back to the file.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    /// Flushes, fsyncs the page file, then rewrites and fsyncs the
    /// checksum sidecar. The sidecar's footer checksum makes it an atomic
    /// unit: if it verifies at open, the page file is exactly the image
    /// this sync made durable.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)?;
        self.file.sync_data()?;
        inner.generation += 1;
        let count = inner.page_count as usize;
        inner.sums.resize(count, zero_page_sum());
        let bytes = encode_sidecar(inner.generation, &inner.sums[..count]);
        self.sums_file.set_len(bytes.len() as u64)?;
        self.sums_file.write_all_at(&bytes, 0)?;
        self.sums_file.sync_data()
    }
}

impl Drop for PageStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn allocate_write_read_roundtrip() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 4).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        store.write(a, |p| p.write_u64(0, 111)).unwrap();
        store.write(b, |p| p.write_u64(0, 222)).unwrap();
        assert_eq!(store.read(a, |p| p.read_u64(0)).unwrap(), 111);
        assert_eq!(store.read(b, |p| p.read_u64(0)).unwrap(), 222);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("p.db");
        let page;
        {
            let store = PageStore::open(&path, 4).unwrap();
            page = store.allocate().unwrap();
            store.write(page, |p| p.write_u64(100, 0xABCD)).unwrap();
            store.set_root(0, page.0);
            store.sync().unwrap();
        }
        let store = PageStore::open(&path, 4).unwrap();
        assert_eq!(store.root(0), page.0);
        assert_eq!(store.read(page, |p| p.read_u64(100)).unwrap(), 0xABCD);
        assert_eq!(store.root(1), u64::MAX);
    }

    #[test]
    fn eviction_write_back_under_tiny_cache() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 2).unwrap();
        let pages: Vec<PageId> = (0..16).map(|_| store.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write(p, |b| b.write_u64(0, i as u64 * 7)).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(store.read(p, |b| b.read_u64(0)).unwrap(), i as u64 * 7);
        }
        assert!(store.cache_stats().evictions > 0);
    }

    #[test]
    fn free_list_reuse() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 4).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let count = store.page_count();
        store.free(a).unwrap();
        store.free(b).unwrap();
        let c = store.allocate().unwrap();
        let d = store.allocate().unwrap();
        // LIFO reuse, no growth.
        assert_eq!(c, b);
        assert_eq!(d, a);
        assert_eq!(store.page_count(), count);
        // Freed pages come back zeroed.
        assert_eq!(store.read(c, |p| p.read_u64(0)).unwrap(), 0);
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("p.db");
        let freed;
        {
            let store = PageStore::open(&path, 4).unwrap();
            let a = store.allocate().unwrap();
            let _b = store.allocate().unwrap();
            store.free(a).unwrap();
            freed = a;
            store.sync().unwrap();
        }
        let store = PageStore::open(&path, 4).unwrap();
        assert_eq!(store.allocate().unwrap(), freed);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.db");
        VfsRef::std()
            .write(&path, &vec![0x42u8; PAGE_SIZE])
            .unwrap();
        assert!(PageStore::open(&path, 4).is_err());
    }

    #[test]
    fn verify_accepts_synced_file_and_rejects_tampering() {
        let dir = tempdir().unwrap();
        let vfs = VfsRef::std();
        let path = dir.path().join("v.db");
        {
            let store = PageStore::open_with_vfs(&vfs, &path, 4, false).unwrap();
            let p = store.allocate().unwrap();
            store.write(p, |b| b.write_u64(0, 42)).unwrap();
            store.sync().unwrap();
        }
        // Clean reopen verifies.
        PageStore::open_with_vfs(&vfs, &path, 4, true).unwrap();
        // A byte flipped after the last sync is detected.
        let mut raw = vfs.read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        vfs.write(&path, &raw).unwrap();
        let err = PageStore::open_with_vfs(&vfs, &path, 4, true)
            .err()
            .unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Non-verifying open still works (legacy path).
        PageStore::open_with_vfs(&vfs, &path, 4, false).unwrap();
    }

    #[test]
    fn verify_rejects_unsynced_shutdown() {
        let dir = tempdir().unwrap();
        let vfs = VfsRef::std();
        let path = dir.path().join("u.db");
        {
            let store = PageStore::open_with_vfs(&vfs, &path, 4, false).unwrap();
            let p = store.allocate().unwrap();
            store.write(p, |b| b.write_u64(0, 7)).unwrap();
            store.sync().unwrap();
            // More writes after the sync: Drop flushes them to the file
            // but never syncs, so the sidecar no longer matches.
            store.write(p, |b| b.write_u64(0, 8)).unwrap();
        }
        let err = PageStore::open_with_vfs(&vfs, &path, 4, true)
            .err()
            .unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn verify_survives_pages_allocated_but_never_synced_before() {
        let dir = tempdir().unwrap();
        let vfs = VfsRef::std();
        let path = dir.path().join("w.db");
        {
            let store = PageStore::open_with_vfs(&vfs, &path, 4, false).unwrap();
            for _ in 0..8 {
                store.allocate().unwrap();
            }
            store.sync().unwrap();
        }
        let store = PageStore::open_with_vfs(&vfs, &path, 4, true).unwrap();
        assert_eq!(store.page_count(), 9);
    }
}
