//! The paged file: allocation, free list, cached reads and write-back.

use crate::cache::{CacheStats, LruCache};
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

const MAGIC: u64 = 0x4149_4F4E_5047_5331; // "AIONPGS1"
const META_MAGIC_OFF: usize = 0;
const META_PAGE_COUNT_OFF: usize = 8;
const META_FREE_HEAD_OFF: usize = 16;
const META_ROOTS_OFF: usize = 24;
/// Number of u64 root slots available to clients on the meta page.
pub const ROOT_SLOTS: usize = 8;

struct Inner {
    cache: LruCache,
    page_count: u64,
    free_head: PageId,
    roots: [u64; ROOT_SLOTS],
    meta_dirty: bool,
}

/// Handles into the process-wide metrics registry, fetched once at open
/// so the hot path is a relaxed atomic op per event. All page stores in
/// the process aggregate into the same series.
struct Metrics {
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    cache_evictions: Arc<obs::Counter>,
    read_latency: Arc<obs::Histogram>,
    writeback_latency: Arc<obs::Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            cache_hits: obs::counter("pagestore.cache.hits"),
            cache_misses: obs::counter("pagestore.cache.misses"),
            cache_evictions: obs::counter("pagestore.cache.evictions"),
            read_latency: obs::histogram("pagestore.read.latency_ns"),
            writeback_latency: obs::histogram("pagestore.writeback.latency_ns"),
        }
    }
}

/// A file of [`PAGE_SIZE`] pages behind an LRU cache.
///
/// All access goes through closures ([`PageStore::read`] /
/// [`PageStore::write`]) so pages cannot escape the cache lock; this mirrors
/// the pin/unpin discipline of a real page cache with none of the lifetime
/// hazards.
pub struct PageStore {
    file: File,
    inner: Mutex<Inner>,
    metrics: Metrics,
}

/// `load` guarantees residency, so a subsequent cache miss means the
/// cache itself misbehaved; surface it as an error, never a panic.
fn cache_miss_after_load(page: PageId) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("page {} missing from cache immediately after load", page.0),
    )
}

impl PageStore {
    /// Opens (or creates) a page store at `path` with a cache of
    /// `cache_pages` pages.
    pub fn open<P: AsRef<Path>>(path: P, cache_pages: usize) -> io::Result<PageStore> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut inner = Inner {
            cache: LruCache::new(cache_pages),
            page_count: 1,
            free_head: PageId::NULL,
            roots: [u64::MAX; ROOT_SLOTS],
            meta_dirty: true,
        };
        if len >= PAGE_SIZE as u64 {
            let mut meta = PageBuf::zeroed();
            file.read_exact_at(meta.bytes_mut().as_mut_slice(), 0)?;
            if meta.read_u64(META_MAGIC_OFF) != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not an aion page store (bad magic)",
                ));
            }
            inner.page_count = meta.read_u64(META_PAGE_COUNT_OFF);
            inner.free_head = PageId(meta.read_u64(META_FREE_HEAD_OFF));
            for (i, slot) in inner.roots.iter_mut().enumerate() {
                *slot = meta.read_u64(META_ROOTS_OFF + i * 8);
            }
            inner.meta_dirty = false;
        }
        Ok(PageStore {
            file,
            inner: Mutex::new(inner),
            metrics: Metrics::new(),
        })
    }

    /// Total allocated pages, including the meta page and free pages.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().page_count
    }

    /// On-disk footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.lock().cache.stats()
    }

    /// Reads root slot `slot` from the meta page (`u64::MAX` when unset).
    pub fn root(&self, slot: usize) -> u64 {
        self.inner.lock().roots[slot]
    }

    /// Persists a root pointer in meta slot `slot`.
    pub fn set_root(&self, slot: usize, value: u64) {
        let mut g = self.inner.lock();
        g.roots[slot] = value;
        g.meta_dirty = true;
    }

    fn load(&self, inner: &mut Inner, page: PageId) -> io::Result<()> {
        if inner.cache.get(page).is_some() {
            self.metrics.cache_hits.inc();
            return Ok(());
        }
        self.metrics.cache_misses.inc();
        let mut buf = PageBuf::zeroed();
        {
            let _t = self.metrics.read_latency.start_timer();
            self.file
                .read_exact_at(buf.bytes_mut().as_mut_slice(), page.offset())?;
        }
        if let Some((pid, dirty)) = inner.cache.insert(page, buf, false) {
            self.metrics.cache_evictions.inc();
            let _t = self.metrics.writeback_latency.start_timer();
            self.file
                .write_all_at(dirty.bytes().as_slice(), pid.offset())?;
        }
        Ok(())
    }

    /// Runs `f` over an immutable view of `page`.
    pub fn read<R>(&self, page: PageId, f: impl FnOnce(&PageBuf) -> R) -> io::Result<R> {
        debug_assert!(!page.is_null());
        let mut inner = self.inner.lock();
        self.load(&mut inner, page)?;
        match inner.cache.get(page) {
            Some(buf) => Ok(f(buf)),
            None => Err(cache_miss_after_load(page)),
        }
    }

    /// Runs `f` over a mutable view of `page`, marking it dirty.
    pub fn write<R>(&self, page: PageId, f: impl FnOnce(&mut PageBuf) -> R) -> io::Result<R> {
        debug_assert!(!page.is_null());
        let mut inner = self.inner.lock();
        self.load(&mut inner, page)?;
        match inner.cache.get_mut(page) {
            Some(buf) => Ok(f(buf)),
            None => Err(cache_miss_after_load(page)),
        }
    }

    /// Allocates a zeroed page, reusing the free list when possible.
    pub fn allocate(&self) -> io::Result<PageId> {
        let mut inner = self.inner.lock();
        let page = if !inner.free_head.is_null() {
            let head = inner.free_head;
            self.load(&mut inner, head)?;
            let next = match inner.cache.get(head) {
                Some(buf) => PageId(buf.read_u64(0)),
                None => return Err(cache_miss_after_load(head)),
            };
            inner.free_head = next;
            head
        } else {
            let p = PageId(inner.page_count);
            inner.page_count += 1;
            p
        };
        inner.meta_dirty = true;
        if let Some((pid, dirty)) = inner.cache.insert(page, PageBuf::zeroed(), true) {
            self.metrics.cache_evictions.inc();
            let _t = self.metrics.writeback_latency.start_timer();
            self.file
                .write_all_at(dirty.bytes().as_slice(), pid.offset())?;
        }
        Ok(page)
    }

    /// Returns `page` to the free list.
    pub fn free(&self, page: PageId) -> io::Result<()> {
        debug_assert!(!page.is_null() && page != PageId::META);
        let mut inner = self.inner.lock();
        let old_head = inner.free_head;
        self.load(&mut inner, page)?;
        match inner.cache.get_mut(page) {
            Some(buf) => buf.write_u64(0, old_head.0),
            None => return Err(cache_miss_after_load(page)),
        }
        inner.free_head = page;
        inner.meta_dirty = true;
        Ok(())
    }

    /// Walks the free list, returning the pages on it in LIFO order. The
    /// walk is defensive — it stops (without error) at a pointer outside
    /// the file or once it has visited `page_count` pages, so a corrupt
    /// list terminates; callers detect corruption by checking the returned
    /// pages for duplicates or overlap with live data.
    pub fn free_list(&self) -> io::Result<Vec<PageId>> {
        let mut inner = self.inner.lock();
        let cap = inner.page_count as usize;
        let mut out = Vec::new();
        let mut cur = inner.free_head;
        while !cur.is_null() && out.len() < cap {
            if cur.0 >= inner.page_count {
                break;
            }
            self.load(&mut inner, cur)?;
            let next = match inner.cache.get(cur) {
                Some(buf) => PageId(buf.read_u64(0)),
                None => return Err(cache_miss_after_load(cur)),
            };
            out.push(cur);
            cur = next;
        }
        Ok(out)
    }

    /// Reconciles a set of reachable (live) pages against the free list:
    /// every allocated page other than the meta page must be exactly one of
    /// live or free. Returns a description of each discrepancy — duplicate
    /// free-list entries, pages both live and free, and leaked pages.
    pub fn reconcile_free_list(
        &self,
        reachable: &std::collections::BTreeSet<u64>,
    ) -> io::Result<Vec<String>> {
        let free = self.free_list()?;
        let mut problems = Vec::new();
        let mut free_set = std::collections::BTreeSet::new();
        for p in &free {
            if !free_set.insert(p.0) {
                problems.push(format!("page {} appears twice on the free list", p.0));
            }
            if reachable.contains(&p.0) {
                problems.push(format!("page {} is both live and on the free list", p.0));
            }
        }
        let leaked: Vec<u64> = (1..self.page_count())
            .filter(|p| !reachable.contains(p) && !free_set.contains(p))
            .collect();
        if !leaked.is_empty() {
            problems.push(format!(
                "{} page(s) neither reachable nor free (first: {})",
                leaked.len(),
                leaked[0]
            ));
        }
        Ok(problems)
    }

    /// Writes every dirty page (and the meta page) back to the file.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        for (pid, buf) in inner.cache.take_dirty() {
            let _t = self.metrics.writeback_latency.start_timer();
            // Grow the file lazily: write_all_at extends as needed.
            self.file
                .write_all_at(buf.bytes().as_slice(), pid.offset())?;
        }
        if inner.meta_dirty {
            let mut meta = PageBuf::zeroed();
            meta.write_u64(META_MAGIC_OFF, MAGIC);
            meta.write_u64(META_PAGE_COUNT_OFF, inner.page_count);
            meta.write_u64(META_FREE_HEAD_OFF, inner.free_head.0);
            for (i, slot) in inner.roots.iter().enumerate() {
                meta.write_u64(META_ROOTS_OFF + i * 8, *slot);
            }
            self.file.write_all_at(meta.bytes().as_slice(), 0)?;
            inner.meta_dirty = false;
        }
        Ok(())
    }

    /// Flushes and fsyncs.
    pub fn sync(&self) -> io::Result<()> {
        self.flush()?;
        self.file.sync_data()
    }
}

impl Drop for PageStore {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn allocate_write_read_roundtrip() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 4).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        store.write(a, |p| p.write_u64(0, 111)).unwrap();
        store.write(b, |p| p.write_u64(0, 222)).unwrap();
        assert_eq!(store.read(a, |p| p.read_u64(0)).unwrap(), 111);
        assert_eq!(store.read(b, |p| p.read_u64(0)).unwrap(), 222);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("p.db");
        let page;
        {
            let store = PageStore::open(&path, 4).unwrap();
            page = store.allocate().unwrap();
            store.write(page, |p| p.write_u64(100, 0xABCD)).unwrap();
            store.set_root(0, page.0);
            store.sync().unwrap();
        }
        let store = PageStore::open(&path, 4).unwrap();
        assert_eq!(store.root(0), page.0);
        assert_eq!(store.read(page, |p| p.read_u64(100)).unwrap(), 0xABCD);
        assert_eq!(store.root(1), u64::MAX);
    }

    #[test]
    fn eviction_write_back_under_tiny_cache() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 2).unwrap();
        let pages: Vec<PageId> = (0..16).map(|_| store.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            store.write(p, |b| b.write_u64(0, i as u64 * 7)).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(store.read(p, |b| b.read_u64(0)).unwrap(), i as u64 * 7);
        }
        assert!(store.cache_stats().evictions > 0);
    }

    #[test]
    fn free_list_reuse() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(dir.path().join("p.db"), 4).unwrap();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let count = store.page_count();
        store.free(a).unwrap();
        store.free(b).unwrap();
        let c = store.allocate().unwrap();
        let d = store.allocate().unwrap();
        // LIFO reuse, no growth.
        assert_eq!(c, b);
        assert_eq!(d, a);
        assert_eq!(store.page_count(), count);
        // Freed pages come back zeroed.
        assert_eq!(store.read(c, |p| p.read_u64(0)).unwrap(), 0);
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("p.db");
        let freed;
        {
            let store = PageStore::open(&path, 4).unwrap();
            let a = store.allocate().unwrap();
            let _b = store.allocate().unwrap();
            store.free(a).unwrap();
            freed = a;
            store.sync().unwrap();
        }
        let store = PageStore::open(&path, 4).unwrap();
        assert_eq!(store.allocate().unwrap(), freed);
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.db");
        std::fs::write(&path, vec![0x42u8; PAGE_SIZE]).unwrap();
        assert!(PageStore::open(&path, 4).is_err());
    }
}
