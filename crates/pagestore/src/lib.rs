//! # aion-pagestore — file-backed pages with an LRU page cache
//!
//! Aion "back[s] its storage with Neo4j's B+Tree implementation … offering
//! sortedness, scalable accesses, out-of-core storage, and seamless
//! integration with the page cache" (Sec. 5). This crate is the Rust
//! substrate for that: a paged file ([`PageStore`]) fronted by a fixed-size
//! LRU page cache ([`cache::LruCache`]) with dirty tracking and write-back on
//! eviction.
//!
//! Layout:
//!
//! * page 0 is a meta page holding a magic number, the allocated page count,
//!   the free-list head and eight u64 slots the B+Tree layer uses to persist
//!   its root pointers;
//! * every other page is raw `PAGE_SIZE` bytes interpreted by the layer
//!   above;
//! * freed pages are chained into a free list (first 8 bytes = next free
//!   page) and reused before the file grows.

pub mod cache;
pub mod page;
pub mod store;

pub use cache::{CacheStats, LruCache};
pub use page::{PageBuf, PageId, PAGE_SIZE};
pub use store::PageStore;
