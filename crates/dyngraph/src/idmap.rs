//! Sparse → dense node-id translation (Sec. 5.2: "to compact sparse graphs
//! into a denser format, Aion uses a map to translate from a sparse domain
//! of node IDs `[0, V_s)` … to a dense domain `[0, V_d)` where all IDs refer
//! to valid nodes").

use lpg::NodeId;
use std::collections::HashMap;

/// Bidirectional sparse↔dense id mapping.
#[derive(Clone, Default, Debug)]
pub struct IdMap {
    to_dense: HashMap<NodeId, u32>,
    to_sparse: Vec<NodeId>,
}

impl IdMap {
    /// An empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dense slot count `V_d`.
    pub fn len(&self) -> usize {
        self.to_sparse.len()
    }

    /// `true` when no ids are mapped.
    pub fn is_empty(&self) -> bool {
        self.to_sparse.is_empty()
    }

    /// Maps `id`, allocating the next dense slot on first sight.
    pub fn get_or_insert(&mut self, id: NodeId) -> u32 {
        if let Some(&d) = self.to_dense.get(&id) {
            return d;
        }
        let d = u32::try_from(self.to_sparse.len()).expect("dense domain overflow");
        self.to_dense.insert(id, d);
        self.to_sparse.push(id);
        d
    }

    /// Dense id of `id`, if mapped.
    pub fn dense(&self, id: NodeId) -> Option<u32> {
        self.to_dense.get(&id).copied()
    }

    /// Sparse id of dense slot `d`.
    pub fn sparse(&self, d: u32) -> Option<NodeId> {
        self.to_sparse.get(d as usize).copied()
    }

    /// Iterates `(sparse, dense)` pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.to_sparse
            .iter()
            .enumerate()
            .map(|(d, &s)| (s, d as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_are_compact_and_stable() {
        let mut m = IdMap::new();
        let a = m.get_or_insert(NodeId::new(1_000));
        let b = m.get_or_insert(NodeId::new(5));
        let a2 = m.get_or_insert(NodeId::new(1_000));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.sparse(0), Some(NodeId::new(1_000)));
        assert_eq!(m.dense(NodeId::new(5)), Some(1));
        assert_eq!(m.dense(NodeId::new(6)), None);
        assert_eq!(m.sparse(9), None);
    }

    #[test]
    fn iter_in_dense_order() {
        let mut m = IdMap::new();
        for id in [9u64, 3, 7] {
            m.get_or_insert(NodeId::new(id));
        }
        let pairs: Vec<(u64, u32)> = m.iter().map(|(s, d)| (s.raw(), d)).collect();
        assert_eq!(pairs, vec![(9, 0), (3, 1), (7, 2)]);
    }
}
