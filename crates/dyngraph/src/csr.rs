//! Static CSR projections (the GDS-style "graph projection" of Sec. 5.1:
//! "Aion … allows the creation of static CSRs, known as graph projections,
//! to exploit the efficient parallel versions of the GDS library's
//! algorithms").
//!
//! The CSR is built over the dense node domain so algorithm state lives in
//! flat vectors.

use crate::graph::DynGraph;
use lpg::{Direction, PropertyValue, StrId};

/// A compressed-sparse-row projection of one direction of a [`DynGraph`].
#[derive(Clone, Debug)]
pub struct Csr {
    /// `offsets[d]..offsets[d+1]` indexes `targets` for dense node `d`.
    pub offsets: Vec<usize>,
    /// Flattened neighbour lists (dense ids).
    pub targets: Vec<u32>,
    /// Optional per-edge weights aligned with `targets`.
    pub weights: Option<Vec<f64>>,
    /// Whether each dense slot holds a live node.
    pub live: Vec<bool>,
}

impl Csr {
    /// Projects `g` in direction `dir` (`Both` concatenates out + in
    /// adjacency per node). When `weight_key` is given, edge weights are
    /// read from that relationship property (missing ⇒ 1.0).
    pub fn project(g: &DynGraph, dir: Direction, weight_key: Option<StrId>) -> Csr {
        let n = g.dense_len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut weights = weight_key.map(|_| Vec::new());
        let mut live = vec![false; n];
        offsets.push(0);
        for d in 0..n as u32 {
            if let Some(node) = g.node_dense(d) {
                live[d as usize] = true;
                let id = node.id;
                let mut push = |rid: lpg::RelId, outgoing: bool| {
                    let Some(rel) = g.rel(rid) else { return };
                    let other = if outgoing { rel.tgt } else { rel.src };
                    let Some(od) = g.dense(other) else { return };
                    targets.push(od);
                    if let (Some(w), Some(key)) = (weights.as_mut(), weight_key) {
                        let value = rel
                            .prop(key)
                            .and_then(PropertyValue::as_float)
                            .unwrap_or(1.0);
                        w.push(value);
                    }
                };
                if dir.includes_out() {
                    for rid in g.adj(id, Direction::Outgoing) {
                        push(*rid, true);
                    }
                }
                if dir.includes_in() {
                    for rid in g.adj(id, Direction::Incoming) {
                        push(*rid, false);
                    }
                }
            }
            offsets.push(targets.len());
        }
        Csr {
            offsets,
            targets,
            weights,
            live,
        }
    }

    /// Number of dense node slots.
    pub fn node_slots(&self) -> usize {
        self.live.len()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Total projected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The neighbours of dense node `d`.
    pub fn neighbours(&self, d: u32) -> &[u32] {
        &self.targets[self.offsets[d as usize]..self.offsets[d as usize + 1]]
    }

    /// Out-degree of dense node `d`.
    pub fn degree(&self, d: u32) -> usize {
        self.offsets[d as usize + 1] - self.offsets[d as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{NodeId, RelId, Update};

    fn build() -> DynGraph {
        let mut g = DynGraph::new();
        for i in 0..4 {
            g.apply(&Update::AddNode {
                id: NodeId::new(i * 10),
                labels: vec![],
                props: vec![],
            })
            .unwrap();
        }
        let edges = [(0u64, 0, 10), (1, 0, 20), (2, 10, 20), (3, 20, 30)];
        for (id, s, t) in edges {
            g.apply(&Update::AddRel {
                id: RelId::new(id),
                src: NodeId::new(s),
                tgt: NodeId::new(t),
                label: None,
                props: vec![(StrId::new(0), PropertyValue::Float(id as f64))],
            })
            .unwrap();
        }
        g
    }

    #[test]
    fn outgoing_projection() {
        let g = build();
        let csr = Csr::project(&g, Direction::Outgoing, None);
        assert_eq!(csr.node_slots(), 4);
        assert_eq!(csr.live_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        // Node 0 (dense 0) points at dense 1 and 2.
        let mut n0: Vec<u32> = csr.neighbours(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn both_direction_doubles_edges() {
        let g = build();
        let csr = Csr::project(&g, Direction::Both, None);
        assert_eq!(csr.edge_count(), 8);
    }

    #[test]
    fn weights_follow_property() {
        let g = build();
        let csr = Csr::project(&g, Direction::Outgoing, Some(StrId::new(0)));
        let w = csr.weights.as_ref().unwrap();
        assert_eq!(w.len(), 4);
        // Weight equals the rel id we stored as property.
        let d0 = csr.neighbours(0);
        assert_eq!(d0.len(), 2);
        assert!(w[..2].iter().all(|x| *x == 0.0 || *x == 1.0));
    }

    #[test]
    fn deleted_nodes_leave_dead_slots() {
        let mut g = build();
        g.apply(&Update::DeleteRel { id: RelId::new(3) }).unwrap();
        g.apply(&Update::DeleteNode {
            id: NodeId::new(30),
        })
        .unwrap();
        let csr = Csr::project(&g, Direction::Outgoing, None);
        assert_eq!(csr.node_slots(), 4);
        assert_eq!(csr.live_count(), 3);
        assert!(!csr.live[3]);
        assert_eq!(csr.edge_count(), 3);
    }
}
