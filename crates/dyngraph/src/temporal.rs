//! The temporal in-memory LPG (Sec. 5.2): "the node and relationship
//! vectors store a list of entity versions instead of a single object" and
//! "in- and out-neighbourhood vectors store all neighbourhood history for
//! each entity. Every graph modification is modeled as a record append at
//! the end of the respective adjacency lists", keeping data timestamp-
//! ordered for logarithmic-cost history access.

use crate::idmap::IdMap;
use lpg::{
    Direction, Graph, GraphError, Interval, Node, NodeId, RelId, Relationship, Result, Timestamp,
    Update, Version, TS_MAX,
};
use std::collections::HashMap;

/// One append-only adjacency event.
#[derive(Clone, Copy, PartialEq, Debug)]
struct AdjEvent {
    ts: Timestamp,
    rel: RelId,
    added: bool,
}

/// An in-memory temporal LPG fed by timestamp-ordered updates.
#[derive(Clone, Default, Debug)]
pub struct TemporalDynGraph {
    idmap: IdMap,
    nodes: Vec<Vec<Version<Node>>>,
    rels: Vec<Vec<Version<Relationship>>>,
    out_adj: Vec<Vec<AdjEvent>>,
    in_adj: Vec<Vec<AdjEvent>>,
    latest_ts: Timestamp,
    version_count: usize,
}

impl TemporalDynGraph {
    /// An empty temporal graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latest applied timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.latest_ts
    }

    /// Total entity versions stored.
    pub fn version_count(&self) -> usize {
        self.version_count
    }

    /// Applies one update at `ts`; updates must arrive in non-decreasing
    /// timestamp order.
    pub fn apply(&mut self, ts: Timestamp, op: &Update) -> Result<()> {
        if ts < self.latest_ts {
            return Err(GraphError::NonMonotonicCommit {
                attempted: ts,
                latest: self.latest_ts,
            });
        }
        self.apply_inner(ts, op)?;
        self.latest_ts = ts;
        Ok(())
    }

    fn apply_inner(&mut self, ts: Timestamp, op: &Update) -> Result<()> {
        match op {
            Update::AddNode { id, labels, props } => {
                let d = self.slot(*id);
                if alive(&self.nodes[d]) {
                    return Err(GraphError::NodeExists(*id));
                }
                self.nodes[d].push(Version::new(
                    ts,
                    TS_MAX,
                    Node::new(*id, labels.clone(), props.clone()),
                ));
                self.version_count += 1;
            }
            Update::DeleteNode { id } => {
                let d = self.idmap.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                if !alive(&self.nodes[d]) {
                    return Err(GraphError::NodeNotFound(*id));
                }
                if self.rels_at(*id, Direction::Both, ts).count() > 0 {
                    return Err(GraphError::NodeHasRelationships(*id));
                }
                close(&mut self.nodes[d], ts);
            }
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                let ds = self.require_alive(*src, *id)?;
                let dt = self.require_alive(*tgt, *id)?;
                let slot = id.index();
                if self.rels.len() <= slot {
                    self.rels.resize_with(slot + 1, Vec::new);
                }
                if alive(&self.rels[slot]) {
                    return Err(GraphError::RelExists(*id));
                }
                self.rels[slot].push(Version::new(
                    ts,
                    TS_MAX,
                    Relationship::new(*id, *src, *tgt, *label, props.clone()),
                ));
                self.version_count += 1;
                self.out_adj[ds].push(AdjEvent {
                    ts,
                    rel: *id,
                    added: true,
                });
                self.in_adj[dt].push(AdjEvent {
                    ts,
                    rel: *id,
                    added: true,
                });
            }
            Update::DeleteRel { id } => {
                let rel = self
                    .rel_at(*id, ts)
                    .ok_or(GraphError::RelNotFound(*id))?
                    .clone();
                close(&mut self.rels[id.index()], ts);
                let ds = self.idmap.dense(rel.src).expect("mapped") as usize;
                let dt = self.idmap.dense(rel.tgt).expect("mapped") as usize;
                self.out_adj[ds].push(AdjEvent {
                    ts,
                    rel: *id,
                    added: false,
                });
                self.in_adj[dt].push(AdjEvent {
                    ts,
                    rel: *id,
                    added: false,
                });
            }
            modify => {
                // Close the current version, apply, reopen — "a property or
                // label modification is a deletion followed by an insertion".
                match modify.entity() {
                    lpg::EntityId::Node(id) => {
                        let d = self.idmap.dense(id).ok_or(GraphError::NodeNotFound(id))? as usize;
                        let chain = &mut self.nodes[d];
                        let last = chain
                            .last_mut()
                            .filter(|v| v.valid.end == TS_MAX)
                            .ok_or(GraphError::NodeNotFound(id))?;
                        let mut node = last.data.clone();
                        let delta = lpg::EntityDelta::from_update(modify).expect("modify");
                        delta.apply_to_node(&mut node);
                        if last.valid.start == ts {
                            last.data = node; // same-transaction coalesce
                        } else {
                            last.valid.end = ts;
                            chain.push(Version::new(ts, TS_MAX, node));
                            self.version_count += 1;
                        }
                    }
                    lpg::EntityId::Rel(id) => {
                        let chain = self
                            .rels
                            .get_mut(id.index())
                            .ok_or(GraphError::RelNotFound(id))?;
                        let last = chain
                            .last_mut()
                            .filter(|v| v.valid.end == TS_MAX)
                            .ok_or(GraphError::RelNotFound(id))?;
                        let mut rel = last.data.clone();
                        let delta = lpg::EntityDelta::from_update(modify).expect("modify");
                        delta.apply_to_rel(&mut rel);
                        if last.valid.start == ts {
                            last.data = rel;
                        } else {
                            last.valid.end = ts;
                            chain.push(Version::new(ts, TS_MAX, rel));
                            self.version_count += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn slot(&mut self, id: NodeId) -> usize {
        let d = self.idmap.get_or_insert(id) as usize;
        if self.nodes.len() <= d {
            self.nodes.resize_with(d + 1, Vec::new);
            self.out_adj.resize_with(d + 1, Vec::new);
            self.in_adj.resize_with(d + 1, Vec::new);
        }
        d
    }

    fn require_alive(&mut self, id: NodeId, rel: RelId) -> Result<usize> {
        let d = self
            .idmap
            .dense(id)
            .ok_or(GraphError::EndpointMissing { rel, node: id })? as usize;
        if !alive(&self.nodes[d]) {
            return Err(GraphError::EndpointMissing { rel, node: id });
        }
        Ok(d)
    }

    /// Node state at `ts` (binary search over the version list).
    pub fn node_at(&self, id: NodeId, ts: Timestamp) -> Option<&Node> {
        let d = self.idmap.dense(id)? as usize;
        version_at(&self.nodes[d], ts).map(|v| &v.data)
    }

    /// Relationship state at `ts`.
    pub fn rel_at(&self, id: RelId, ts: Timestamp) -> Option<&Relationship> {
        version_at(self.rels.get(id.index())?, ts).map(|v| &v.data)
    }

    /// Full version history of a node.
    pub fn node_history(&self, id: NodeId) -> &[Version<Node>] {
        self.idmap
            .dense(id)
            .map(|d| self.nodes[d as usize].as_slice())
            .unwrap_or(&[])
    }

    /// Full version history of a relationship.
    pub fn rel_history(&self, id: RelId) -> &[Version<Relationship>] {
        self.rels.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Relationships of `node` valid at `ts` — walks the timestamp-ordered
    /// adjacency history up to `ts` (binary-searched prefix).
    pub fn rels_at(
        &self,
        node: NodeId,
        dir: Direction,
        ts: Timestamp,
    ) -> impl Iterator<Item = &Relationship> + '_ {
        let mut valid: Vec<RelId> = Vec::new();
        if let Some(d) = self.idmap.dense(node) {
            let mut state: HashMap<RelId, bool> = HashMap::new();
            let mut walk = |events: &[AdjEvent]| {
                let cut = events.partition_point(|e| e.ts <= ts);
                for e in &events[..cut] {
                    state.insert(e.rel, e.added);
                }
            };
            if dir.includes_out() {
                walk(&self.out_adj[d as usize]);
            }
            if dir.includes_in() {
                walk(&self.in_adj[d as usize]);
            }
            valid.extend(state.into_iter().filter(|(_, on)| *on).map(|(r, _)| r));
            valid.sort_unstable();
        }
        valid.into_iter().filter_map(move |r| self.rel_at(r, ts))
    }

    /// Materializes the regular LPG valid at `ts`.
    pub fn graph_at(&self, ts: Timestamp) -> Graph {
        let mut g = Graph::new();
        for chain in &self.nodes {
            if let Some(v) = version_at(chain, ts) {
                g.apply(&Update::AddNode {
                    id: v.data.id,
                    labels: v.data.labels.clone(),
                    props: v.data.props.clone(),
                })
                .expect("disjoint versions");
            }
        }
        for chain in &self.rels {
            if let Some(v) = version_at(chain, ts) {
                g.apply(&Update::AddRel {
                    id: v.data.id,
                    src: v.data.src,
                    tgt: v.data.tgt,
                    label: v.data.label,
                    props: v.data.props.clone(),
                })
                .expect("valid endpoints");
            }
        }
        g
    }

    /// Relationship versions overlapping `iv` (temporal paths, Fig. 2).
    pub fn rels_overlapping(&self, iv: Interval) -> Vec<&Version<Relationship>> {
        self.rels
            .iter()
            .flat_map(|c| c.iter().filter(move |v| v.valid.overlaps(&iv)))
            .collect()
    }
}

fn alive<T>(chain: &[Version<T>]) -> bool {
    chain.last().is_some_and(|v| v.valid.end == TS_MAX)
}

fn close<T>(chain: &mut [Version<T>], ts: Timestamp) {
    if let Some(last) = chain.last_mut() {
        if last.valid.end == TS_MAX {
            last.valid.end = ts;
        }
    }
}

/// Binary search for the version containing `ts`.
fn version_at<T>(chain: &[Version<T>], ts: Timestamp) -> Option<&Version<T>> {
    let i = chain.partition_point(|v| v.valid.start <= ts);
    if i == 0 {
        return None;
    }
    let v = &chain[i - 1];
    v.valid.contains(ts).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{PropertyValue, StrId};

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    fn rid(i: u64) -> RelId {
        RelId::new(i)
    }

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: nid(i),
            labels: vec![],
            props: vec![],
        }
    }

    fn add_rel(id: u64, s: u64, t: u64) -> Update {
        Update::AddRel {
            id: rid(id),
            src: nid(s),
            tgt: nid(t),
            label: None,
            props: vec![],
        }
    }

    #[test]
    fn versions_and_time_travel() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        g.apply(2, &add_node(2)).unwrap();
        g.apply(3, &add_rel(0, 1, 2)).unwrap();
        g.apply(
            5,
            &Update::SetNodeProp {
                id: nid(1),
                key: StrId::new(0),
                value: PropertyValue::Int(5),
            },
        )
        .unwrap();
        g.apply(8, &Update::DeleteRel { id: rid(0) }).unwrap();

        assert!(g.node_at(nid(1), 0).is_none());
        assert!(g.node_at(nid(1), 1).is_some());
        assert_eq!(g.node_at(nid(1), 4).unwrap().prop(StrId::new(0)), None);
        assert_eq!(
            g.node_at(nid(1), 5).unwrap().prop(StrId::new(0)),
            Some(&PropertyValue::Int(5))
        );
        assert!(g.rel_at(rid(0), 7).is_some());
        assert!(g.rel_at(rid(0), 8).is_none());
        assert_eq!(g.node_history(nid(1)).len(), 2);
        assert_eq!(g.rel_history(rid(0)).len(), 1);
        assert_eq!(g.rel_history(rid(0))[0].valid, Interval::new(3, 8));
    }

    #[test]
    fn rels_at_follows_adjacency_history() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        g.apply(1, &add_node(2)).unwrap();
        g.apply(2, &add_rel(0, 1, 2)).unwrap();
        g.apply(4, &add_rel(1, 2, 1)).unwrap();
        g.apply(6, &Update::DeleteRel { id: rid(0) }).unwrap();
        assert_eq!(g.rels_at(nid(1), Direction::Outgoing, 3).count(), 1);
        assert_eq!(g.rels_at(nid(1), Direction::Both, 5).count(), 2);
        assert_eq!(g.rels_at(nid(1), Direction::Both, 6).count(), 1);
        assert_eq!(g.rels_at(nid(1), Direction::Outgoing, 6).count(), 0);
    }

    #[test]
    fn graph_at_is_consistent() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        g.apply(2, &add_node(2)).unwrap();
        g.apply(3, &add_rel(0, 1, 2)).unwrap();
        g.apply(5, &Update::DeleteRel { id: rid(0) }).unwrap();
        g.apply(6, &Update::DeleteNode { id: nid(2) }).unwrap();
        let g4 = g.graph_at(4);
        assert_eq!((g4.node_count(), g4.rel_count()), (2, 1));
        g4.check_consistency().unwrap();
        let g6 = g.graph_at(6);
        assert_eq!((g6.node_count(), g6.rel_count()), (1, 0));
    }

    #[test]
    fn constraint_violations_rejected() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        assert!(matches!(
            g.apply(2, &add_node(1)),
            Err(GraphError::NodeExists(_))
        ));
        assert!(matches!(
            g.apply(2, &add_rel(0, 1, 9)),
            Err(GraphError::EndpointMissing { .. })
        ));
        g.apply(3, &add_node(2)).unwrap();
        g.apply(4, &add_rel(0, 1, 2)).unwrap();
        assert!(matches!(
            g.apply(5, &Update::DeleteNode { id: nid(1) }),
            Err(GraphError::NodeHasRelationships(_))
        ));
        assert!(matches!(
            g.apply(4, &add_node(3)),
            Ok(()) // same ts allowed
        ));
        assert!(matches!(
            g.apply(3, &add_node(4)),
            Err(GraphError::NonMonotonicCommit { .. })
        ));
    }

    #[test]
    fn same_ts_modify_coalesces() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        g.apply(
            1,
            &Update::SetNodeProp {
                id: nid(1),
                key: StrId::new(0),
                value: PropertyValue::Int(1),
            },
        )
        .unwrap();
        assert_eq!(g.node_history(nid(1)).len(), 1);
        assert_eq!(
            g.node_at(nid(1), 1).unwrap().prop(StrId::new(0)),
            Some(&PropertyValue::Int(1))
        );
    }

    #[test]
    fn reinsertion_yields_disjoint_versions() {
        let mut g = TemporalDynGraph::new();
        g.apply(1, &add_node(1)).unwrap();
        g.apply(3, &Update::DeleteNode { id: nid(1) }).unwrap();
        g.apply(5, &add_node(1)).unwrap();
        let h = g.node_history(nid(1));
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].valid, Interval::new(1, 3));
        assert!(h[1].valid.is_open_ended());
        assert!(g.node_at(nid(1), 4).is_none());
        assert!(g.node_at(nid(1), 5).is_some());
    }
}
