//! The dynamic in-memory LPG: four Arc-shared vectors with copy-on-write
//! snapshots (Fig. 5).

use crate::idmap::IdMap;
use lpg::{prop_remove, prop_set};
use lpg::{Direction, Graph, GraphError, Node, NodeId, RelId, Relationship, Result, Update};
use std::collections::HashMap;
use std::sync::Arc;

/// A dynamic LPG optimized for analytics and incremental computation.
///
/// Nodes live at dense indexes (via [`IdMap`]); relationships at their raw
/// id (relationship ids are allocated densely by the transaction layer).
/// Cloning a `DynGraph` is cheap — the vectors are `Arc`-shared and copy
/// lazily on the next mutation (Tegra-style CoW, Sec. 5.2).
#[derive(Clone, Debug)]
pub struct DynGraph {
    idmap: Arc<IdMap>,
    /// Dense-indexed materialized nodes (`None` = deleted).
    nodes: Arc<Vec<Option<Node>>>,
    /// Relationship vector indexed by raw rel id (`None` = deleted/absent).
    rels: Arc<Vec<Option<Relationship>>>,
    /// Outgoing relationship ids per dense node.
    out_adj: Arc<Vec<Vec<RelId>>>,
    /// Incoming relationship ids per dense node.
    in_adj: Arc<Vec<Vec<RelId>>>,
    live_nodes: usize,
    live_rels: usize,
}

impl Default for DynGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl DynGraph {
    /// An empty graph.
    pub fn new() -> DynGraph {
        DynGraph {
            idmap: Arc::new(IdMap::new()),
            nodes: Arc::new(Vec::new()),
            rels: Arc::new(Vec::new()),
            out_adj: Arc::new(Vec::new()),
            in_adj: Arc::new(Vec::new()),
            live_nodes: 0,
            live_rels: 0,
        }
    }

    /// Builds from a materialized [`lpg::Graph`] snapshot.
    pub fn from_graph(g: &Graph) -> DynGraph {
        let mut dg = DynGraph::new();
        for n in g.nodes() {
            dg.apply(&Update::AddNode {
                id: n.id,
                labels: n.labels.clone(),
                props: n.props.clone(),
            })
            .expect("source graph is consistent");
        }
        for r in g.rels() {
            dg.apply(&Update::AddRel {
                id: r.id,
                src: r.src,
                tgt: r.tgt,
                label: r.label,
                props: r.props.clone(),
            })
            .expect("source graph is consistent");
        }
        dg
    }

    /// Live node count.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Live relationship count.
    pub fn rel_count(&self) -> usize {
        self.live_rels
    }

    /// Number of dense slots (`V_d`, including deleted nodes' slots).
    pub fn dense_len(&self) -> usize {
        self.nodes.len()
    }

    /// The dense index of a node id.
    pub fn dense(&self, id: NodeId) -> Option<u32> {
        let d = self.idmap.dense(id)?;
        self.nodes[d as usize].as_ref().map(|_| d)
    }

    /// The sparse node id at a dense index.
    pub fn sparse(&self, d: u32) -> Option<NodeId> {
        self.idmap.sparse(d)
    }

    /// Node lookup by sparse id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        let d = self.idmap.dense(id)?;
        self.nodes.get(d as usize)?.as_ref()
    }

    /// Node lookup by dense index.
    pub fn node_dense(&self, d: u32) -> Option<&Node> {
        self.nodes.get(d as usize)?.as_ref()
    }

    /// Relationship lookup.
    pub fn rel(&self, id: RelId) -> Option<&Relationship> {
        self.rels.get(id.index())?.as_ref()
    }

    /// Outgoing/incoming relationship ids of a node (`O(1)` access).
    pub fn adj(&self, id: NodeId, dir: Direction) -> &[RelId] {
        static EMPTY: [RelId; 0] = [];
        let Some(d) = self.idmap.dense(id) else {
            return &EMPTY;
        };
        match dir {
            Direction::Outgoing => self.out_adj.get(d as usize).map_or(&EMPTY[..], |v| v),
            Direction::Incoming => self.in_adj.get(d as usize).map_or(&EMPTY[..], |v| v),
            Direction::Both => panic!("adj() needs a concrete direction; use neighbours()"),
        }
    }

    /// Degree in a direction (self-loops count twice under `Both`).
    pub fn degree(&self, id: NodeId, dir: Direction) -> usize {
        let Some(d) = self.idmap.dense(id) else {
            return 0;
        };
        let mut total = 0;
        if dir.includes_out() {
            total += self.out_adj.get(d as usize).map_or(0, Vec::len);
        }
        if dir.includes_in() {
            total += self.in_adj.get(d as usize).map_or(0, Vec::len);
        }
        total
    }

    /// Deduplicated neighbour node ids.
    pub fn neighbours(&self, id: NodeId, dir: Direction) -> Vec<NodeId> {
        let Some(d) = self.idmap.dense(id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if dir.includes_out() {
            for r in &self.out_adj[d as usize] {
                if let Some(rel) = self.rel(*r) {
                    out.push(rel.tgt);
                }
            }
        }
        if dir.includes_in() {
            for r in &self.in_adj[d as usize] {
                if let Some(rel) = self.rel(*r) {
                    out.push(rel.src);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    /// Iterates live relationships.
    pub fn rels(&self) -> impl Iterator<Item = &Relationship> {
        self.rels.iter().filter_map(Option::as_ref)
    }

    /// Applies one update, validating the LPG constraints.
    pub fn apply(&mut self, op: &Update) -> Result<()> {
        match op {
            Update::AddNode { id, labels, props } => {
                if self.node(*id).is_some() {
                    return Err(GraphError::NodeExists(*id));
                }
                let idmap = Arc::make_mut(&mut self.idmap);
                let d = idmap.get_or_insert(*id) as usize;
                let nodes = Arc::make_mut(&mut self.nodes);
                if nodes.len() <= d {
                    nodes.resize_with(d + 1, || None);
                }
                nodes[d] = Some(Node::new(*id, labels.clone(), props.clone()));
                let out = Arc::make_mut(&mut self.out_adj);
                if out.len() <= d {
                    out.resize_with(d + 1, Vec::new);
                }
                let inn = Arc::make_mut(&mut self.in_adj);
                if inn.len() <= d {
                    inn.resize_with(d + 1, Vec::new);
                }
                self.live_nodes += 1;
            }
            Update::DeleteNode { id } => {
                let d = self.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                if !self.out_adj[d].is_empty() || !self.in_adj[d].is_empty() {
                    return Err(GraphError::NodeHasRelationships(*id));
                }
                Arc::make_mut(&mut self.nodes)[d] = None;
                self.live_nodes -= 1;
            }
            Update::AddRel {
                id,
                src,
                tgt,
                label,
                props,
            } => {
                if self.rel(*id).is_some() {
                    return Err(GraphError::RelExists(*id));
                }
                let ds = self.dense(*src).ok_or(GraphError::EndpointMissing {
                    rel: *id,
                    node: *src,
                })? as usize;
                let dt = self.dense(*tgt).ok_or(GraphError::EndpointMissing {
                    rel: *id,
                    node: *tgt,
                })? as usize;
                let rels = Arc::make_mut(&mut self.rels);
                if rels.len() <= id.index() {
                    rels.resize_with(id.index() + 1, || None);
                }
                rels[id.index()] = Some(Relationship::new(*id, *src, *tgt, *label, props.clone()));
                Arc::make_mut(&mut self.out_adj)[ds].push(*id);
                Arc::make_mut(&mut self.in_adj)[dt].push(*id);
                self.live_rels += 1;
            }
            Update::DeleteRel { id } => {
                let rel = self.rel(*id).cloned().ok_or(GraphError::RelNotFound(*id))?;
                Arc::make_mut(&mut self.rels)[id.index()] = None;
                let ds = self.idmap.dense(rel.src).expect("endpoint mapped") as usize;
                let dt = self.idmap.dense(rel.tgt).expect("endpoint mapped") as usize;
                // swap_remove: deletion cost bounded by neighbourhood size,
                // order not preserved (amortized gaps, Sec. 5.2).
                let out = Arc::make_mut(&mut self.out_adj);
                if let Some(i) = out[ds].iter().position(|r| r == id) {
                    out[ds].swap_remove(i);
                }
                let inn = Arc::make_mut(&mut self.in_adj);
                if let Some(i) = inn[dt].iter().position(|r| r == id) {
                    inn[dt].swap_remove(i);
                }
                self.live_rels -= 1;
            }
            Update::SetNodeProp { id, key, value } => {
                let d = self.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                let n = Arc::make_mut(&mut self.nodes)[d].as_mut().expect("live");
                prop_set(&mut n.props, *key, value.clone());
            }
            Update::RemoveNodeProp { id, key } => {
                let d = self.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                let n = Arc::make_mut(&mut self.nodes)[d].as_mut().expect("live");
                prop_remove(&mut n.props, *key);
            }
            Update::AddLabel { id, label } => {
                let d = self.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                let n = Arc::make_mut(&mut self.nodes)[d].as_mut().expect("live");
                if let Err(i) = n.labels.binary_search(label) {
                    n.labels.insert(i, *label);
                }
            }
            Update::RemoveLabel { id, label } => {
                let d = self.dense(*id).ok_or(GraphError::NodeNotFound(*id))? as usize;
                let n = Arc::make_mut(&mut self.nodes)[d].as_mut().expect("live");
                if let Ok(i) = n.labels.binary_search(label) {
                    n.labels.remove(i);
                }
            }
            Update::SetRelProp { id, key, value } => {
                if self.rel(*id).is_none() {
                    return Err(GraphError::RelNotFound(*id));
                }
                let r = Arc::make_mut(&mut self.rels)[id.index()]
                    .as_mut()
                    .expect("live");
                prop_set(&mut r.props, *key, value.clone());
            }
            Update::RemoveRelProp { id, key } => {
                if self.rel(*id).is_none() {
                    return Err(GraphError::RelNotFound(*id));
                }
                let r = Arc::make_mut(&mut self.rels)[id.index()]
                    .as_mut()
                    .expect("live");
                prop_remove(&mut r.props, *key);
            }
        }
        Ok(())
    }

    /// Applies a batch.
    pub fn apply_all<'a, I>(&mut self, ops: I) -> Result<()>
    where
        I: IntoIterator<Item = &'a Update>,
    {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// A copy-on-write snapshot: `O(1)` now, copying deferred to the next
    /// mutation of either copy.
    pub fn snapshot(&self) -> DynGraph {
        self.clone()
    }

    /// Estimated heap footprint in bytes (Table 3 accounting: ~60 B/node,
    /// ~68 B/rel, 4 B per adjacency entry).
    pub fn heap_size(&self) -> usize {
        let nodes: usize = self.nodes().map(Node::heap_size).sum();
        let rels: usize = self.rels().map(Relationship::heap_size).sum();
        let adj: usize = self
            .out_adj
            .iter()
            .chain(self.in_adj.iter())
            .map(|v| v.len() * 4)
            .sum();
        nodes + rels + adj + self.idmap.len() * 16
    }

    /// Converts back to the hash-map [`Graph`] (for oracles and snapshots).
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new();
        for n in self.nodes() {
            g.apply(&Update::AddNode {
                id: n.id,
                labels: n.labels.clone(),
                props: n.props.clone(),
            })
            .expect("consistent");
        }
        for r in self.rels() {
            g.apply(&Update::AddRel {
                id: r.id,
                src: r.src,
                tgt: r.tgt,
                label: r.label,
                props: r.props.clone(),
            })
            .expect("consistent");
        }
        g
    }
}

/// Collects per-label statistics from a graph — the base histogram Aion's
/// cardinality estimator maintains (Sec. 5.1).
pub fn label_histogram(g: &DynGraph) -> HashMap<lpg::StrId, usize> {
    let mut h = HashMap::new();
    for n in g.nodes() {
        for l in &n.labels {
            *h.entry(*l).or_insert(0) += 1;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{PropertyValue, StrId};

    fn nid(i: u64) -> NodeId {
        NodeId::new(i)
    }
    fn rid(i: u64) -> RelId {
        RelId::new(i)
    }

    fn add_node(i: u64) -> Update {
        Update::AddNode {
            id: nid(i),
            labels: vec![StrId::new((i % 2) as u32)],
            props: vec![],
        }
    }

    fn add_rel(id: u64, s: u64, t: u64) -> Update {
        Update::AddRel {
            id: rid(id),
            src: nid(s),
            tgt: nid(t),
            label: None,
            props: vec![],
        }
    }

    #[test]
    fn basic_structure() {
        let mut g = DynGraph::new();
        // Sparse ids map to dense slots.
        g.apply(&add_node(1_000_000)).unwrap();
        g.apply(&add_node(3)).unwrap();
        g.apply(&add_rel(0, 1_000_000, 3)).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.rel_count(), 1);
        assert_eq!(g.dense(nid(1_000_000)), Some(0));
        assert_eq!(g.dense(nid(3)), Some(1));
        assert_eq!(g.degree(nid(1_000_000), Direction::Outgoing), 1);
        assert_eq!(
            g.neighbours(nid(3), Direction::Incoming),
            vec![nid(1_000_000)]
        );
        assert_eq!(g.adj(nid(1_000_000), Direction::Outgoing), &[rid(0)]);
    }

    #[test]
    fn constraints_enforced() {
        let mut g = DynGraph::new();
        g.apply(&add_node(1)).unwrap();
        assert!(matches!(
            g.apply(&add_node(1)),
            Err(GraphError::NodeExists(_))
        ));
        assert!(matches!(
            g.apply(&add_rel(0, 1, 2)),
            Err(GraphError::EndpointMissing { .. })
        ));
        g.apply(&add_node(2)).unwrap();
        g.apply(&add_rel(0, 1, 2)).unwrap();
        assert!(matches!(
            g.apply(&Update::DeleteNode { id: nid(1) }),
            Err(GraphError::NodeHasRelationships(_))
        ));
        g.apply(&Update::DeleteRel { id: rid(0) }).unwrap();
        g.apply(&Update::DeleteNode { id: nid(1) }).unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn cow_snapshot_isolation() {
        let mut g = DynGraph::new();
        g.apply(&add_node(1)).unwrap();
        g.apply(&add_node(2)).unwrap();
        g.apply(&add_rel(0, 1, 2)).unwrap();
        let snap = g.snapshot();
        // Mutate the original; the snapshot must not change.
        g.apply(&Update::SetNodeProp {
            id: nid(1),
            key: StrId::new(5),
            value: PropertyValue::Int(9),
        })
        .unwrap();
        g.apply(&Update::DeleteRel { id: rid(0) }).unwrap();
        assert_eq!(snap.rel_count(), 1);
        assert_eq!(snap.node(nid(1)).unwrap().prop(StrId::new(5)), None);
        assert_eq!(g.rel_count(), 0);
        assert_eq!(
            g.node(nid(1)).unwrap().prop(StrId::new(5)),
            Some(&PropertyValue::Int(9))
        );
    }

    #[test]
    fn snapshot_is_cheap_until_written() {
        let mut g = DynGraph::new();
        for i in 0..1_000 {
            g.apply(&add_node(i)).unwrap();
        }
        let before = g.heap_size();
        let snaps: Vec<DynGraph> = (0..100).map(|_| g.snapshot()).collect();
        // 100 snapshots share the same vectors: no duplication happened.
        assert_eq!(snaps[0].heap_size(), before);
        assert!(Arc::ptr_eq(&g.nodes, &snaps[99].nodes));
    }

    #[test]
    fn roundtrip_through_graph() {
        let mut g = DynGraph::new();
        for i in 0..50 {
            g.apply(&add_node(i * 3)).unwrap();
        }
        for i in 0..80u64 {
            g.apply(&add_rel(i, (i % 50) * 3, ((i * 7) % 50) * 3))
                .unwrap();
        }
        let plain = g.to_graph();
        plain.check_consistency().unwrap();
        let back = DynGraph::from_graph(&plain);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.rel_count(), g.rel_count());
        assert!(back.to_graph().same_as(&plain));
    }

    #[test]
    fn reinsert_after_delete_reuses_slot() {
        let mut g = DynGraph::new();
        g.apply(&add_node(5)).unwrap();
        let d = g.dense(nid(5)).unwrap();
        g.apply(&Update::DeleteNode { id: nid(5) }).unwrap();
        assert_eq!(g.dense(nid(5)), None);
        g.apply(&add_node(5)).unwrap();
        assert_eq!(g.dense(nid(5)), Some(d), "idmap slot is stable");
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn label_histogram_counts() {
        let mut g = DynGraph::new();
        for i in 0..10 {
            g.apply(&add_node(i)).unwrap();
        }
        let h = label_histogram(&g);
        assert_eq!(h[&StrId::new(0)], 5);
        assert_eq!(h[&StrId::new(1)], 5);
    }
}
