//! # aion-dyngraph — the compute-efficient in-memory LPG (Sec. 5.2)
//!
//! Static CSR cannot absorb dynamically changing LPGs, so Aion adopts an
//! adjacency-list design "based on the Sortledton graph data structure but
//! [able to] handle an arbitrary number of labels and properties using the
//! materialized graph entities' vectors". Four vectors (Fig. 5):
//!
//! 1. materialized **node** vector,
//! 2. materialized **relationship** vector,
//! 3. **incoming** relationship-id lists per node,
//! 4. **outgoing** relationship-id lists per node.
//!
//! giving `O(1)` insert/update and neighbourhood access; deletions cost at
//! most the neighbourhood size.
//!
//! * [`idmap::IdMap`] translates the sparse node-id domain `[0, V_s)` into
//!   the dense domain `[0, V_d)` "where all IDs refer to valid nodes",
//!   enabling vector-backed algorithms.
//! * [`graph::DynGraph`] is the dynamic LPG; its snapshots are copy-on-write
//!   (Arc-shared vectors that clone lazily on the next write), the Tegra-
//!   style CoW of Sec. 5.2.
//! * [`temporal::TemporalDynGraph`] is the temporal variant: "node and
//!   relationship vectors store a list of entity versions instead of a
//!   single object" and adjacency lists keep their full history ordered by
//!   timestamp, so history access costs a binary search.
//! * [`csr::Csr`] is the static projection (the GDS-style CSR built from a
//!   snapshot for parallel analytics).

pub mod csr;
pub mod graph;
pub mod idmap;
pub mod temporal;

pub use csr::Csr;
pub use graph::DynGraph;
pub use idmap::IdMap;
pub use temporal::TemporalDynGraph;
