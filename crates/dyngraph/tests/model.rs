//! Property tests: the four-vector dynamic graph must be observationally
//! equivalent to the hash-map reference graph under arbitrary valid update
//! sequences, and CoW snapshots must be immutable.

use dyngraph::DynGraph;
use lpg::{Direction, Graph, NodeId, PropertyValue, RelId, StrId, Update};
use proptest::prelude::*;

fn ops_strategy() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec((0u64..8, 0u64..8, any::<i64>(), 0u8..7), 1..120).prop_map(|raw| {
        let mut live_nodes: Vec<u64> = Vec::new();
        let mut live_rels: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_rel = 0u64;
        let mut out = Vec::new();
        for (a, b, val, kind) in raw {
            match kind {
                0 if !live_nodes.contains(&a) => {
                    live_nodes.push(a);
                    out.push(Update::AddNode {
                        id: NodeId::new(a),
                        labels: vec![StrId::new((a % 3) as u32)],
                        props: vec![],
                    });
                }
                1 if live_nodes.contains(&a) && live_nodes.contains(&b) => {
                    let rid = next_rel;
                    next_rel += 1;
                    live_rels.push((rid, a, b));
                    out.push(Update::AddRel {
                        id: RelId::new(rid),
                        src: NodeId::new(a),
                        tgt: NodeId::new(b),
                        label: Some(StrId::new(9)),
                        props: vec![],
                    });
                }
                2 if !live_rels.is_empty() => {
                    let i = (a as usize) % live_rels.len();
                    let (rid, _, _) = live_rels.remove(i);
                    out.push(Update::DeleteRel {
                        id: RelId::new(rid),
                    });
                }
                3 if live_nodes.contains(&a) => out.push(Update::SetNodeProp {
                    id: NodeId::new(a),
                    key: StrId::new((b % 4) as u32),
                    value: PropertyValue::Int(val),
                }),
                4 if live_nodes.contains(&a)
                    && !live_rels.iter().any(|(_, s, t)| *s == a || *t == a) =>
                {
                    live_nodes.retain(|n| *n != a);
                    out.push(Update::DeleteNode { id: NodeId::new(a) });
                }
                5 if !live_rels.is_empty() => {
                    let (rid, _, _) = live_rels[(a as usize) % live_rels.len()];
                    out.push(Update::SetRelProp {
                        id: RelId::new(rid),
                        key: StrId::new((b % 4) as u32),
                        value: PropertyValue::Int(val),
                    });
                }
                6 if live_nodes.contains(&a) => out.push(Update::AddLabel {
                    id: NodeId::new(a),
                    label: StrId::new((b % 5) as u32),
                }),
                _ => {}
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dyngraph_equals_reference(ops in ops_strategy()) {
        let mut reference = Graph::new();
        let mut dynamic = DynGraph::new();
        for op in &ops {
            reference.apply(op).unwrap();
            dynamic.apply(op).unwrap();
        }
        prop_assert_eq!(dynamic.node_count(), reference.node_count());
        prop_assert_eq!(dynamic.rel_count(), reference.rel_count());
        // Full structural equivalence.
        prop_assert!(dynamic.to_graph().same_as(&reference));
        // Degrees and neighbours agree for every live node.
        for n in reference.nodes() {
            for dir in [Direction::Outgoing, Direction::Incoming, Direction::Both] {
                prop_assert_eq!(
                    dynamic.degree(n.id, dir),
                    reference.degree(n.id, dir),
                    "degree of {} {:?}", n.id, dir
                );
                prop_assert_eq!(
                    dynamic.neighbours(n.id, dir),
                    reference.neighbours(n.id, dir),
                    "neighbours of {} {:?}", n.id, dir
                );
            }
        }
    }

    #[test]
    fn cow_snapshot_unchanged_by_later_ops(
        before in ops_strategy(),
        after in ops_strategy(),
    ) {
        let mut dynamic = DynGraph::new();
        for op in &before {
            dynamic.apply(op).unwrap();
        }
        let snapshot = dynamic.snapshot();
        let frozen = snapshot.to_graph();
        // Apply a second phase; invalid ops (ids already used) are skipped.
        for op in &after {
            let _ = dynamic.apply(op);
        }
        prop_assert!(snapshot.to_graph().same_as(&frozen), "snapshot mutated");
    }
}
