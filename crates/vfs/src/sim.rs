//! Deterministic fault-injecting in-memory file system.
//!
//! [`SimVfs`] models the durability contract of a POSIX file system under
//! a crash, driven entirely by one `u64` seed:
//!
//! * every `write_all_at` / `set_len` buffers a **pending** operation that
//!   only `sync_data` folds into the file's **durable** image;
//! * a crash (triggered at a configured *fault point* or manually via
//!   [`SimVfs::crash_now`]) runs a seeded lottery over every pending
//!   operation: each [`FaultConfig::torn_granularity`]-sized chunk of an
//!   un-synced write independently survives or is discarded, which yields
//!   torn frames, torn pages, out-of-order partial flushes and lost tails
//!   — everything real kernels produce;
//! * after a crash every operation on every handle fails until
//!   [`SimVfs::heal`] resets the fault plan, simulating the process
//!   restart after which the database reopens from the durable image;
//! * independent of crashes, mutating operations can fail with transient
//!   `EIO` / `ENOSPC` at a configured rate.
//!
//! Mutating operations (`write_all_at`, `set_len`, `sync_data`, whole-file
//! `write`, `remove_file`) are numbered globally; [`SimVfs::op_count`]
//! exposes the counter so a harness can first measure a workload and then
//! re-run it crashing at every fault point. All behaviour is a pure
//! function of (seed, operation sequence), so a printed seed reproduces a
//! failure exactly.
//!
//! Simplifications, on purpose: file creation and removal are durable
//! immediately (directory fsync is not modelled), and reads always see the
//! latest written (live) data, like a page cache.

use crate::{Vfs, VfsFile};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fault plan for a [`SimVfs`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Crash at the mutating operation with this global index: the
    /// operation itself does not complete (a write participates torn in
    /// the crash lottery; a sync does not run) and every later operation
    /// fails until [`SimVfs::heal`].
    pub crash_at_op: Option<u64>,
    /// Probability that a mutating operation fails with a transient
    /// `EIO`/`ENOSPC` (alternating) instead of running. `0.0` disables.
    pub io_error_rate: f64,
    /// Chunk size (bytes, ≥ 1) at which un-synced writes tear in a crash.
    pub torn_granularity: usize,
    /// Probability that each un-synced chunk survives the crash.
    pub survive_probability: f64,
}

impl FaultConfig {
    /// No faults: behaves like a perfectly reliable disk with a volatile
    /// write cache.
    pub fn none() -> FaultConfig {
        FaultConfig {
            crash_at_op: None,
            io_error_rate: 0.0,
            torn_granularity: 512,
            survive_probability: 0.5,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

enum Pending {
    Write { offset: u64, data: Vec<u8> },
    SetLen(u64),
}

#[derive(Default)]
struct SimFile {
    /// What reads observe (page cache view).
    live: Vec<u8>,
    /// What survives a crash (the platter).
    durable: Vec<u8>,
    /// Un-synced operations, in order, awaiting sync or the crash lottery.
    pending: Vec<Pending>,
}

fn apply_write(img: &mut Vec<u8>, offset: u64, data: &[u8]) {
    let offset = offset as usize;
    let end = offset + data.len();
    if img.len() < end {
        img.resize(end, 0);
    }
    img[offset..end].copy_from_slice(data);
}

fn apply_set_len(img: &mut Vec<u8>, len: u64) {
    img.resize(len as usize, 0);
}

struct State {
    files: BTreeMap<PathBuf, SimFile>,
    fault: FaultConfig,
    rng: u64,
    ops: u64,
    crashed: bool,
    crashes: u64,
    enospc_next: bool,
}

impl State {
    /// splitmix64 step.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The crash lottery: fold each file's pending operations into its
    /// durable image, each torn-granularity chunk surviving independently.
    fn crash(&mut self) {
        let granularity = self.fault.torn_granularity.max(1);
        let survive = self.fault.survive_probability;
        let paths: Vec<PathBuf> = self.files.keys().cloned().collect();
        for path in paths {
            let (mut durable, pending) = match self.files.get_mut(&path) {
                Some(f) => (f.durable.clone(), std::mem::take(&mut f.pending)),
                None => continue,
            };
            for op in &pending {
                match op {
                    Pending::Write { offset, data } => {
                        let mut pos = 0usize;
                        while pos < data.len() {
                            let end = (pos + granularity).min(data.len());
                            if self.next_f64() < survive {
                                apply_write(&mut durable, offset + pos as u64, &data[pos..end]);
                            }
                            pos = end;
                        }
                    }
                    Pending::SetLen(len) => {
                        if self.next_f64() < survive {
                            apply_set_len(&mut durable, *len);
                        }
                    }
                }
            }
            if let Some(f) = self.files.get_mut(&path) {
                f.live = durable.clone();
                f.durable = durable;
            }
        }
        self.crashed = true;
        self.crashes += 1;
    }

    /// Gate for a mutating operation: post-crash failure, op accounting,
    /// the crash point, and transient error injection. Returns `Ok(true)`
    /// when the caller should crash *after* recording the op as pending
    /// (so the op participates torn in the lottery).
    fn mutation_gate(&mut self) -> io::Result<bool> {
        if self.crashed {
            return Err(crashed_error());
        }
        let op = self.ops;
        self.ops += 1;
        if self.fault.crash_at_op == Some(op) {
            return Ok(true);
        }
        if self.fault.io_error_rate > 0.0 && self.next_f64() < self.fault.io_error_rate {
            self.enospc_next = !self.enospc_next;
            let msg = if self.enospc_next {
                "sim: injected ENOSPC"
            } else {
                "sim: injected EIO"
            };
            return Err(io::Error::other(msg));
        }
        Ok(false)
    }

    fn read_gate(&self) -> io::Result<()> {
        if self.crashed {
            return Err(crashed_error());
        }
        Ok(())
    }
}

fn crashed_error() -> io::Error {
    io::Error::other("sim: crashed (I/O after crash point)")
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("sim: no such file {}", path.display()),
    )
}

/// The deterministic fault-injecting VFS. Cheap to clone; all clones share
/// one file-system state.
#[derive(Clone)]
pub struct SimVfs {
    state: Arc<Mutex<State>>,
}

impl SimVfs {
    /// A fault-free simulated disk seeded with `seed` (the seed only
    /// matters once faults are armed).
    pub fn new(seed: u64) -> SimVfs {
        SimVfs::with_faults(seed, FaultConfig::none())
    }

    /// A simulated disk with `fault` armed.
    pub fn with_faults(seed: u64, fault: FaultConfig) -> SimVfs {
        SimVfs {
            state: Arc::new(Mutex::new(State {
                files: BTreeMap::new(),
                fault,
                rng: seed,
                ops: 0,
                crashed: false,
                crashes: 0,
                enospc_next: false,
            })),
        }
    }

    /// Total mutating operations issued so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether a crash point has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of crashes so far.
    pub fn crash_count(&self) -> u64 {
        self.state.lock().crashes
    }

    /// Crashes immediately: runs the torn-write lottery over all pending
    /// data and fails every subsequent operation until [`SimVfs::heal`].
    pub fn crash_now(&self) {
        self.state.lock().crash();
    }

    /// Clears the crashed flag and disarms all faults, keeping the durable
    /// image — the "machine rebooted, disk intact" transition before a
    /// database reopen.
    pub fn heal(&self) {
        let mut s = self.state.lock();
        s.crashed = false;
        s.fault = FaultConfig::none();
    }

    /// Re-arms a fault plan (e.g. error injection for a post-recovery
    /// phase).
    pub fn arm(&self, fault: FaultConfig) {
        self.state.lock().fault = fault;
    }

    /// Durable length of `path`, if it exists — what a reopen after a
    /// crash would observe. Test-introspection helper.
    pub fn durable_len(&self, path: &Path) -> Option<u64> {
        self.state
            .lock()
            .files
            .get(path)
            .map(|f| f.durable.len() as u64)
    }
}

struct SimHandle {
    state: Arc<Mutex<State>>,
    path: PathBuf,
}

impl VfsFile for SimHandle {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let s = self.state.lock();
        s.read_gate()?;
        let file = s
            .files
            .get(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > file.live.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "sim: read past end of file",
            ));
        }
        buf.copy_from_slice(&file.live[start..end]);
        Ok(())
    }

    fn write_all_at(&self, data: &[u8], offset: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        let crash_after = s.mutation_gate()?;
        let file = s.files.entry(self.path.clone()).or_default();
        apply_write(&mut file.live, offset, data);
        file.pending.push(Pending::Write {
            offset,
            data: data.to_vec(),
        });
        if crash_after {
            s.crash();
            return Err(crashed_error());
        }
        Ok(())
    }

    fn sync_data(&self) -> io::Result<()> {
        let mut s = self.state.lock();
        let crash_instead = s.mutation_gate()?;
        if crash_instead {
            s.crash();
            return Err(crashed_error());
        }
        let file = s
            .files
            .get_mut(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        file.durable = file.live.clone();
        file.pending.clear();
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        let crash_after = s.mutation_gate()?;
        let file = s.files.entry(self.path.clone()).or_default();
        apply_set_len(&mut file.live, len);
        file.pending.push(Pending::SetLen(len));
        if crash_after {
            s.crash();
            return Err(crashed_error());
        }
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        let s = self.state.lock();
        s.read_gate()?;
        let file = s
            .files
            .get(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        Ok(file.live.len() as u64)
    }
}

impl Vfs for SimVfs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        s.read_gate()?;
        s.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(SimHandle {
            state: self.state.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        // Directories are implicit; creation succeeds unless crashed.
        self.state.lock().read_gate()
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<(String, u64)>> {
        let s = self.state.lock();
        s.read_gate()?;
        let mut out = Vec::new();
        for (p, f) in &s.files {
            if p.parent() == Some(path) {
                if let Some(name) = p.file_name() {
                    out.push((name.to_string_lossy().into_owned(), f.live.len() as u64));
                }
            }
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let s = self.state.lock();
        s.read_gate()?;
        s.files
            .get(path)
            .map(|f| f.live.clone())
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let crash_after = s.mutation_gate()?;
        let file = s.files.entry(path.to_path_buf()).or_default();
        file.live = data.to_vec();
        file.pending.push(Pending::SetLen(0));
        file.pending.push(Pending::Write {
            offset: 0,
            data: data.to_vec(),
        });
        if crash_after {
            s.crash();
            return Err(crashed_error());
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let crash_instead = s.mutation_gate()?;
        if crash_instead {
            s.crash();
            return Err(crashed_error());
        }
        // Removal is durable immediately (directory fsync not modelled).
        s.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn p(s: &str) -> &Path {
        Path::new(s)
    }

    #[test]
    fn synced_data_survives_a_crash() {
        let sim = SimVfs::new(7);
        let f = sim.open(p("/a")).unwrap();
        f.write_all_at(b"durable", 0).unwrap();
        f.sync_data().unwrap();
        f.write_all_at(b"volatile", 7).unwrap();
        sim.crash_now();
        assert!(sim.has_crashed());
        assert!(f.sync_data().is_err(), "I/O fails after crash");
        sim.heal();
        let got = sim.read(p("/a")).unwrap();
        assert_eq!(&got[..7], b"durable", "synced prefix intact");
    }

    #[test]
    fn unsynced_data_tears_deterministically() {
        // Same seed ⇒ same lottery.
        let image = |seed: u64| {
            let sim = SimVfs::with_faults(
                seed,
                FaultConfig {
                    torn_granularity: 1,
                    survive_probability: 0.5,
                    ..FaultConfig::none()
                },
            );
            let f = sim.open(p("/t")).unwrap();
            f.write_all_at(&[0xFF; 64], 0).unwrap();
            sim.crash_now();
            sim.heal();
            sim.read(p("/t")).unwrap()
        };
        assert_eq!(image(1), image(1));
        // Torn, not all-or-nothing: with 64 independent coin flips the
        // surviving image whp either lost the tail or contains holes.
        let a = image(2);
        assert!(a.len() < 64 || a.contains(&0));
    }

    #[test]
    fn crash_at_op_fires_and_counts() {
        let sim = SimVfs::with_faults(
            3,
            FaultConfig {
                crash_at_op: Some(2),
                ..FaultConfig::none()
            },
        );
        let f = sim.open(p("/x")).unwrap();
        f.write_all_at(b"1", 0).unwrap(); // op 0
        f.sync_data().unwrap(); // op 1
        assert!(f.write_all_at(b"2", 1).is_err()); // op 2 → crash
        assert!(sim.has_crashed());
        assert_eq!(sim.crash_count(), 1);
        sim.heal();
        assert_eq!(sim.read(p("/x")).unwrap()[0], b'1');
    }

    #[test]
    fn io_error_injection_is_transient() {
        let sim = SimVfs::with_faults(
            11,
            FaultConfig {
                io_error_rate: 0.5,
                ..FaultConfig::none()
            },
        );
        let f = sim.open(p("/e")).unwrap();
        let mut errors = 0;
        let mut oks = 0;
        for i in 0..64u64 {
            match f.write_all_at(&[i as u8], i) {
                Ok(()) => oks += 1,
                Err(_) => errors += 1,
            }
        }
        assert!(errors > 0 && oks > 0, "rate 0.5 must mix outcomes");
        assert!(!sim.has_crashed());
    }

    #[test]
    fn whole_file_write_is_pending_until_sync() {
        let sim = SimVfs::with_faults(
            5,
            FaultConfig {
                survive_probability: 0.0,
                ..FaultConfig::none()
            },
        );
        sim.write(p("/snap"), b"snapshot-bytes").unwrap();
        assert_eq!(sim.read(p("/snap")).unwrap(), b"snapshot-bytes");
        sim.crash_now();
        sim.heal();
        assert!(sim.read(p("/snap")).unwrap().is_empty());
    }

    #[test]
    fn read_dir_lists_files_with_lengths() {
        let sim = SimVfs::new(1);
        sim.write(p("/d/a"), b"xx").unwrap();
        sim.write(p("/d/b"), b"yyy").unwrap();
        sim.write(p("/d/sub/c"), b"z").unwrap();
        let listing = sim.read_dir(p("/d")).unwrap();
        assert_eq!(listing, vec![("a".into(), 2), ("b".into(), 3)]);
    }
}
