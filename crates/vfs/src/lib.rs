//! # aion-vfs — the virtual file system every storage layer runs on
//!
//! All file I/O in the storage crates (`pagestore`, `timestore` and the
//! layers above them) goes through the [`Vfs`] / [`VfsFile`] traits so a
//! single seam controls durability semantics:
//!
//! * [`StdVfs`] — a zero-overhead passthrough to `std::fs` with
//!   positioned reads/writes (`FileExt`). Production default.
//! * [`sim::SimVfs`] — a deterministic in-memory file system that, from a
//!   single `u64` seed, injects torn writes at configurable byte
//!   granularity, transient `EIO` / `ENOSPC`, and crash points that
//!   discard any data not yet fsynced. The crash-consistency simulation
//!   harness (`tests/sim_crash.rs`) is built on it.
//!
//! The model deliberately mirrors what a POSIX kernel guarantees — and
//! nothing more: a `write_all_at` buffers data that only [`VfsFile::sync_data`]
//! makes durable, and after a crash each un-synced chunk independently may
//! or may not have reached the platter (the OS flushes dirty pages in any
//! order). File *creation* is modelled as immediately durable; directory
//! fsync is out of scope.

use std::fmt;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub mod sim;

pub use sim::{FaultConfig, SimVfs};

/// An open file: positioned I/O plus explicit durability control.
pub trait VfsFile: Send + Sync {
    /// Fills `buf` from `offset`; errors if the file is too short.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
    /// Writes all of `data` at `offset`, extending the file as needed.
    /// The data is *not* durable until [`VfsFile::sync_data`] succeeds.
    fn write_all_at(&self, data: &[u8], offset: u64) -> io::Result<()>;
    /// Makes every prior write to this file durable.
    fn sync_data(&self) -> io::Result<()>;
    /// Truncates or zero-extends the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Whether the file is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A file system root: open/create files and the handful of whole-file and
/// directory operations the storage layers need.
pub trait Vfs: Send + Sync {
    /// Opens `path` read+write, creating it (empty) if absent. Never
    /// truncates.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the plain files directly under `path` as
    /// `(file name, length in bytes)`.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<(String, u64)>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Replaces the contents of `path` with `data` (create + truncate).
    /// Like `std::fs::write`, the result is not durable until a sync.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// A cheaply clonable, `Debug`-friendly handle to a [`Vfs`] — the type
/// configuration structs embed.
#[derive(Clone)]
pub struct VfsRef(Arc<dyn Vfs>);

impl VfsRef {
    /// Wraps an arbitrary [`Vfs`] implementation.
    pub fn new(vfs: Arc<dyn Vfs>) -> VfsRef {
        VfsRef(vfs)
    }

    /// The production passthrough to `std::fs`.
    pub fn std() -> VfsRef {
        VfsRef(Arc::new(StdVfs))
    }
}

impl std::ops::Deref for VfsRef {
    type Target = dyn Vfs;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for VfsRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("VfsRef(..)")
    }
}

impl Default for VfsRef {
    fn default() -> Self {
        VfsRef::std()
    }
}

/// FNV-1a over `bytes`, 64-bit. The checksum the storage layers use for
/// page-checksum sidecars and snapshot footers.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the conventional sidecar path `<path>.<suffix>`.
pub fn sidecar_path(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".");
    os.push(suffix);
    PathBuf::from(os)
}

// ---------------------------------------------------------------- StdVfs

/// The production VFS: a thin veneer over `std::fs`.
pub struct StdVfs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        self.0.read_exact_at(buf, offset)
    }

    fn write_all_at(&self, data: &[u8], offset: u64) -> io::Result<()> {
        self.0.write_all_at(data, offset)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<(String, u64)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if meta.is_file() {
                out.push((entry.file_name().to_string_lossy().into_owned(), meta.len()));
            }
        }
        out.sort();
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_vfs_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let vfs = VfsRef::std();
        let path = dir.path().join("f.bin");
        let f = vfs.open(&path).unwrap();
        f.write_all_at(b"hello", 3).unwrap();
        assert_eq!(f.len().unwrap(), 8);
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"hello");
        f.sync_data().unwrap();
        f.set_len(4).unwrap();
        assert_eq!(f.len().unwrap(), 4);
        assert!(vfs.exists(&path));
        vfs.write(&path, b"xyz").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"xyz");
        assert_eq!(vfs.read_dir(dir.path()).unwrap(), vec![("f.bin".into(), 3)]);
        vfs.remove_file(&path).unwrap();
        assert!(!vfs.exists(&path));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        assert_eq!(
            sidecar_path(Path::new("/x/lineage.db"), "sums"),
            PathBuf::from("/x/lineage.db.sums")
        );
    }
}
