//! # aion-lineagestore — fine-grained temporal storage indexed by entity
//!
//! LineageStore (paper Sec. 4.4) is the half of Aion's hybrid store that
//! accelerates *point and small-subgraph* queries: node/relationship history
//! lookups and n-hop expansions, each an `O(log n)` B+Tree range scan
//! because composite keys order every entity's history contiguously.
//!
//! Four B+Tree indexes (Table 2):
//!
//! | entry           | key                      | value                      |
//! |-----------------|--------------------------|----------------------------|
//! | node            | `nodeId, ts`             | type, labels, props        |
//! | relationship    | `relId, ts`              | type, label, props         |
//! | out-neighbours  | `srcId, tgtId, relId, ts`| relId (+ deleted flag)     |
//! | in-neighbours   | `tgtId, srcId, relId, ts`| relId (+ deleted flag)     |
//!
//! Updates are stored **in place** as deltas or fully materialized entities
//! (not as pointers into the TimeStore log), trading space for access
//! locality. The [`entry::LineageEntry`] envelope records each delta's
//! position in its chain and the timestamp of the last materialized version,
//! so reconstruction reads a bounded key range. The chain-length threshold
//! is the materialization strategy evaluated in Sec. 6.5 (the paper settles
//! on materializing every 4 deltas).
//!
//! [`expand`] implements Algorithm 1 (n-hop expansion at a time point).

pub mod audit;
pub mod entry;
pub mod expand;
pub mod store;
pub mod stream;

pub use audit::AuditFinding;
pub use entry::LineageEntry;
pub use store::{LineageStore, LineageStoreConfig, LineageStoreStats};
pub use stream::NodeIdScan;
