//! The LineageStore value envelope.
//!
//! Every index value wraps a Fig. 3 record body with two chain fields:
//!
//! * `base_ts` — timestamp of the most recent *fully materialized* version
//!   at or before this entry (for full records, the entry's own timestamp);
//! * `pos` — this entry's distance from that materialized version (0 for
//!   full records, 1 for the first delta, …).
//!
//! Reconstructing an entity version therefore reads exactly the key range
//! `[(id, base_ts), (id, ts)]` — never the whole history — which is what
//! bounds the delta-chain cost studied in Sec. 6.5.

use encoding::varint;
use encoding::RecordBody;
use lpg::Timestamp;

/// A chain-aware record stored as a LineageStore index value.
#[derive(Clone, PartialEq, Debug)]
pub struct LineageEntry {
    /// Timestamp of the last materialized version covering this entry.
    pub base_ts: Timestamp,
    /// Distance from the materialized version (0 = this entry is full).
    pub pos: u32,
    /// The record payload.
    pub body: RecordBody,
}

impl LineageEntry {
    /// Wraps a fully materialized (or tombstone) record written at `ts`.
    pub fn full(ts: Timestamp, body: RecordBody) -> LineageEntry {
        LineageEntry {
            base_ts: ts,
            pos: 0,
            body,
        }
    }

    /// Wraps a delta at chain position `pos` whose materialized base is at
    /// `base_ts`.
    pub fn delta(base_ts: Timestamp, pos: u32, body: RecordBody) -> LineageEntry {
        debug_assert!(pos > 0);
        LineageEntry { base_ts, pos, body }
    }

    /// Serializes the envelope + body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        varint::write_u64(&mut out, self.base_ts);
        varint::write_u64(&mut out, u64::from(self.pos));
        self.body.encode(&mut out);
        out
    }

    /// Deserializes an envelope + body.
    pub fn from_bytes(buf: &[u8]) -> Option<LineageEntry> {
        let mut pos = 0;
        let base_ts = varint::read_u64(buf, &mut pos)?;
        let chain_pos = varint::read_u64(buf, &mut pos)? as u32;
        let body = RecordBody::decode(buf, &mut pos)?;
        (pos == buf.len()).then_some(LineageEntry {
            base_ts,
            pos: chain_pos,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpg::{EntityDelta, PropChange, PropertyValue, StrId};

    #[test]
    fn full_entry_roundtrip() {
        let e = LineageEntry::full(
            42,
            RecordBody::NodeFull {
                labels: vec![StrId::new(1)],
                props: vec![(StrId::new(2), PropertyValue::Int(5))],
            },
        );
        assert_eq!(LineageEntry::from_bytes(&e.to_bytes()), Some(e));
    }

    #[test]
    fn delta_entry_roundtrip() {
        let e = LineageEntry::delta(
            10,
            3,
            RecordBody::NodeDelta(EntityDelta {
                labels_added: vec![],
                labels_removed: vec![StrId::new(7)],
                props: vec![PropChange::Remove(StrId::new(1))],
            }),
        );
        let bytes = e.to_bytes();
        let back = LineageEntry::from_bytes(&bytes).unwrap();
        assert_eq!(back.base_ts, 10);
        assert_eq!(back.pos, 3);
        assert_eq!(back, e);
    }

    #[test]
    fn truncation_detected() {
        let e = LineageEntry::full(1, RecordBody::NodeDeleted);
        let bytes = e.to_bytes();
        assert_eq!(LineageEntry::from_bytes(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes;
        padded.push(9);
        assert_eq!(LineageEntry::from_bytes(&padded), None);
    }
}
