//! Ordered entity-id streaming over the lineage indexes.
//!
//! The node index keys every version as `(nodeId, ts)` big-endian, so a
//! key-only walk yields node ids in ascending order with each entity's
//! history contiguous. [`NodeIdScan`] collapses that walk to one item per
//! distinct id without reading values, which is what a streaming query
//! executor needs: it resolves the state at its pinned snapshot lazily,
//! one entity at a time, instead of materializing the graph.

use crate::store::LineageStore;
use btree::KeyScan;
use encoding::keys;
use lpg::{GraphError, NodeId, Result};
use std::sync::Arc;

/// Lazy ascending stream of distinct node ids from the lineage node index.
///
/// Each B+Tree key examined (including same-id history duplicates) bumps
/// the `lineage.stream.entries_touched` counter, so tests can assert that
/// `LIMIT k` touches O(k) index entries rather than the full index.
pub struct NodeIdScan {
    keys: KeyScan,
    last: Option<u64>,
    entries_touched: Arc<obs::Counter>,
}

impl NodeIdScan {
    pub(crate) fn new(keys: KeyScan, after: Option<NodeId>) -> NodeIdScan {
        NodeIdScan {
            keys,
            // Seeding `last` with the anchor also suppresses the anchor
            // itself in the `checked_add` overflow edge case below.
            last: after.map(NodeId::raw),
            entries_touched: obs::counter("lineage.stream.entries_touched"),
        }
    }
}

impl Iterator for NodeIdScan {
    type Item = Result<NodeId>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let key = match self.keys.next()? {
                Ok(k) => k,
                Err(e) => return Some(Err(GraphError::Storage(e.to_string()))),
            };
            self.entries_touched.inc();
            let Some((id, _ts)) = keys::decode_entity_ts_key(&key) else {
                return Some(Err(GraphError::Storage("bad lineage key".into())));
            };
            // Strictly-monotone guard: equal ids collapse history entries,
            // and a racing page split can momentarily replay keys behind
            // the cursor — never re-emit those.
            if self.last.is_some_and(|l| id <= l) {
                continue;
            }
            self.last = Some(id);
            return Some(Ok(NodeId::new(id)));
        }
    }
}

impl LineageStore {
    /// Streams distinct node ids in ascending order, starting strictly
    /// after `after` (or from the smallest id). Ids are every node that
    /// *ever* existed; callers filter liveness at their snapshot via
    /// [`LineageStore::node_at`].
    pub fn stream_node_ids_from(&self, after: Option<NodeId>) -> Result<NodeIdScan> {
        let low: Vec<u8> = match after {
            Some(id) => match id.raw().checked_add(1) {
                Some(next) => keys::entity_ts_key(next, 0).to_vec(),
                // The anchor is u64::MAX: nothing can follow it.
                None => keys::entity_ts_key(u64::MAX, u64::MAX).to_vec(),
            },
            None => Vec::new(),
        };
        let scan = self
            .nodes
            .scan_keys(&low, &[])
            .map_err(|e| GraphError::Storage(e.to_string()))?;
        Ok(NodeIdScan::new(scan, after))
    }
}
